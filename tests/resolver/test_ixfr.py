"""Tests for incremental zone transfer (IXFR, RFC 1995 shape)."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.errors import ZoneError
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, SecondaryZone, StubResolver
from repro.resolver.xfr import (
    ZoneJournal,
    apply_ixfr,
    diff_zones,
    ixfr_response_records,
)

ORIGIN = Name("mycdn.ciab.test")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_zone(serial, hosts):
    zone = Zone(ORIGIN)
    zone.add(rr("mycdn.ciab.test", RecordType.SOA,
                SOA(Name("ns1.mycdn.ciab.test"),
                    Name("admin.mycdn.ciab.test"),
                    serial, 60, 30, 1209600, 300)))
    zone.add(rr("mycdn.ciab.test", RecordType.NS,
                NS(Name("ns1.mycdn.ciab.test"))))
    zone.add(rr("ns1.mycdn.ciab.test", RecordType.A, A("10.0.0.53")))
    for name, address in hosts.items():
        zone.add(rr(f"{name}.mycdn.ciab.test", RecordType.A, A(address)))
    return zone


V1 = {"video0": "10.233.1.10", "video1": "10.233.1.11"}
V2 = {"video0": "10.233.1.10", "video2": "10.233.1.12"}  # -video1 +video2
V3 = {"video0": "10.233.1.10", "video2": "10.233.1.12",
      "livestream": "10.233.1.13"}


class TestDiffAndJournal:
    def test_diff_zones(self):
        delta = diff_zones(build_zone(1, V1), build_zone(2, V2))
        assert delta.old_serial == 1 and delta.new_serial == 2
        assert [str(record.name) for record in delta.deleted] == \
            ["video1.mycdn.ciab.test."]
        assert [str(record.name) for record in delta.added] == \
            ["video2.mycdn.ciab.test."]

    def test_diff_requires_soas(self):
        with pytest.raises(ZoneError):
            diff_zones(Zone(ORIGIN), build_zone(1, V1))

    def test_journal_chain(self):
        journal = ZoneJournal()
        journal.record(ORIGIN, build_zone(1, V1), build_zone(2, V2))
        journal.record(ORIGIN, build_zone(2, V2), build_zone(3, V3))
        chain = journal.deltas_since(ORIGIN, 1)
        assert [delta.new_serial for delta in chain] == [2, 3]
        assert journal.deltas_since(ORIGIN, 2)[0].new_serial == 3
        assert journal.deltas_since(ORIGIN, 99) is None

    def test_journal_depth_rotation(self):
        journal = ZoneJournal(depth=1)
        journal.record(ORIGIN, build_zone(1, V1), build_zone(2, V2))
        journal.record(ORIGIN, build_zone(2, V2), build_zone(3, V3))
        assert journal.deltas_since(ORIGIN, 1) is None  # rotated away
        assert journal.deltas_since(ORIGIN, 2) is not None

    def test_journal_depth_validation(self):
        with pytest.raises(ValueError):
            ZoneJournal(depth=0)


class TestApplyIxfr:
    def test_apply_single_delta(self):
        old = build_zone(1, V1)
        new = build_zone(2, V2)
        payload = ixfr_response_records(new, [diff_zones(old, new)])
        updated = apply_ixfr(old, payload)
        assert updated.soa.rdata.serial == 2
        assert updated.lookup(Name("video2.mycdn.ciab.test"),
                              RecordType.A).status.value == "success"
        assert updated.lookup(Name("video1.mycdn.ciab.test"),
                              RecordType.A).status.value == "nxdomain"

    def test_apply_chained_deltas(self):
        v1, v2, v3 = build_zone(1, V1), build_zone(2, V2), build_zone(3, V3)
        payload = ixfr_response_records(
            v3, [diff_zones(v1, v2), diff_zones(v2, v3)])
        updated = apply_ixfr(v1, payload)
        assert updated.soa.rdata.serial == 3
        assert updated.lookup(Name("livestream.mycdn.ciab.test"),
                              RecordType.A).status.value == "success"

    def test_apply_up_to_date(self):
        zone = build_zone(2, V2)
        assert apply_ixfr(zone, [zone.soa]) is zone

    def test_apply_axfr_style_fallback(self):
        from repro.resolver.xfr import axfr_response_records
        old = build_zone(1, V1)
        new = build_zone(3, V3)
        updated = apply_ixfr(old, axfr_response_records(new))
        assert updated.soa.rdata.serial == 3
        assert updated.lookup(Name("video1.mycdn.ciab.test"),
                              RecordType.A).status.value == "nxdomain"

    def test_apply_rejects_garbage(self):
        with pytest.raises(ZoneError):
            apply_ixfr(build_zone(1, V1), [])

    def test_original_zone_untouched(self):
        old = build_zone(1, V1)
        new = build_zone(2, V2)
        apply_ixfr(old, ixfr_response_records(new, [diff_zones(old, new)]))
        assert old.soa.rdata.serial == 1
        assert old.lookup(Name("video1.mycdn.ciab.test"),
                          RecordType.A).status.value == "success"


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(29))
    net.add_host("primary", "10.0.0.53")
    net.add_host("secondary", "10.0.1.53")
    net.add_link("primary", "secondary", Constant(3))
    primary = AuthoritativeServer(net, net.host("primary"),
                                  [build_zone(1, V1)])
    secondary_server = AuthoritativeServer(net, net.host("secondary"), [])
    secondary = SecondaryZone(net, secondary_server, ORIGIN,
                              primary.endpoint)
    return sim, net, primary, secondary_server, secondary


class TestIxfrEndToEnd:
    def sync(self, sim, secondary):
        return sim.run_until_resolved(sim.spawn(secondary.refresh_once()))

    def test_first_sync_uses_axfr_then_updates_use_ixfr(self, world):
        sim, net, primary, secondary_server, secondary = world
        assert self.sync(sim, secondary)
        assert secondary.axfr_transfers == 1
        assert secondary.ixfr_transfers == 0
        primary.add_zone(build_zone(2, V2))
        assert self.sync(sim, secondary)
        assert secondary.ixfr_transfers == 1
        assert secondary.serial == 2
        result = secondary_server.zones[ORIGIN].lookup(
            Name("video2.mycdn.ciab.test"), RecordType.A)
        assert result.status.value == "success"

    def test_ixfr_payload_smaller_than_axfr(self, world):
        sim, net, primary, _, secondary = world
        # Give the primary a big zone so the difference is visible
        # (serials must keep increasing for the journal chain).
        big_v1 = build_zone(2, {f"video{i}": f"10.233.1.{i + 10}"
                                for i in range(30)})
        big_v2 = build_zone(3, {**{f"video{i}": f"10.233.1.{i + 10}"
                                   for i in range(30)},
                                "livestream": "10.233.2.1"})
        primary.add_zone(big_v1)
        from repro.netsim import PacketTrace
        trace = PacketTrace(net, host_filter="secondary",
                            event_filter="deliver")
        self.sync(sim, secondary)  # full AXFR of the 30-record zone
        axfr_bytes = sum(record.size for record in trace.records)
        trace.clear()
        primary.add_zone(big_v2)
        self.sync(sim, secondary)  # incremental: one added record
        ixfr_bytes = sum(record.size for record in trace.records)
        trace.close()
        assert secondary.ixfr_transfers == 1
        # The diff moves a small fraction of the full-zone bytes.
        assert ixfr_bytes < axfr_bytes / 2

    def test_rotated_history_falls_back_to_full_transfer(self, world):
        sim, net, primary, _, secondary = world
        primary.journal.depth = 1
        self.sync(sim, secondary)
        primary.add_zone(build_zone(2, V2))
        primary.add_zone(build_zone(3, V3))  # rotates serial-1 delta away
        assert self.sync(sim, secondary)
        assert secondary.serial == 3
        # Served as AXFR-style payload inside the IXFR response.
        assert secondary.ixfr_transfers == 1

    def test_up_to_date_ixfr_is_cheap(self, world):
        sim, net, primary, _, secondary = world
        self.sync(sim, secondary)
        stub = StubResolver(net, net.host("secondary"), primary.endpoint)
        current_soa = primary.zones[ORIGIN].soa
        result = sim.run_until_resolved(sim.spawn(
            stub.query(ORIGIN, RecordType.IXFR,
                       authorities=[current_soa])))
        assert len(result.response.answers) == 1
        assert result.response.answers[0].rtype == RecordType.SOA

    def test_ixfr_counter_on_primary(self, world):
        sim, net, primary, _, secondary = world
        self.sync(sim, secondary)
        primary.add_zone(build_zone(2, V2))
        self.sync(sim, secondary)
        assert primary.ixfr_served == 1
        assert primary.axfr_served == 1
