"""Tests for the CoreDNS-style plugin chain."""


from repro.dnswire import Name, RecordType, ResourceRecord, make_query, make_response
from repro.dnswire.rdata import A
from repro.netsim import Simulator
from repro.netsim.packet import Endpoint
from repro.resolver.chain import Plugin, PluginChain, QueryContext


CLIENT = Endpoint("10.0.0.2", 40000)


def run_chain(chain, qname="svc.cluster.local"):
    sim = Simulator()
    ctx = QueryContext(make_query(Name(qname), msg_id=7), CLIENT)
    future = sim.spawn(chain.run(ctx))
    return sim.run_until_resolved(future), ctx


class AnswerPlugin(Plugin):
    name = "answer"

    def __init__(self, suffix, address):
        self.suffix = Name(suffix)
        self.address = address

    def handle(self, ctx, next_plugin):
        if ctx.qname.is_subdomain_of(self.suffix):
            answer = ResourceRecord(ctx.qname, RecordType.A, 30, A(self.address))
            return make_response(ctx.query, answers=[answer])
            yield  # pragma: no cover - makes this a generator
        response = yield from next_plugin(ctx)
        return response


class TagPlugin(Plugin):
    name = "tag"

    def __init__(self, log):
        self.log = log

    def handle(self, ctx, next_plugin):
        self.log.append("before")
        ctx.metadata["tagged"] = True
        response = yield from next_plugin(ctx)
        self.log.append("after")
        return response


class TestChain:
    def test_first_matching_plugin_answers(self):
        chain = PluginChain([
            AnswerPlugin("cluster.local", "10.96.0.1"),
            AnswerPlugin(".", "203.0.113.1"),
        ])
        response, _ = run_chain(chain, "svc.cluster.local")
        assert response.answer_addresses() == ["10.96.0.1"]

    def test_fallthrough_to_later_plugin(self):
        chain = PluginChain([
            AnswerPlugin("cluster.local", "10.96.0.1"),
            AnswerPlugin(".", "203.0.113.1"),
        ])
        response, _ = run_chain(chain, "www.example.com")
        assert response.answer_addresses() == ["203.0.113.1"]

    def test_empty_chain_refuses(self):
        response, _ = run_chain(PluginChain([]))
        assert response.rcode.name == "REFUSED"

    def test_exhausted_chain_refuses(self):
        chain = PluginChain([AnswerPlugin("cluster.local", "10.96.0.1")])
        response, _ = run_chain(chain, "www.example.com")
        assert response.rcode.name == "REFUSED"

    def test_wrapping_plugin_sees_both_directions(self):
        log = []
        chain = PluginChain([TagPlugin(log),
                             AnswerPlugin(".", "203.0.113.1")])
        response, ctx = run_chain(chain)
        assert log == ["before", "after"]
        assert ctx.metadata["tagged"]
        assert response.answer_addresses() == ["203.0.113.1"]

    def test_response_recorded_on_context(self):
        chain = PluginChain([AnswerPlugin(".", "203.0.113.1")])
        response, ctx = run_chain(chain)
        assert ctx.response is response

    def test_insert_before(self):
        second = AnswerPlugin(".", "203.0.113.1")
        second.name = "default"
        chain = PluginChain([second])
        first = AnswerPlugin("cluster.local", "10.96.0.1")
        first.name = "kubernetes"
        chain.insert_before("default", first)
        assert [plugin.name for plugin in chain.plugins] == \
            ["kubernetes", "default"]
        response, _ = run_chain(chain, "svc.cluster.local")
        assert response.answer_addresses() == ["10.96.0.1"]

    def test_insert_before_missing_appends(self):
        chain = PluginChain([])
        plugin = AnswerPlugin(".", "203.0.113.1")
        chain.insert_before("nonexistent", plugin)
        assert chain.plugins == [plugin]

    def test_context_accessors(self):
        ctx = QueryContext(make_query(Name("a.b.c"), RecordType.AAAA), CLIENT)
        assert ctx.qname == Name("a.b.c")
        assert ctx.rtype == RecordType.AAAA
