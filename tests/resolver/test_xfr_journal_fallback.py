"""Regression tests: bounded journals and the IXFR-to-AXFR fallback.

The churn control plane (``repro.control``) runs its primaries with a
deliberately small journal, so the aged-out path is load-bearing: a
secondary that slept through more updates than the journal keeps must
get a full AXFR-style payload (RFC 1995 §4), counted on the server, and
a client applying a delta chain that does not start at its own serial
must reject it rather than corrupt the zone.
"""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.errors import ZoneError
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, SecondaryZone
from repro.resolver.xfr import (
    DEFAULT_JOURNAL_DEPTH,
    apply_ixfr,
    diff_zones,
    ixfr_response_records,
)

ORIGIN = Name("mycdn.ciab.test")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_zone(serial, hosts):
    zone = Zone(ORIGIN)
    zone.add(rr("mycdn.ciab.test", RecordType.SOA,
                SOA(Name("ns1.mycdn.ciab.test"),
                    Name("admin.mycdn.ciab.test"),
                    serial, 60, 30, 1209600, 300)))
    zone.add(rr("mycdn.ciab.test", RecordType.NS,
                NS(Name("ns1.mycdn.ciab.test"))))
    zone.add(rr("ns1.mycdn.ciab.test", RecordType.A, A("10.0.0.53")))
    for name, address in hosts.items():
        zone.add(rr(f"{name}.mycdn.ciab.test", RecordType.A, A(address)))
    return zone


V1 = {"video0": "10.233.1.10"}
V2 = {"video0": "10.233.1.10", "video1": "10.233.1.11"}
V3 = {"video0": "10.233.1.10", "video2": "10.233.1.12"}


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(41))
    net.add_host("primary", "10.0.0.53")
    net.add_host("secondary", "10.0.1.53")
    net.add_link("primary", "secondary", Constant(3))
    primary = AuthoritativeServer(net, net.host("primary"),
                                  [build_zone(1, V1)], journal_depth=1)
    secondary_server = AuthoritativeServer(net, net.host("secondary"), [])
    secondary = SecondaryZone(net, secondary_server, ORIGIN,
                              primary.endpoint)
    return sim, net, primary, secondary


def sync(sim, secondary):
    return sim.run_until_resolved(sim.spawn(secondary.refresh_once()))


class TestBoundedJournal:
    def test_journal_depth_kwarg_reaches_the_journal(self, world):
        _, _, primary, _ = world
        assert primary.journal.depth == 1

    def test_default_depth_is_bounded(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(1))
        net.add_host("p", "10.0.0.53")
        server = AuthoritativeServer(net, net.host("p"),
                                     [build_zone(1, V1)])
        assert server.journal.depth == DEFAULT_JOURNAL_DEPTH
        for serial in range(2, DEFAULT_JOURNAL_DEPTH + 4):
            server.add_zone(build_zone(
                serial, {f"v{serial}": f"10.233.2.{serial}"}))
        # Exactly ``depth`` deltas are retained; older history is gone.
        assert server.journal.deltas_since(ORIGIN, 1) is None
        kept = server.journal.deltas_since(
            ORIGIN, serial - DEFAULT_JOURNAL_DEPTH)
        assert kept is not None and len(kept) == DEFAULT_JOURNAL_DEPTH


class TestAxfrFallback:
    def test_aged_out_secondary_gets_axfr_payload(self, world):
        sim, _, primary, secondary = world
        assert sync(sim, secondary)          # initial AXFR, serial 1
        primary.add_zone(build_zone(2, V2))
        primary.add_zone(build_zone(3, V3))  # depth-1 journal drops 1->2
        assert sync(sim, secondary)
        assert secondary.serial == 3
        assert primary.ixfr_axfr_fallbacks == 1
        # The content is the full serial-3 zone, not a partial merge.
        zone = secondary.server.zones[ORIGIN]
        assert zone.lookup(Name("video2.mycdn.ciab.test"),
                           RecordType.A).status.value == "success"
        assert zone.lookup(Name("video1.mycdn.ciab.test"),
                           RecordType.A).status.value == "nxdomain"

    def test_covered_delta_does_not_count_as_fallback(self, world):
        sim, _, primary, secondary = world
        assert sync(sim, secondary)
        primary.add_zone(build_zone(2, V2))  # one update: depth 1 covers it
        assert sync(sim, secondary)
        assert secondary.serial == 2
        assert primary.ixfr_axfr_fallbacks == 0

    def test_chain_not_starting_at_client_serial_is_rejected(self):
        v1, v2, v3 = (build_zone(1, V1), build_zone(2, V2),
                      build_zone(3, V3))
        # A delta chain starting at serial 2 is useless to a serial-1
        # client; applying it anyway would silently corrupt the zone.
        payload = ixfr_response_records(v3, [diff_zones(v2, v3)])
        with pytest.raises(ZoneError):
            apply_ixfr(v1, payload)


class TestInstallHook:
    def test_on_install_fires_with_time_and_serial(self, world):
        sim, _, primary, secondary = world
        installs = []
        secondary.on_install = lambda time, serial: installs.append(
            (time, serial))
        assert sync(sim, secondary)
        primary.add_zone(build_zone(2, V2))
        assert sync(sim, secondary)
        assert [serial for _, serial in installs] == [1, 2]
        assert installs[0][0] <= installs[1][0] == sim.now

    def test_no_hook_is_the_default(self, world):
        sim, _, _, secondary = world
        assert secondary.on_install is None
        assert sync(sim, secondary)  # installing without a hook is fine
