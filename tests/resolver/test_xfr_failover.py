"""Secondary-zone behaviour when the primary crashes mid-transfer."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.faults import FaultPlan, inject
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, SecondaryZone, StubResolver

ORIGIN = Name("mycdn.ciab.test")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_zone(serial, extra_hosts=0):
    zone = Zone(ORIGIN)
    zone.add(rr("mycdn.ciab.test", RecordType.SOA,
                SOA(Name("ns1.mycdn.ciab.test"),
                    Name("admin.mycdn.ciab.test"),
                    serial, 60, 30, 1209600, 300)))
    zone.add(rr("mycdn.ciab.test", RecordType.NS,
                NS(Name("ns1.mycdn.ciab.test"))))
    zone.add(rr("ns1.mycdn.ciab.test", RecordType.A, A("10.0.0.53")))
    zone.add(rr("video.mycdn.ciab.test", RecordType.A, A("10.233.1.10")))
    for index in range(extra_hosts):
        zone.add(rr(f"host{index}.mycdn.ciab.test", RecordType.A,
                    A(f"10.233.2.{index + 1}")))
    return zone


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(93))
    net.add_host("primary", "10.0.0.53")
    net.add_host("secondary", "10.0.1.53")
    net.add_host("client", "10.0.2.2")
    net.add_link("primary", "secondary", Constant(3))
    net.add_link("client", "secondary", Constant(1))
    primary = AuthoritativeServer(net, net.host("primary"),
                                  [build_zone(serial=1)])
    secondary_server = AuthoritativeServer(net, net.host("secondary"), [])
    secondary = SecondaryZone(net, secondary_server, ORIGIN,
                              primary.endpoint)
    secondary._stub.timeout = 200
    secondary._stub.retries = 0
    return sim, net, primary, secondary_server, secondary


def sync(sim, secondary):
    return sim.run_until_resolved(sim.spawn(secondary.refresh_once()))


def ask(sim, net, server, name="video.mycdn.ciab.test"):
    stub = StubResolver(net, net.host("client"), server.endpoint)
    return sim.run_until_resolved(sim.spawn(stub.query(Name(name))))


class TestPrimaryCrashFailover:
    def test_crash_mid_transfer_keeps_old_zone_serving(self, world):
        sim, net, primary, secondary_server, secondary = world
        assert sync(sim, secondary)

        # A big serial bump forces a long AXFR over the stream; the
        # primary dies while the transfer is in flight.
        primary.add_zone(build_zone(serial=2, extra_hosts=40))
        crash_at = sim.now + 9.0  # after the SOA probe, mid-stream
        inject(net, FaultPlan().crash_host("primary", crash_at,
                                           duration_ms=2000))
        assert not sync(sim, secondary)

        # The aborted transfer must not have corrupted the installed
        # zone: the secondary still answers from serial 1.
        assert secondary.serial == 1
        result = ask(sim, net, secondary_server)
        assert result.status == "NOERROR"
        assert result.addresses == ["10.233.1.10"]
        assert ask(sim, net, secondary_server,
                   "host0.mycdn.ciab.test").status == "NXDOMAIN"

    def test_transfer_resumes_after_primary_restart(self, world):
        sim, net, primary, secondary_server, secondary = world
        assert sync(sim, secondary)
        primary.add_zone(build_zone(serial=2, extra_hosts=40))
        crash_at = sim.now + 9.0
        inject(net, FaultPlan().crash_host("primary", crash_at,
                                           duration_ms=500))
        assert not sync(sim, secondary)
        sim.run(until=crash_at + 600)  # past the restart
        assert sync(sim, secondary)
        assert secondary.serial == 2
        assert ask(sim, net, secondary_server,
                   "host0.mycdn.ciab.test").addresses == ["10.233.2.1"]

    def test_crash_before_soa_probe_is_not_fatal(self, world):
        sim, net, primary, secondary_server, secondary = world
        assert sync(sim, secondary)
        net.host("primary").down = True
        assert not sync(sim, secondary)
        assert secondary.serial == 1
        assert ask(sim, net, secondary_server).addresses == ["10.233.1.10"]
