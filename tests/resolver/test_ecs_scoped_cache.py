"""Tests for ECS-scoped caching in the recursive resolver (RFC 7871 §7.3).

When an authoritative answer comes back with a non-zero ECS scope, the
resolver must cache it *per client subnet* — otherwise one client's
tailored answer leaks to clients in other subnets.  The CDN traffic
router is exactly such a tailoring server, so this path matters here.
"""

import pytest

from repro.dnswire import A, Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import NS, SOA
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.resolver.recursive import root_hints_from


class SubnetTailoringAuthority(AuthoritativeServer):
    """Answers with a different address per client /24 (scope 24)."""

    def select_answer(self, qname, rtype, records, ecs, client):
        if ecs is None or rtype != RecordType.A:
            return records, 0
        third_octet = ecs.address.split(".")[2]
        tailored = [ResourceRecord(qname, RecordType.A, record.ttl,
                                   A(f"198.18.{third_octet}.1"))
                    for record in records]
        return tailored, 24


def build_zone():
    zone = Zone(Name("tailored.test"))
    zone.add(ResourceRecord(Name("tailored.test"), RecordType.SOA, 300,
                            SOA(Name("ns.tailored.test"),
                                Name("a.tailored.test"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("tailored.test"), RecordType.NS, 300,
                            NS(Name("ns.tailored.test"))))
    zone.add(ResourceRecord(Name("www.tailored.test"), RecordType.A, 300,
                            A("198.18.0.1")))
    return zone


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(37))
    net.add_host("client-a", "10.1.1.2")   # subnet 10.1.1.0/24
    net.add_host("client-b", "10.1.2.2")   # subnet 10.1.2.0/24
    net.add_host("resolver", "10.1.0.53")
    net.add_host("root", "192.5.5.1")
    net.add_link("client-a", "resolver", Constant(1))
    net.add_link("client-b", "resolver", Constant(1))
    net.add_link("resolver", "root", Constant(5))
    # The "root" directly hosts the tailored zone for brevity: the
    # resolver's root hints point straight at the tailoring authority.
    SubnetTailoringAuthority(net, net.host("root"),
                             [build_zone()], ecs_enabled=True)
    resolver = RecursiveResolver(net, net.host("resolver"),
                                 root_hints_from(("ns.tailored.test",
                                                  "192.5.5.1")),
                                 ecs_enabled=True)
    return sim, net, resolver


def query_from(sim, net, resolver, client_host):
    stub = StubResolver(net, net.host(client_host), resolver.endpoint)
    return sim.run_until_resolved(sim.spawn(
        stub.query(Name("www.tailored.test"))))


class TestEcsScopedCache:
    def test_clients_in_different_subnets_get_different_answers(self, world):
        sim, net, resolver = world
        a = query_from(sim, net, resolver, "client-a")
        b = query_from(sim, net, resolver, "client-b")
        assert a.addresses == ["198.18.1.1"]
        assert b.addresses == ["198.18.2.1"]

    def test_scoped_answers_cached_per_subnet(self, world):
        sim, net, resolver = world
        query_from(sim, net, resolver, "client-a")
        query_from(sim, net, resolver, "client-b")
        sent_before = resolver.upstream_queries_sent
        repeat_a = query_from(sim, net, resolver, "client-a")
        repeat_b = query_from(sim, net, resolver, "client-b")
        # Both repeats served from the ECS-scoped cache: no new upstream.
        assert resolver.upstream_queries_sent == sent_before
        assert repeat_a.addresses == ["198.18.1.1"]
        assert repeat_b.addresses == ["198.18.2.1"]

    def test_no_cross_subnet_leakage(self, world):
        sim, net, resolver = world
        query_from(sim, net, resolver, "client-a")
        # Client B's first query must NOT reuse A's tailored answer.
        b = query_from(sim, net, resolver, "client-b")
        assert b.addresses != ["198.18.1.1"]

    def test_scoped_entries_respect_ttl(self, world):
        sim, net, resolver = world
        query_from(sim, net, resolver, "client-a")
        sim.run(until=sim.now + 400 * 1000)  # past the 300s TTL
        sent_before = resolver.upstream_queries_sent
        result = query_from(sim, net, resolver, "client-a")
        assert result.addresses == ["198.18.1.1"]
        assert resolver.upstream_queries_sent > sent_before
