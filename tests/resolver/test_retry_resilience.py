"""Tests for retry policies, serve-stale, and bounded stream timeouts."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.errors import QueryTimeout
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.netsim.engine import ProcessFailed
from repro.netsim.stream import StreamServer, open_channel
from repro.resolver import (AuthoritativeServer, DnsCache, ForwardingResolver,
                            RetryBudget, RetryPolicy, StubResolver)
from repro.resolver.cache import STALE_ANSWER_TTL

QNAME = Name("www.example.com")


def build_zone():
    zone = Zone(Name("example.com"))
    zone.add(ResourceRecord(Name("example.com"), RecordType.SOA, 300,
                            SOA(Name("ns.example.com"),
                                Name("a.example.com"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("example.com"), RecordType.NS, 300,
                            NS(Name("ns.example.com"))))
    zone.add(ResourceRecord(QNAME, RecordType.A, 300, A("198.18.0.9")))
    return zone


class TestRetryPolicy:
    def test_backoff_sequence_with_clamp(self):
        policy = RetryPolicy(retries=4, timeout_ms=100, backoff=2.0,
                             max_timeout_ms=300)
        assert [policy.timeout_for(n) for n in (1, 2, 3, 4)] == \
            [100, 200, 300, 300]

    def test_jitter_stays_inside_band_and_varies(self):
        import random
        policy = RetryPolicy(timeout_ms=100, jitter_frac=0.2)
        rng = random.Random(5)
        draws = [policy.timeout_for(1, rng) for _ in range(50)]
        assert all(80 <= draw <= 120 for draw in draws)
        assert len(set(draws)) > 1

    def test_attempt_count_gate(self):
        policy = RetryPolicy(retries=2, timeout_ms=10)
        assert policy.may_retry(1) and policy.may_retry(2)
        assert not policy.may_retry(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(hedge_after_ms=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=10).timeout_for(0)


class TestRetryBudget:
    def test_allowance_grows_with_requests(self):
        budget = RetryBudget(ratio=0.1, min_retries=2)
        assert budget.allowance == 2.0
        for _ in range(100):
            budget.record_request()
        assert budget.allowance == pytest.approx(10.0)

    def test_acquire_spends_then_denies(self):
        budget = RetryBudget(ratio=0.0, min_retries=1)
        assert budget.try_acquire()
        assert not budget.try_acquire()
        assert budget.retries_denied == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(min_retries=-1)


class ResolverWorld:
    """client -- resolver -- upstream, with a configurable resolver cache."""

    def __init__(self, serve_stale=False, seed=31):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.net.add_host("client", "10.0.0.2")
        self.net.add_host("resolver", "10.0.0.53")
        self.net.add_host("upstream", "203.0.113.10")
        self.net.add_link("client", "resolver", Constant(2))
        self.net.add_link("resolver", "upstream", Constant(10))
        AuthoritativeServer(self.net, self.net.host("upstream"),
                            [build_zone()])
        self.resolver = ForwardingResolver(
            self.net, self.net.host("resolver"),
            upstreams=[Endpoint("203.0.113.10", 53)],
            cache=DnsCache(serve_stale=serve_stale),
            upstream_timeout=50)

    def stub(self, **kwargs):
        return StubResolver(self.net, self.net.host("client"),
                            self.resolver.endpoint, **kwargs)

    def ask(self, stub):
        return self.sim.run_until_resolved(self.sim.spawn(stub.query(QNAME)))


class TestServeStale:
    def warm_then_kill_upstream(self, world):
        stub = world.stub(timeout=500, retries=0)
        fresh = world.ask(stub)
        assert fresh.addresses == ["198.18.0.9"] and not fresh.stale
        # Let the 300 s TTL lapse, then take the upstream away entirely.
        world.sim.run(until=world.sim.now + 400 * 1000)
        world.net.host("upstream").down = True
        return stub

    def test_stale_answer_served_after_upstream_dies(self):
        world = ResolverWorld(serve_stale=True)
        stub = self.warm_then_kill_upstream(world)
        result = world.ask(stub)
        assert result.status == "NOERROR"
        assert result.addresses == ["198.18.0.9"]
        assert result.stale
        assert world.resolver.stale_served == 1

    def test_stale_answer_carries_ede_and_capped_ttl(self):
        world = ResolverWorld(serve_stale=True)
        stub = self.warm_then_kill_upstream(world)
        result = world.ask(stub)
        ede = result.response.edns.extended_error
        assert ede is not None and ede.is_stale_answer
        assert result.response.answers[0].ttl == STALE_ANSWER_TTL

    def test_without_serve_stale_upstream_death_is_servfail(self):
        world = ResolverWorld(serve_stale=False)
        stub = self.warm_then_kill_upstream(world)
        result = world.ask(stub)
        assert result.status == "SERVFAIL"
        assert not result.stale


class TestStubRetries:
    def test_servfail_retried_like_timeout(self):
        world = ResolverWorld(serve_stale=False)
        stub = self.dead_upstream_stub(world, retries=2)
        result = world.ask(stub)
        assert result.status == "SERVFAIL"
        assert result.attempts == 3
        assert stub.servfails_seen == 3

    @staticmethod
    def dead_upstream_stub(world, **kwargs):
        world.net.host("upstream").down = True
        return world.stub(timeout=500, **kwargs)

    def test_backoff_timeouts_shape_total_latency(self):
        world = ResolverWorld()
        world.net.host("resolver").down = True  # total silence
        stub = world.stub(policy=RetryPolicy(retries=2, timeout_ms=50,
                                             backoff=2.0))
        started = world.sim.now
        with pytest.raises(ProcessFailed):
            world.ask(stub)
        # 50 + 100 + 200 ms of per-attempt timeouts, no jitter.
        assert world.sim.now - started == pytest.approx(350.0)
        assert stub.timeouts_seen == 3

    def test_budget_caps_retries_before_policy_count(self):
        world = ResolverWorld()
        world.net.host("resolver").down = True
        budget = RetryBudget(ratio=0.0, min_retries=1)
        stub = world.stub(policy=RetryPolicy(retries=5, timeout_ms=20,
                                             budget=budget))
        with pytest.raises(ProcessFailed):
            world.ask(stub)
        assert stub.queries_issued == 2  # first attempt + one budgeted retry
        assert budget.retries_denied == 1

    def test_hedge_fires_when_primary_is_slow(self):
        world = ResolverWorld()
        stub = world.stub(policy=RetryPolicy(retries=0, timeout_ms=500,
                                             hedge_after_ms=1.0))
        result = world.ask(stub)
        assert result.status == "NOERROR"
        assert stub.hedges_sent == 1
        assert result.attempts == 1

    def test_hedge_recovers_lost_primary_without_full_timeout(self):
        world = ResolverWorld()
        link = world.net.link_between("client", "resolver")
        link.down = True  # swallow the primary packet...
        world.sim.call_at(5.0, lambda: setattr(link, "down", False))
        stub = world.stub(policy=RetryPolicy(retries=0, timeout_ms=500,
                                             hedge_after_ms=10.0))
        result = world.ask(stub)
        assert result.status == "NOERROR"
        assert stub.hedges_sent == 1
        # ...and the hedge answered well before the 500 ms timeout.
        assert result.query_time_ms < 100


class TestStreamTimeouts:
    def test_exchange_deadline_raises_query_timeout(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(77))
        net.add_host("client", "10.0.0.2")
        net.add_host("server", "10.0.0.80")
        net.add_link("client", "server", Constant(5))

        def stuck_handler(body, peer):
            yield 60_000
            return b"too late"

        StreamServer(net, net.host("server"), 8080, handler=stuck_handler)

        def client():
            channel = yield from open_channel(
                net, net.host("client"), Endpoint("10.0.0.80", 8080))
            return (yield from channel.exchange(b"x", timeout=100))

        started = sim.now
        with pytest.raises(ProcessFailed) as excinfo:
            sim.run_until_resolved(sim.spawn(client()))
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
        assert sim.now - started < 1000  # bounded, not the handler's hour

    def test_connect_deadline_to_dead_host(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(78))
        net.add_host("client", "10.0.0.2")
        net.add_host("server", "10.0.0.80")
        net.add_link("client", "server", Constant(5))
        net.host("server").down = True

        def client():
            return (yield from open_channel(
                net, net.host("client"), Endpoint("10.0.0.80", 8080),
                timeout=80))

        with pytest.raises(ProcessFailed) as excinfo:
            sim.run_until_resolved(sim.spawn(client()))
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
