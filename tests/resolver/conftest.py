"""A miniature DNS hierarchy on a simulated network, shared by tests.

Topology (constant latencies in ms):

    client --1-- resolver --5-- root
                    |---5------ tld (com/net)
                    |---5------ auth (example.com)
"""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, CNAME, NS, SOA
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.resolver.recursive import root_hints_from


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_root_zone():
    zone = Zone(Name("."))
    zone.add(rr(".", RecordType.SOA,
                SOA(Name("a.root"), Name("admin.root"), 1, 2, 3, 4, 60)))
    zone.add(rr(".", RecordType.NS, NS(Name("a.root"))))
    zone.add(rr("a.root", RecordType.A, A("192.5.5.1")))
    for tld in ("com", "net", "test"):
        zone.add(rr(tld, RecordType.NS, NS(Name(f"ns.{tld}"))))
        zone.add(rr(f"ns.{tld}", RecordType.A, A("192.12.94.1")))
    return zone


def build_tld_zones():
    zones = []
    for tld in ("com", "net", "test"):
        zone = Zone(Name(tld))
        zone.add(rr(tld, RecordType.SOA,
                    SOA(Name(f"ns.{tld}"), Name(f"admin.{tld}"), 1, 2, 3, 4, 60)))
        zone.add(rr(tld, RecordType.NS, NS(Name(f"ns.{tld}"))))
        zones.append(zone)
    zones[0].add(rr("example.com", RecordType.NS, NS(Name("ns1.example.com"))))
    zones[0].add(rr("ns1.example.com", RecordType.A, A("203.0.113.53")))
    zones[1].add(rr("cdn.net", RecordType.NS, NS(Name("ns.cdn.net"))))
    zones[1].add(rr("ns.cdn.net", RecordType.A, A("203.0.113.53")))
    return zones


def build_example_zone():
    zone = Zone(Name("example.com"))
    zone.add(rr("example.com", RecordType.SOA,
                SOA(Name("ns1.example.com"), Name("admin.example.com"),
                    1, 2, 3, 4, 60)))
    zone.add(rr("example.com", RecordType.NS, NS(Name("ns1.example.com"))))
    zone.add(rr("ns1.example.com", RecordType.A, A("203.0.113.53")))
    zone.add(rr("www.example.com", RecordType.A, A("203.0.113.80"), ttl=600))
    zone.add(rr("alias.example.com", RecordType.CNAME,
                CNAME(Name("www.example.com"))))
    zone.add(rr("external.example.com", RecordType.CNAME,
                CNAME(Name("edge.cdn.net"))))
    return zone


def build_cdn_zone():
    zone = Zone(Name("cdn.net"))
    zone.add(rr("cdn.net", RecordType.SOA,
                SOA(Name("ns.cdn.net"), Name("admin.cdn.net"),
                    1, 2, 3, 4, 60)))
    zone.add(rr("cdn.net", RecordType.NS, NS(Name("ns.cdn.net"))))
    zone.add(rr("ns.cdn.net", RecordType.A, A("203.0.113.53")))
    zone.add(rr("edge.cdn.net", RecordType.A, A("198.18.0.7")))
    return zone


class MiniInternet:
    """The assembled fixture object."""

    def __init__(self, ecs_enabled=False, seed=11):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.net.add_host("client", "10.0.0.2")
        self.net.add_host("resolver", "10.0.0.53")
        self.net.add_host("root", "192.5.5.1")
        self.net.add_host("tld", "192.12.94.1")
        self.net.add_host("auth", "203.0.113.53")
        self.net.add_link("client", "resolver", Constant(1))
        for server in ("root", "tld", "auth"):
            self.net.add_link("resolver", server, Constant(5))

        self.root_server = AuthoritativeServer(
            self.net, self.net.host("root"), [build_root_zone()])
        self.tld_server = AuthoritativeServer(
            self.net, self.net.host("tld"), build_tld_zones())
        self.auth_server = AuthoritativeServer(
            self.net, self.net.host("auth"),
            [build_example_zone(), build_cdn_zone()],
            ecs_enabled=ecs_enabled)
        self.resolver = RecursiveResolver(
            self.net, self.net.host("resolver"),
            root_hints_from(("a.root", "192.5.5.1")),
            ecs_enabled=ecs_enabled)
        self.stub = StubResolver(self.net, self.net.host("client"),
                                 self.resolver.endpoint)

    def run_query(self, name, rtype=RecordType.A, **kwargs):
        future = self.sim.spawn(self.stub.query(Name(name), rtype, **kwargs))
        return self.sim.run_until_resolved(future)


@pytest.fixture
def internet():
    return MiniInternet()
