"""Tests for zone transfer (AXFR) and secondary-zone maintenance."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.errors import ZoneError
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, SecondaryZone, StubResolver
from repro.resolver.xfr import axfr_response_records, zone_from_axfr

ORIGIN = Name("mycdn.ciab.test")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_zone(serial, extra_hosts=0):
    zone = Zone(ORIGIN)
    zone.add(rr("mycdn.ciab.test", RecordType.SOA,
                SOA(Name("ns1.mycdn.ciab.test"), Name("admin.mycdn.ciab.test"),
                    serial, 60, 30, 1209600, 300)))
    zone.add(rr("mycdn.ciab.test", RecordType.NS,
                NS(Name("ns1.mycdn.ciab.test"))))
    zone.add(rr("ns1.mycdn.ciab.test", RecordType.A, A("10.0.0.53")))
    zone.add(rr("video.mycdn.ciab.test", RecordType.A, A("10.233.1.10")))
    for index in range(extra_hosts):
        zone.add(rr(f"host{index}.mycdn.ciab.test", RecordType.A,
                    A(f"10.233.2.{index + 1}")))
    return zone


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(91))
    net.add_host("primary", "10.0.0.53")
    net.add_host("secondary", "10.0.1.53")
    net.add_host("client", "10.0.2.2")
    net.add_link("primary", "secondary", Constant(3))
    net.add_link("client", "secondary", Constant(1))
    net.add_link("client", "primary", Constant(4))
    primary = AuthoritativeServer(net, net.host("primary"),
                                  [build_zone(serial=1)])
    secondary_server = AuthoritativeServer(net, net.host("secondary"), [])
    secondary = SecondaryZone(net, secondary_server, ORIGIN,
                              primary.endpoint)
    return sim, net, primary, secondary_server, secondary


class TestAxfrPayload:
    def test_soa_first_and_last(self):
        records = axfr_response_records(build_zone(serial=7))
        assert records[0].rtype == RecordType.SOA
        assert records[-1].rtype == RecordType.SOA
        assert records[0] == records[-1]

    def test_zoneless_soa_rejected(self):
        with pytest.raises(ZoneError):
            axfr_response_records(Zone(Name("empty.test")))

    def test_rebuild_roundtrip(self):
        zone = build_zone(serial=7, extra_hosts=3)
        rebuilt = zone_from_axfr(ORIGIN, axfr_response_records(zone))
        assert sorted(map(str, rebuilt.names())) == \
            sorted(map(str, zone.names()))
        assert rebuilt.soa.rdata.serial == 7

    def test_rebuild_rejects_missing_soa_frame(self):
        zone = build_zone(serial=1)
        records = axfr_response_records(zone)
        with pytest.raises(ZoneError):
            zone_from_axfr(ORIGIN, records[:-1])  # aborted transfer

    def test_rebuild_rejects_mismatched_soas(self):
        first = axfr_response_records(build_zone(serial=1))
        second = axfr_response_records(build_zone(serial=2))
        with pytest.raises(ZoneError):
            zone_from_axfr(ORIGIN, first[:-1] + [second[-1]])


class TestAxfrOverTheWire:
    def test_axfr_query_returns_full_zone(self, world):
        sim, net, primary, _, _ = world
        stub = StubResolver(net, net.host("client"), primary.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(ORIGIN, RecordType.AXFR)))
        assert result.status == "NOERROR"
        assert result.response.answers[0].rtype == RecordType.SOA
        assert result.response.answers[-1].rtype == RecordType.SOA
        assert primary.axfr_served == 1

    def test_large_zone_rides_tcp(self, world):
        sim, net, primary, _, _ = world
        primary.add_zone(build_zone(serial=2, extra_hosts=40))
        stub = StubResolver(net, net.host("client"), primary.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(ORIGIN, RecordType.AXFR)))
        # > 512 bytes: truncated on UDP, completed over the stream.
        assert stub.tcp_fallbacks == 1
        assert len(result.response.answers) == 4 + 40 + 2 - 1

    def test_axfr_refused_when_disabled(self, world):
        sim, net, primary, _, _ = world
        primary.allow_axfr = False
        stub = StubResolver(net, net.host("client"), primary.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(ORIGIN, RecordType.AXFR)))
        assert result.status == "REFUSED"

    def test_axfr_for_unhosted_zone_notauth(self, world):
        sim, net, primary, _, _ = world
        stub = StubResolver(net, net.host("client"), primary.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(Name("other.test"), RecordType.AXFR)))
        assert result.status == "NOTAUTH"


class TestSecondaryZone:
    def test_initial_transfer(self, world):
        sim, net, primary, secondary_server, secondary = world
        assert secondary.serial is None
        transferred = sim.run_until_resolved(
            sim.spawn(secondary.refresh_once()))
        assert transferred
        assert secondary.serial == 1
        # The secondary now answers authoritatively.
        stub = StubResolver(net, net.host("client"),
                            secondary_server.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(Name("video.mycdn.ciab.test"))))
        assert result.addresses == ["10.233.1.10"]

    def test_no_transfer_when_serial_unchanged(self, world):
        sim, net, primary, _, secondary = world
        sim.run_until_resolved(sim.spawn(secondary.refresh_once()))
        again = sim.run_until_resolved(sim.spawn(secondary.refresh_once()))
        assert not again
        assert secondary.transfers == 1

    def test_serial_bump_triggers_transfer(self, world):
        sim, net, primary, secondary_server, secondary = world
        sim.run_until_resolved(sim.spawn(secondary.refresh_once()))
        updated = build_zone(serial=2)
        updated.add(rr("new.mycdn.ciab.test", RecordType.A, A("10.233.9.9")))
        primary.add_zone(updated)
        transferred = sim.run_until_resolved(
            sim.spawn(secondary.refresh_once()))
        assert transferred
        assert secondary.serial == 2
        stub = StubResolver(net, net.host("client"),
                            secondary_server.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(Name("new.mycdn.ciab.test"))))
        assert result.addresses == ["10.233.9.9"]

    def test_unreachable_primary_is_not_fatal(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(5))
        net.add_host("secondary", "10.0.1.53")
        server = AuthoritativeServer(net, net.host("secondary"), [])
        from repro.netsim.packet import Endpoint
        secondary = SecondaryZone(net, server, ORIGIN,
                                  Endpoint("10.99.9.9", 53))
        secondary._stub.timeout = 50
        secondary._stub.retries = 0
        transferred = sim.run_until_resolved(
            sim.spawn(secondary.refresh_once()))
        assert not transferred

    def test_periodic_refresh_loop(self, world):
        sim, net, primary, _, secondary = world
        secondary._refresh_override = 1000.0
        secondary.start()
        sim.run(until=3500)
        assert secondary.refreshes >= 3
        assert secondary.transfers == 1  # serial never moved after sync
        secondary.stop()


class TestAnswerRotation:
    def test_rotation_cycles_rrset_order(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(7))
        net.add_host("auth", "10.0.0.53")
        net.add_host("client", "10.0.0.2")
        net.add_link("client", "auth", Constant(1))
        zone = build_zone(serial=1)
        zone.add(rr("video.mycdn.ciab.test", RecordType.A, A("10.233.1.11")))
        zone.add(rr("video.mycdn.ciab.test", RecordType.A, A("10.233.1.12")))
        server = AuthoritativeServer(net, net.host("auth"), [zone],
                                     rotate_answers=True)
        stub = StubResolver(net, net.host("client"), server.endpoint)
        firsts = []
        for _ in range(6):
            result = sim.run_until_resolved(sim.spawn(
                stub.query(Name("video.mycdn.ciab.test"))))
            assert len(result.addresses) == 3
            firsts.append(result.addresses[0])
        assert len(set(firsts)) == 3  # every record led at least once
