"""Tests for the DNS cache."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire import Name, RecordType, ResourceRecord
from repro.dnswire.rdata import A
from repro.resolver.cache import CacheOutcome, DnsCache, MAX_TTL


def rr(owner, address, ttl=300):
    return ResourceRecord(Name(owner), RecordType.A, ttl, A(address))


class TestPositive:
    def test_miss_then_hit(self):
        cache = DnsCache()
        assert cache.get(Name("a.com"), RecordType.A, 0).is_miss
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        answer = cache.get(Name("a.com"), RecordType.A, 1000)
        assert answer.outcome == CacheOutcome.HIT
        assert answer.records[0].rdata.address == "192.0.2.1"

    def test_ttl_decremented(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1", ttl=100)], now=0)
        answer = cache.get(Name("a.com"), RecordType.A, 40_000)  # 40s later
        assert answer.records[0].ttl == 60

    def test_expiry(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1", ttl=10)], now=0)
        assert cache.get(Name("a.com"), RecordType.A, 10_000).is_miss

    def test_rrset_grouping(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1"), rr("a.com", "192.0.2.2"),
                           rr("b.com", "192.0.2.3")], now=0)
        assert len(cache.get(Name("a.com"), RecordType.A, 0).records) == 2

    def test_type_separation(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        assert cache.get(Name("a.com"), RecordType.AAAA, 0).is_miss

    def test_case_insensitive_keying(self):
        cache = DnsCache()
        cache.put_records([rr("A.CoM", "192.0.2.1")], now=0)
        assert cache.get(Name("a.com"), RecordType.A, 0).outcome == \
            CacheOutcome.HIT

    def test_ttl_clamped(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1", ttl=10**7)], now=0)
        answer = cache.get(Name("a.com"), RecordType.A, 0)
        assert answer.records[0].ttl <= MAX_TTL

    def test_replacement_updates_rrset(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        cache.put_records([rr("a.com", "192.0.2.9")], now=0)
        answer = cache.get(Name("a.com"), RecordType.A, 0)
        assert [r.rdata.address for r in answer.records] == ["192.0.2.9"]

    def test_opt_records_not_cached(self):
        from repro.dnswire.rdata import GenericRdata
        cache = DnsCache()
        opt = ResourceRecord(Name("."), RecordType.OPT, 0, GenericRdata(b""))
        cache.put_records([opt], now=0)
        assert len(cache) == 0

    def test_peek_addresses(self):
        cache = DnsCache()
        cache.put_records([rr("ns.com", "192.0.2.53")], now=0)
        assert cache.peek_addresses(Name("ns.com"), 0) == ["192.0.2.53"]
        assert cache.peek_addresses(Name("other.com"), 0) == []
        assert cache.misses == 0  # peek does not count stats


class TestNegative:
    def test_nxdomain_cached(self):
        cache = DnsCache()
        cache.put_negative(Name("no.com"), RecordType.A,
                           CacheOutcome.NEGATIVE_NXDOMAIN, ttl=60, now=0)
        answer = cache.get(Name("no.com"), RecordType.A, 1000)
        assert answer.outcome == CacheOutcome.NEGATIVE_NXDOMAIN

    def test_nodata_cached(self):
        cache = DnsCache()
        cache.put_negative(Name("a.com"), RecordType.AAAA,
                           CacheOutcome.NEGATIVE_NODATA, ttl=60, now=0)
        assert cache.get(Name("a.com"), RecordType.AAAA, 0).outcome == \
            CacheOutcome.NEGATIVE_NODATA

    def test_negative_expiry(self):
        cache = DnsCache()
        cache.put_negative(Name("no.com"), RecordType.A,
                           CacheOutcome.NEGATIVE_NXDOMAIN, ttl=5, now=0)
        assert cache.get(Name("no.com"), RecordType.A, 6000).is_miss

    def test_nxdomain_covers_all_types(self):
        cache = DnsCache()
        cache.put_negative(Name("no.com"), RecordType.A,
                           CacheOutcome.NEGATIVE_NXDOMAIN, ttl=60, now=0)
        assert cache.get(Name("no.com"), RecordType.AAAA, 0).outcome == \
            CacheOutcome.NEGATIVE_NXDOMAIN

    def test_positive_insert_clears_negative(self):
        cache = DnsCache()
        cache.put_negative(Name("a.com"), RecordType.A,
                           CacheOutcome.NEGATIVE_NXDOMAIN, ttl=60, now=0)
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        assert cache.get(Name("a.com"), RecordType.A, 0).outcome == \
            CacheOutcome.HIT

    def test_non_negative_outcome_rejected(self):
        cache = DnsCache()
        with pytest.raises(ValueError):
            cache.put_negative(Name("a.com"), RecordType.A,
                               CacheOutcome.HIT, ttl=60, now=0)


class TestCapacity:
    def test_lru_eviction(self):
        cache = DnsCache(max_entries=3)
        for index in range(5):
            cache.put_records([rr(f"h{index}.com", "192.0.2.1")], now=0)
        assert len(cache) == 3
        assert cache.get(Name("h0.com"), RecordType.A, 0).is_miss
        assert cache.get(Name("h4.com"), RecordType.A, 0).outcome == \
            CacheOutcome.HIT

    def test_access_refreshes_lru_position(self):
        cache = DnsCache(max_entries=2)
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        cache.put_records([rr("b.com", "192.0.2.2")], now=0)
        cache.get(Name("a.com"), RecordType.A, 0)  # refresh a.com
        cache.put_records([rr("c.com", "192.0.2.3")], now=0)
        assert cache.get(Name("a.com"), RecordType.A, 0).outcome == \
            CacheOutcome.HIT
        assert cache.get(Name("b.com"), RecordType.A, 0).is_miss

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DnsCache(max_entries=0)

    def test_flush(self):
        cache = DnsCache()
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        cache.flush()
        assert len(cache) == 0


class TestStats:
    def test_hit_miss_counters(self):
        cache = DnsCache()
        cache.get(Name("a.com"), RecordType.A, 0)
        cache.put_records([rr("a.com", "192.0.2.1")], now=0)
        cache.get(Name("a.com"), RecordType.A, 0)
        assert cache.misses == 1
        assert cache.hits == 1


@given(st.integers(min_value=1, max_value=3600),
       st.floats(min_value=0, max_value=10_000_000))
def test_entry_valid_exactly_until_ttl(ttl, probe_ms):
    cache = DnsCache()
    cache.put_records([rr("p.com", "192.0.2.1", ttl=ttl)], now=0)
    answer = cache.get(Name("p.com"), RecordType.A, probe_ms)
    if probe_ms < ttl * 1000:
        assert answer.outcome == CacheOutcome.HIT
        assert 0 <= answer.records[0].ttl <= ttl
    else:
        assert answer.is_miss
