"""End-to-end resolution tests over the miniature internet fixture."""

import pytest

from repro.dnswire import ClientSubnet, Edns, Name, RecordType
from repro.errors import QueryTimeout
from repro.netsim.engine import ProcessFailed
from repro.netsim import Constant
from repro.netsim.packet import Endpoint
from repro.resolver import ForwardingResolver, StubResolver

from tests.resolver.conftest import MiniInternet


class TestAuthoritativeDirect:
    """Query the authoritative server directly (no recursion)."""

    def query_auth(self, internet, name, rtype=RecordType.A):
        stub = StubResolver(internet.net, internet.net.host("resolver"),
                            internet.auth_server.endpoint)
        future = internet.sim.spawn(stub.query(Name(name), rtype))
        return internet.sim.run_until_resolved(future)

    def test_a_record(self, internet):
        result = self.query_auth(internet, "www.example.com")
        assert result.status == "NOERROR"
        assert result.addresses == ["203.0.113.80"]
        assert result.response.flags.aa

    def test_cname_chased_across_hosted_zones(self, internet):
        result = self.query_auth(internet, "external.example.com")
        # auth hosts both example.com and cdn.net, so it returns the chain.
        assert result.addresses == ["198.18.0.7"]
        types = [record.rtype for record in result.response.answers]
        assert types == [RecordType.CNAME, RecordType.A]

    def test_nxdomain_with_soa(self, internet):
        result = self.query_auth(internet, "missing.example.com")
        assert result.status == "NXDOMAIN"
        assert result.response.authorities[0].rtype == RecordType.SOA

    def test_nodata(self, internet):
        result = self.query_auth(internet, "www.example.com", RecordType.AAAA)
        assert result.status == "NOERROR"
        assert not result.response.answers

    def test_out_of_authority_refused(self, internet):
        result = self.query_auth(internet, "www.unrelated.org")
        assert result.status == "REFUSED"


class TestRecursiveResolution:
    def test_full_iterative_walk(self, internet):
        result = internet.run_query("www.example.com")
        assert result.status == "NOERROR"
        assert result.addresses == ["203.0.113.80"]
        # Walk: client->resolver (1ms), then root, tld, auth at 5ms each.
        # 3 upstream round trips * 10ms + client round trip 2ms + processing.
        assert result.query_time_ms > 30

    def test_second_query_served_from_cache(self, internet):
        first = internet.run_query("www.example.com")
        second = internet.run_query("www.example.com")
        assert second.addresses == first.addresses
        # Cache hit: only the client<->resolver hop plus processing remains.
        assert second.query_time_ms < 5
        assert second.query_time_ms < first.query_time_ms / 5

    def test_sibling_name_reuses_delegations(self, internet):
        internet.run_query("www.example.com")
        sent_before = internet.resolver.upstream_queries_sent
        result = internet.run_query("alias.example.com")
        assert result.addresses == ["203.0.113.80"]
        # Only the authoritative server needed to be asked again.
        assert internet.resolver.upstream_queries_sent == sent_before + 1

    def test_cname_followed_across_zones(self, internet):
        result = internet.run_query("external.example.com")
        assert result.addresses == ["198.18.0.7"]
        assert result.response.answers[0].rtype == RecordType.CNAME

    def test_nxdomain_propagates_and_is_negative_cached(self, internet):
        first = internet.run_query("ghost.example.com")
        assert first.status == "NXDOMAIN"
        sent_before = internet.resolver.upstream_queries_sent
        second = internet.run_query("ghost.example.com")
        assert second.status == "NXDOMAIN"
        assert internet.resolver.upstream_queries_sent == sent_before

    def test_nodata_negative_cached(self, internet):
        internet.run_query("www.example.com", RecordType.AAAA)
        sent_before = internet.resolver.upstream_queries_sent
        result = internet.run_query("www.example.com", RecordType.AAAA)
        assert result.status == "NOERROR"
        assert not result.response.answers
        assert internet.resolver.upstream_queries_sent == sent_before

    def test_recursion_available_flag_set(self, internet):
        result = internet.run_query("www.example.com")
        assert result.response.flags.ra

    def test_unresolvable_tld_servfail(self, internet):
        result = internet.run_query("www.nowhere.invalid")
        assert result.status in ("SERVFAIL", "NXDOMAIN")

    def test_ttl_expiry_triggers_refetch(self, internet):
        internet.run_query("www.example.com")
        sent_before = internet.resolver.upstream_queries_sent
        # www TTL is 600s; advance past it.
        internet.sim.run(until=internet.sim.now + 700 * 1000)
        internet.run_query("www.example.com")
        assert internet.resolver.upstream_queries_sent > sent_before


class TestEcsResolution:
    def test_ecs_forwarded_and_answer_correct(self):
        internet = MiniInternet(ecs_enabled=True)
        result = internet.run_query("www.example.com")
        assert result.addresses == ["203.0.113.80"]

    def test_client_supplied_ecs_passes_through(self):
        internet = MiniInternet(ecs_enabled=True)
        ecs = ClientSubnet("10.0.0.0", 24)
        result = internet.run_query("www.example.com",
                                    edns=Edns(options=[ecs]))
        assert result.status == "NOERROR"


class TestForwarder:
    def build(self, internet, stub_domains=None):
        internet.net.add_host("fwd", "10.0.0.54")
        internet.net.add_link("client", "fwd", Constant(1))
        internet.net.add_link("fwd", "resolver", Constant(2))
        forwarder = ForwardingResolver(
            internet.net, internet.net.host("fwd"),
            upstreams=[internet.resolver.endpoint],
            stub_domains=stub_domains)
        stub = StubResolver(internet.net, internet.net.host("client"),
                            forwarder.endpoint)
        return forwarder, stub

    def run(self, internet, stub, name, rtype=RecordType.A):
        future = internet.sim.spawn(stub.query(Name(name), rtype))
        return internet.sim.run_until_resolved(future)

    def test_forwards_to_upstream(self, internet):
        forwarder, stub = self.build(internet)
        result = self.run(internet, stub, "www.example.com")
        assert result.addresses == ["203.0.113.80"]
        assert forwarder.forwarded == 1

    def test_caches_forwarded_answers(self, internet):
        forwarder, stub = self.build(internet)
        self.run(internet, stub, "www.example.com")
        result = self.run(internet, stub, "www.example.com")
        assert result.addresses == ["203.0.113.80"]
        assert forwarder.forwarded == 1
        assert forwarder.served_from_cache == 1

    def test_stub_domain_routes_to_dedicated_upstream(self, internet):
        # Route example.com queries straight to the authoritative server,
        # mirroring the paper's CoreDNS stub-domain configuration.
        forwarder, stub = self.build(
            internet,
            stub_domains={Name("example.com"): internet.auth_server.endpoint})
        result = self.run(internet, stub, "www.example.com")
        assert result.addresses == ["203.0.113.80"]
        assert internet.resolver.upstream_queries_sent == 0

    def test_longest_stub_domain_wins(self, internet):
        forwarder, stub = self.build(internet)
        forwarder.add_stub_domain(Name("com"), internet.resolver.endpoint)
        forwarder.add_stub_domain(Name("example.com"),
                                  internet.auth_server.endpoint)
        assert forwarder.upstreams_for(Name("www.example.com")) == \
            [internet.auth_server.endpoint]
        assert forwarder.upstreams_for(Name("other.com")) == \
            [internet.resolver.endpoint]

    def test_dead_upstream_yields_servfail(self, internet):
        internet.net.add_host("fwd2", "10.0.0.55")
        internet.net.add_link("client", "fwd2", Constant(1))
        forwarder = ForwardingResolver(
            internet.net, internet.net.host("fwd2"),
            upstreams=[Endpoint("10.9.9.9", 53)],  # unroutable
            upstream_timeout=50)
        stub = StubResolver(internet.net, internet.net.host("client"),
                            forwarder.endpoint)
        result = self.run(internet, stub, "www.example.com")
        assert result.status == "SERVFAIL"

    def test_negative_answers_cached(self, internet):
        forwarder, stub = self.build(internet)
        self.run(internet, stub, "ghost.example.com")
        result = self.run(internet, stub, "ghost.example.com")
        assert result.status == "NXDOMAIN"
        assert forwarder.forwarded == 1


class TestStubBehaviour:
    def test_retries_then_raises(self, internet):
        stub = StubResolver(internet.net, internet.net.host("client"),
                            Endpoint("10.99.0.1", 53),  # unroutable
                            timeout=20, retries=2)
        future = internet.sim.spawn(stub.query(Name("x.example.com")))
        with pytest.raises(ProcessFailed) as excinfo:
            internet.sim.run_until_resolved(future)
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
        assert stub.queries_issued == 3
        assert internet.sim.now >= 60  # three timeouts back to back

    def test_resolve_addresses_helper(self, internet):
        future = internet.sim.spawn(
            internet.stub.resolve_addresses(Name("www.example.com")))
        assert internet.sim.run_until_resolved(future) == ["203.0.113.80"]

    def test_resolve_addresses_empty_on_nxdomain(self, internet):
        future = internet.sim.spawn(
            internet.stub.resolve_addresses(Name("ghost.example.com")))
        assert internet.sim.run_until_resolved(future) == []

    def test_attempts_recorded(self, internet):
        result = internet.run_query("www.example.com")
        assert result.attempts == 1
