"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "figure5"])
        assert args.artifact == "figure5"
        assert args.queries == 40
        assert args.seed == 42

    def test_dig_defaults(self):
        args = build_parser().parse_args(["dig"])
        assert args.deployment == "mec-ldns-mec-cdns"
        assert args.count == 5
        assert not args.ecs

    def test_jobs_defaults_to_serial(self):
        args = build_parser().parse_args(["experiment", "figure5"])
        assert args.jobs == 1

    def test_all_is_a_valid_artifact(self):
        args = build_parser().parse_args(["experiment", "all"])
        assert args.artifact == "all"

    def test_registry_generated_flags_parse(self):
        args = build_parser().parse_args(
            ["experiment", "capacity", "--duration-ms", "250.5",
             "--attack-qps", "900", "--jobs", "2"])
        assert args.duration_ms == 250.5
        assert args.attack_qps == 900.0
        assert args.jobs == 2

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure9"])

    def test_unknown_deployment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dig", "--deployment", "pigeon"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_deployments_listing(self, capsys):
        assert main(["deployments"]) == 0
        out = capsys.readouterr().out
        assert "mec-ldns-mec-cdns" in out
        assert "Cloudflare DNS" in out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "a0.muscache.com" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "MEC Provider" in capsys.readouterr().out

    def test_figure5_small(self, capsys):
        assert main(["experiment", "figure5", "--queries", "6"]) == 0
        out = capsys.readouterr().out
        assert "MEC L-DNS w/ MEC C-DNS" in out
        assert "ALL HOLD" in out

    def test_figure5_sharded_output_matches_serial(self, capsys):
        assert main(["experiment", "figure5", "--queries", "6"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "figure5", "--queries", "6",
                     "--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial
        assert "ALL HOLD" in sharded

    def test_dig_runs_queries(self, capsys):
        assert main(["dig", "--count", "3", "--deployment",
                     "mec-ldns-mec-cdns"]) == 0
        out = capsys.readouterr().out
        assert out.count("NOERROR") == 3
        assert "wireless" in out

    def test_dig_with_ecs(self, capsys):
        assert main(["dig", "--count", "2", "--ecs"]) == 0
        assert capsys.readouterr().out.count("NOERROR") == 2

    def test_dig_warns_on_other_name(self, capsys):
        assert main(["dig", "www.google.com", "--count", "1"]) == 0
        captured = capsys.readouterr()
        assert "note:" in captured.err


class TestTelemetryExports:
    def test_dig_writes_chrome_trace_and_prometheus(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert main(["dig", "--count", "2",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
        document = json.loads(trace_path.read_text())
        complete = [event for event in document["traceEvents"]
                    if event["ph"] == "X"]
        assert complete
        assert all("ts" in event and "dur" in event for event in complete)
        text = metrics_path.read_text()
        assert "# TYPE repro_stub_lookups_total counter" in text
        assert "repro_net_datagrams_total" in text

    def test_experiment_writes_json_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["experiment", "figure5", "--queries", "6",
                     "--metrics-out", str(metrics_path)]) == 0
        document = json.loads(metrics_path.read_text())
        assert document["format"] == "repro-telemetry-v1"
        assert document["spans"]["traces"] > 0
        names = {entry["name"] for entry in document["metrics"]}
        assert "repro_lookup_latency_ms" in names

    def test_no_flags_leaves_telemetry_off(self, capsys):
        from repro import telemetry
        assert main(["dig", "--count", "1"]) == 0
        assert telemetry.get_default() is None

    def test_sampling_flags_shape_the_facade(self):
        args = build_parser().parse_args(
            ["experiment", "figure5", "--metrics-out", "m.json",
             "--trace-sample", "0.05", "--window-ms", "250",
             "--tail-exemplars", "8"])
        assert args.trace_sample == 0.05
        assert args.window_ms == 250.0
        assert args.tail_exemplars == 8

    def test_experiment_artifact_has_observability_sections(
            self, tmp_path, capsys):
        # The workload engine feeds the time-series and tail reservoir,
        # so a (tiny) population run exercises every artifact section.
        metrics_path = tmp_path / "metrics.json"
        assert main(["experiment", "population", "--districts", "1",
                     "--target-queries", "600",
                     "--metrics-out", str(metrics_path),
                     "--window-ms", "60000", "--trace-sample", "0.1"]) == 0
        document = json.loads(metrics_path.read_text())
        assert document["timeseries"]["format"] == "repro-timeseries-v1"
        assert document["timeseries"]["window_ms"] == 60000.0
        assert document["exemplars"]
        assert document["meta"]["executor"]["population"]["backend"] == \
            "serial"


class TestTailCommand:
    def artifact_with_exemplars(self, tmp_path):
        path = tmp_path / "telemetry.json"
        from repro.telemetry.sampling import Exemplar
        path.write_text(json.dumps({
            "format": "repro-telemetry-v1", "metrics": [],
            "exemplars": [
                Exemplar(key="d0/u1/s0/q2", total_ms=120.0, t_ms=3000.0,
                         stages=(("dns.resolver", 80.0), ("fetch", 40.0)),
                         attrs=(("deployment", "lan-ldns"),)).to_dict(),
                Exemplar(key="d0/u2/s0/q1", total_ms=200.0, t_ms=4000.0,
                         stages=(("dns.resolver", 150.0), ("fetch", 50.0)),
                         attrs=(("deployment", "lan-ldns"),)).to_dict(),
            ]}))
        return path

    def test_prints_slowest_first_with_stages(self, tmp_path, capsys):
        assert main(["tail", str(self.artifact_with_exemplars(tmp_path))]) \
            == 0
        out = capsys.readouterr().out
        assert "2 tail exemplars" in out
        assert out.index("d0/u2/s0/q1") < out.index("d0/u1/s0/q2")
        assert "dns.resolver" in out and "75.0%" in out

    def test_top_limits_output(self, tmp_path, capsys):
        assert main(["tail", str(self.artifact_with_exemplars(tmp_path)),
                     "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "d0/u2/s0/q1" in out
        assert "d0/u1/s0/q2" not in out

    def test_trace_out_reconstructs_spans(self, tmp_path, capsys):
        trace_path = tmp_path / "tail-trace.json"
        assert main(["tail", str(self.artifact_with_exemplars(tmp_path)),
                     "--trace-out", str(trace_path)]) == 0
        document = json.loads(trace_path.read_text())
        complete = [event for event in document["traceEvents"]
                    if event["ph"] == "X"]
        # 2 exemplars x (1 root + 2 stages).
        assert len(complete) == 6

    def test_missing_exemplars_section_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"format": "repro-telemetry-v1",
                                    "metrics": []}))
        assert main(["tail", str(path)]) == 2
        assert "no 'exemplars' section" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "absent.json")]) == 2


class TestCheckCommand:
    def test_parser_accepts_check_flags(self):
        args = build_parser().parse_args(
            ["check", "src/repro", "--analyzer", "determinism",
             "--format", "json"])
        assert args.paths == ["src/repro"]
        assert args.analyzers == ["determinism"]
        assert args.format == "json"

    def test_check_clean_on_own_source(self, capsys):
        import pathlib
        src = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"
        assert main(["check", str(src)]) == 0
        assert "repro check: clean" in capsys.readouterr().out

    def test_check_fails_on_violation(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("import time\nt = time.time()\n")
        assert main(["check", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out
