"""Round-trip tests for the telemetry exporters.

Pins the details downstream consumers rely on: Prometheus bucket
cumulation and label escaping, ``+Inf`` handling in both text and JSON
output, and the Chrome flow events that stitch cross-track parentage.
"""

import json

from repro.telemetry.exporters import (to_chrome_trace, to_json_artifact,
                                       to_prometheus_text)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


def _registry():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "test counter")
    counter.inc(3, path='a\\b"c', note="two\nlines")
    registry.gauge("repro_test_depth", "test gauge").set(7, host="h1")
    histogram = registry.histogram("repro_test_ms", "test histogram",
                                   buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 99.0):
        histogram.observe(value, deployment="d1")
    return registry


class TestPrometheusText:
    def test_histogram_buckets_cumulate(self):
        text = to_prometheus_text(_registry())
        assert 'repro_test_ms_bucket{deployment="d1",le="1"} 1' in text
        assert 'repro_test_ms_bucket{deployment="d1",le="2"} 2' in text
        # The overflow bucket renders the Prometheus spelling of inf and
        # counts every observation.
        assert 'repro_test_ms_bucket{deployment="d1",le="+Inf"} 3' in text
        assert 'repro_test_ms_sum{deployment="d1"} 101' in text
        assert 'repro_test_ms_count{deployment="d1"} 3' in text

    def test_label_escaping(self):
        text = to_prometheus_text(_registry())
        # Backslash, quote, and newline all escape per the exposition
        # format; the raw newline must never reach the output line.
        assert 'path="a\\\\b\\"c"' in text
        assert 'note="two\\nlines"' in text
        # The raw newline never reaches the output: the whole sample
        # stays one exposition line.
        sample_lines = [line for line in text.splitlines()
                        if line.startswith("repro_test_total{")]
        assert len(sample_lines) == 1
        assert sample_lines[0].endswith(" 3")

    def test_help_and_type_headers(self):
        text = to_prometheus_text(_registry())
        assert "# HELP repro_test_ms test histogram" in text
        assert "# TYPE repro_test_ms histogram" in text
        assert "# TYPE repro_test_total counter" in text
        assert "# TYPE repro_test_depth gauge" in text


class TestJsonArtifact:
    def test_document_round_trips_through_json(self):
        tracer = Tracer()
        root = tracer.add("lookup", "measure", "driver", 0.0, 4.0)
        tracer.add("transit", "net", "wire", 1.0, 3.0, parent=root)
        document = to_json_artifact(_registry(), spans=tracer.finished,
                                    meta={"experiment": "toy"})
        assert document == json.loads(json.dumps(document))

        assert document["format"] == "repro-telemetry-v1"
        assert document["meta"] == {"experiment": "toy"}
        by_name = {metric["name"]: metric for metric in document["metrics"]}
        sample = by_name["repro_test_ms"]["samples"][0]
        assert sample["count"] == 3 and sample["sum"] == 101.0
        assert [bucket["count"] for bucket in sample["buckets"]] == [1, 2, 3]
        assert sample["buckets"][-1]["le"] == "+Inf"
        assert by_name["repro_test_total"]["samples"][0]["value"] == 3.0

    def test_span_rollup(self):
        tracer = Tracer()
        root = tracer.add("lookup", "measure", "driver", 0.0, 4.0)
        tracer.add("transit", "net", "wire", 1.0, 2.0, parent=root)
        tracer.add("transit", "net", "wire", 2.0, 3.5, parent=root)
        document = to_json_artifact(MetricsRegistry(),
                                    spans=tracer.finished)
        rollup = document["spans"]
        assert rollup["count"] == 3 and rollup["traces"] == 1
        names = [entry["name"] for entry in rollup["by_name"]]
        assert names == sorted(names)
        transit = [entry for entry in rollup["by_name"]
                   if entry["name"] == "transit"][0]
        assert transit["count"] == 2 and transit["total_ms"] == 2.5


def _cross_track_trace():
    tracer = Tracer()
    root = tracer.add("lookup", "measure", "driver", 0.0, 10.0)
    stub = tracer.add("stub.query", "resolver", "ue-1", 0.0, 10.0,
                      parent=root)
    hop = tracer.add("transit", "net", "wire-1", 1.0, 3.0, parent=stub)
    # Same-track child: no flow arrow needed, nesting already shows it.
    tracer.add("stub.attempt", "resolver", "ue-1", 0.5, 9.5, parent=stub)
    return tracer, root, stub, hop


class TestChromeFlowEvents:
    def flows(self, document):
        return [event for event in document["traceEvents"]
                if event.get("cat") == "flow"]

    def test_cross_track_edges_emit_flow_pairs(self):
        tracer, root, stub, hop = _cross_track_trace()
        document = to_chrome_trace(tracer.finished)
        flows = self.flows(document)
        # Two cross-track edges (lookup -> stub.query, stub.query ->
        # transit), one s/f pair each; the same-track stub.attempt adds
        # none.
        assert sorted(event["ph"] for event in flows) == ["f", "f", "s", "s"]
        by_id = {}
        for event in flows:
            by_id.setdefault(event["id"], []).append(event)
        assert set(by_id) == {stub.span_id, hop.span_id}
        tids = {event["args"]["name"]: event["tid"]
                for event in document["traceEvents"]
                if event.get("name") == "thread_name"}
        start, finish = by_id[hop.span_id]
        assert (start["ph"], finish["ph"]) == ("s", "f")
        assert start["ts"] == finish["ts"] == hop.start_ms * 1000.0
        assert start["tid"] == tids["ue-1"]       # parent's track
        assert finish["tid"] == tids["wire-1"]    # child's track
        assert finish["bp"] == "e" and "bp" not in start
        assert start["name"] == "stub.query -> transit"

    def test_flow_events_are_deterministic_and_ordered(self):
        tracer, _, _, _ = _cross_track_trace()
        once = to_chrome_trace(tracer.finished)
        twice = to_chrome_trace(tracer.finished)
        assert once == twice
        flows = self.flows(once)
        keys = [(event["ts"], event["id"], 0 if event["ph"] == "s" else 1)
                for event in flows]
        assert keys == sorted(keys)
        # Flows ride after the span events, so existing consumers that
        # index the head of traceEvents see exactly what they used to.
        kinds = [event["ph"] for event in once["traceEvents"]]
        assert kinds.index("s") > max(index for index, kind
                                      in enumerate(kinds) if kind == "X")

    def test_open_or_trackless_spans_emit_no_flows(self):
        tracer = Tracer()
        root = tracer.add("lookup", "measure", "driver", 0.0, 5.0)
        dangling = tracer.begin("stub.query", "resolver", "ue-1",
                                parent=root)
        assert dangling is not None and dangling.end_ms is None
        document = to_chrome_trace(tracer.finished)
        assert self.flows(document) == []
