"""Tests for the Prometheus, Chrome trace, and JSON artifact exporters."""

import json

from repro.telemetry.exporters import (
    to_chrome_trace,
    to_json_artifact,
    to_prometheus_text,
    write_chrome_trace,
    write_json_artifact,
    write_prometheus_text,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


def populated_registry():
    """A registry with one of each instrument kind."""
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", "queries").inc(server="mec")
    registry.counter("repro_queries_total", "queries").inc(server="mec")
    registry.gauge("repro_queue_depth", "queue").set(4.0, server="mec")
    hist = registry.histogram("repro_latency_ms", "latency",
                              buckets=(10.0, 100.0))
    hist.observe(5.0)
    hist.observe(50.0)
    return registry


class TestPrometheusText:
    def test_help_and_type_headers(self):
        text = to_prometheus_text(populated_registry())
        assert "# HELP repro_queries_total queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_latency_ms histogram" in text

    def test_counter_sample_with_labels(self):
        text = to_prometheus_text(populated_registry())
        assert 'repro_queries_total{server="mec"} 2' in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus_text(populated_registry())
        assert 'repro_latency_ms_bucket{le="10"} 1' in text
        assert 'repro_latency_ms_bucket{le="100"} 2' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 2' in text
        assert "repro_latency_ms_sum 55" in text
        assert "repro_latency_ms_count 2" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "h").inc(path='a"b\\c')
        text = to_prometheus_text(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus_text(populated_registry(), str(path))
        assert path.read_text() == to_prometheus_text(populated_registry())


def finished_spans():
    """Two finished spans on two tracks plus one still-open span."""
    tracer = Tracer()
    clock = [0.0]
    tracer.bind_clock(lambda: clock[0])
    root = tracer.begin("lookup", "measure", "driver", qname="x.test")
    tracer.add("transit", "net", "pgw", start_ms=1.0, end_ms=3.5,
               parent=root)
    clock[0] = 10.0
    tracer.end(root, status="NOERROR")
    tracer.begin("never-finished", "measure", "driver")
    return tracer.finished


class TestChromeTrace:
    def test_document_is_json_serializable(self):
        document = to_chrome_trace(finished_spans())
        parsed = json.loads(json.dumps(document))
        assert parsed["displayTimeUnit"] == "ms"

    def test_complete_events_in_microseconds(self):
        document = to_chrome_trace(finished_spans())
        complete = [event for event in document["traceEvents"]
                    if event["ph"] == "X"]
        assert len(complete) == 2  # the open span is excluded
        transit = next(event for event in complete
                       if event["name"] == "transit")
        assert transit["ts"] == 1000.0
        assert transit["dur"] == 2500.0

    def test_thread_metadata_per_track(self):
        document = to_chrome_trace(finished_spans())
        thread_names = {event["args"]["name"]
                        for event in document["traceEvents"]
                        if event["ph"] == "M"
                        and event["name"] == "thread_name"}
        assert thread_names == {"driver", "pgw"}

    def test_span_identity_in_args(self):
        document = to_chrome_trace(finished_spans())
        transit = next(event for event in document["traceEvents"]
                       if event["ph"] == "X" and event["name"] == "transit")
        assert "trace_id" in transit["args"]
        assert "parent_id" in transit["args"]

    def test_events_sorted_by_timestamp(self):
        document = to_chrome_trace(finished_spans())
        stamps = [event["ts"] for event in document["traceEvents"]
                  if event["ph"] == "X"]
        assert stamps == sorted(stamps)

    def test_write_produces_loadable_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(finished_spans(), str(path))
        parsed = json.loads(path.read_text())
        assert any(event["ph"] == "X" for event in parsed["traceEvents"])


class TestJsonArtifact:
    def test_format_marker_and_metrics(self):
        document = to_json_artifact(populated_registry())
        assert document["format"] == "repro-telemetry-v1"
        names = {entry["name"] for entry in document["metrics"]}
        assert "repro_queries_total" in names

    def test_histogram_samples_json_safe(self):
        document = to_json_artifact(populated_registry())
        json.dumps(document)  # must not raise on the +Inf bound
        hist = next(entry for entry in document["metrics"]
                    if entry["name"] == "repro_latency_ms")
        bounds = [bucket["le"] for bucket in hist["samples"][0]["buckets"]]
        assert bounds[-1] == "+Inf"

    def test_span_rollup(self):
        document = to_json_artifact(populated_registry(),
                                    spans=finished_spans())
        assert document["spans"]["count"] == 2
        assert document["spans"]["traces"] == 1
        by_name = {entry["name"]: entry
                   for entry in document["spans"]["by_name"]}
        assert by_name["transit"]["count"] == 1

    def test_meta_passthrough(self):
        document = to_json_artifact(MetricsRegistry(),
                                    meta={"experiment": "figure5"})
        assert document["meta"] == {"experiment": "figure5"}

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_json_artifact(populated_registry(), str(path))
        parsed = json.loads(path.read_text())
        assert parsed["format"] == "repro-telemetry-v1"


class TestOpenMetricsExemplars:
    def exemplar_registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lookup_latency_ms", "latency",
                                  buckets=(10.0, 100.0))
        hist.observe(5.0, exemplar={"trace_id": "17"})
        hist.observe(50.0, exemplar={"trace_id": "23"})
        return registry

    def test_bucket_lines_carry_exemplars(self):
        text = to_prometheus_text(self.exemplar_registry())
        assert ('repro_lookup_latency_ms_bucket{le="10"} 1 '
                '# {trace_id="17"} 5' in text)
        assert ('repro_lookup_latency_ms_bucket{le="100"} 2 '
                '# {trace_id="23"} 50' in text)

    def test_sum_and_count_lines_unchanged(self):
        text = to_prometheus_text(self.exemplar_registry())
        assert "repro_lookup_latency_ms_sum 55" in text
        assert "repro_lookup_latency_ms_count 2" in text

    def test_exemplar_round_trips_through_the_text_format(self):
        # An OpenMetrics consumer splits the line on " # ": the left
        # half must stay plain Prometheus, the right half must parse
        # back to the exemplar labels and value.
        import re
        for line in to_prometheus_text(self.exemplar_registry()).splitlines():
            if " # " not in line:
                continue
            sample, exemplar = line.split(" # ", 1)
            assert re.fullmatch(r'\S+\{[^}]*\} \d+', sample)
            match = re.fullmatch(r'\{trace_id="(\d+)"\} ([\d.]+)', exemplar)
            assert match, exemplar
        assert any(" # " in line for line in
                   to_prometheus_text(self.exemplar_registry()).splitlines())

    def test_exemplar_label_values_escaped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(10.0,))
        hist.observe(5.0, exemplar={"key": 'a"b\\c\nd'})
        text = to_prometheus_text(registry)
        assert '# {key="a\\"b\\\\c\\nd"} 5' in text

    def test_last_observation_wins_per_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "help", buckets=(10.0,))
        hist.observe(3.0, exemplar={"trace_id": "1"})
        hist.observe(4.0, exemplar={"trace_id": "2"})
        text = to_prometheus_text(registry)
        assert text.count(" # ") == 1
        assert '# {trace_id="2"} 4' in text

    def test_buckets_without_exemplars_have_no_suffix(self):
        registry = MetricsRegistry()
        registry.histogram("h", "help", buckets=(10.0,)).observe(5.0)
        text = to_prometheus_text(registry)
        assert " # " not in text


class TestArtifactSections:
    def test_timeseries_section_embeds_the_document(self):
        from repro.telemetry.timeseries import TimeSeries
        series = TimeSeries(window_ms=500.0)
        series.count("repro_workload_queries", 600.0, deployment="d")
        document = to_json_artifact(MetricsRegistry(), timeseries=series)
        assert document["timeseries"]["format"] == "repro-timeseries-v1"
        assert document["timeseries"]["window_ms"] == 500.0

    def test_empty_timeseries_omitted(self):
        from repro.telemetry.timeseries import TimeSeries
        document = to_json_artifact(MetricsRegistry(),
                                    timeseries=TimeSeries())
        assert "timeseries" not in document

    def test_exemplars_section_slowest_first_and_round_trips(self):
        from repro.telemetry.sampling import Exemplar, TailReservoir
        tail = TailReservoir(4)
        for total in (30.0, 90.0, 60.0):
            tail.offer(Exemplar(key=f"q{total}", total_ms=total, t_ms=0.0,
                                stages=(("dns", total),)))
        document = to_json_artifact(MetricsRegistry(), tail=tail)
        totals = [entry["total_ms"] for entry in document["exemplars"]]
        assert totals == [90.0, 60.0, 30.0]
        rebuilt = [Exemplar.from_dict(entry)
                   for entry in document["exemplars"]]
        assert rebuilt == tail.items()

    def test_empty_tail_omitted(self):
        from repro.telemetry.sampling import TailReservoir
        document = to_json_artifact(MetricsRegistry(),
                                    tail=TailReservoir(4))
        assert "exemplars" not in document

    def test_write_round_trip_with_sections(self, tmp_path):
        from repro.telemetry.sampling import Exemplar, TailReservoir
        from repro.telemetry.timeseries import TimeSeries
        series = TimeSeries(window_ms=500.0)
        series.observe("repro_workload_total_ms", 100.0, 12.0,
                       deployment="d")
        tail = TailReservoir(2)
        tail.offer(Exemplar(key="q", total_ms=12.0, t_ms=100.0,
                            stages=(("dns", 12.0),)))
        path = tmp_path / "artifact.json"
        write_json_artifact(populated_registry(), str(path),
                            meta={"executor": {"backend": "serial"}},
                            timeseries=series, tail=tail)
        parsed = json.loads(path.read_text())
        assert parsed["format"] == "repro-telemetry-v1"
        assert parsed["meta"]["executor"]["backend"] == "serial"
        assert parsed["timeseries"]["series"][0]["kind"] == "latency"
        assert parsed["exemplars"][0]["key"] == "q"
