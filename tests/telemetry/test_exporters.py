"""Tests for the Prometheus, Chrome trace, and JSON artifact exporters."""

import json

from repro.telemetry.exporters import (
    to_chrome_trace,
    to_json_artifact,
    to_prometheus_text,
    write_chrome_trace,
    write_json_artifact,
    write_prometheus_text,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


def populated_registry():
    """A registry with one of each instrument kind."""
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", "queries").inc(server="mec")
    registry.counter("repro_queries_total", "queries").inc(server="mec")
    registry.gauge("repro_queue_depth", "queue").set(4.0, server="mec")
    hist = registry.histogram("repro_latency_ms", "latency",
                              buckets=(10.0, 100.0))
    hist.observe(5.0)
    hist.observe(50.0)
    return registry


class TestPrometheusText:
    def test_help_and_type_headers(self):
        text = to_prometheus_text(populated_registry())
        assert "# HELP repro_queries_total queries" in text
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_latency_ms histogram" in text

    def test_counter_sample_with_labels(self):
        text = to_prometheus_text(populated_registry())
        assert 'repro_queries_total{server="mec"} 2' in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus_text(populated_registry())
        assert 'repro_latency_ms_bucket{le="10"} 1' in text
        assert 'repro_latency_ms_bucket{le="100"} 2' in text
        assert 'repro_latency_ms_bucket{le="+Inf"} 2' in text
        assert "repro_latency_ms_sum 55" in text
        assert "repro_latency_ms_count 2" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "h").inc(path='a"b\\c')
        text = to_prometheus_text(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus_text(populated_registry(), str(path))
        assert path.read_text() == to_prometheus_text(populated_registry())


def finished_spans():
    """Two finished spans on two tracks plus one still-open span."""
    tracer = Tracer()
    clock = [0.0]
    tracer.bind_clock(lambda: clock[0])
    root = tracer.begin("lookup", "measure", "driver", qname="x.test")
    tracer.add("transit", "net", "pgw", start_ms=1.0, end_ms=3.5,
               parent=root)
    clock[0] = 10.0
    tracer.end(root, status="NOERROR")
    tracer.begin("never-finished", "measure", "driver")
    return tracer.finished


class TestChromeTrace:
    def test_document_is_json_serializable(self):
        document = to_chrome_trace(finished_spans())
        parsed = json.loads(json.dumps(document))
        assert parsed["displayTimeUnit"] == "ms"

    def test_complete_events_in_microseconds(self):
        document = to_chrome_trace(finished_spans())
        complete = [event for event in document["traceEvents"]
                    if event["ph"] == "X"]
        assert len(complete) == 2  # the open span is excluded
        transit = next(event for event in complete
                       if event["name"] == "transit")
        assert transit["ts"] == 1000.0
        assert transit["dur"] == 2500.0

    def test_thread_metadata_per_track(self):
        document = to_chrome_trace(finished_spans())
        thread_names = {event["args"]["name"]
                        for event in document["traceEvents"]
                        if event["ph"] == "M"
                        and event["name"] == "thread_name"}
        assert thread_names == {"driver", "pgw"}

    def test_span_identity_in_args(self):
        document = to_chrome_trace(finished_spans())
        transit = next(event for event in document["traceEvents"]
                       if event["ph"] == "X" and event["name"] == "transit")
        assert "trace_id" in transit["args"]
        assert "parent_id" in transit["args"]

    def test_events_sorted_by_timestamp(self):
        document = to_chrome_trace(finished_spans())
        stamps = [event["ts"] for event in document["traceEvents"]
                  if event["ph"] == "X"]
        assert stamps == sorted(stamps)

    def test_write_produces_loadable_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(finished_spans(), str(path))
        parsed = json.loads(path.read_text())
        assert any(event["ph"] == "X" for event in parsed["traceEvents"])


class TestJsonArtifact:
    def test_format_marker_and_metrics(self):
        document = to_json_artifact(populated_registry())
        assert document["format"] == "repro-telemetry-v1"
        names = {entry["name"] for entry in document["metrics"]}
        assert "repro_queries_total" in names

    def test_histogram_samples_json_safe(self):
        document = to_json_artifact(populated_registry())
        json.dumps(document)  # must not raise on the +Inf bound
        hist = next(entry for entry in document["metrics"]
                    if entry["name"] == "repro_latency_ms")
        bounds = [bucket["le"] for bucket in hist["samples"][0]["buckets"]]
        assert bounds[-1] == "+Inf"

    def test_span_rollup(self):
        document = to_json_artifact(populated_registry(),
                                    spans=finished_spans())
        assert document["spans"]["count"] == 2
        assert document["spans"]["traces"] == 1
        by_name = {entry["name"]: entry
                   for entry in document["spans"]["by_name"]}
        assert by_name["transit"]["count"] == 1

    def test_meta_passthrough(self):
        document = to_json_artifact(MetricsRegistry(),
                                    meta={"experiment": "figure5"})
        assert document["meta"] == {"experiment": "figure5"}

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_json_artifact(populated_registry(), str(path))
        parsed = json.loads(path.read_text())
        assert parsed["format"] == "repro-telemetry-v1"
