"""Tests for the streaming time-series (windowed counters/latencies)."""

import json

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS
from repro.telemetry.timeseries import TimeSeries


def label_windows(series_list):
    """``{labels-tuple: windows}`` view of a *_series() result."""
    return {key: windows for key, windows in series_list}


class TestRecording:
    def test_window_index(self):
        series = TimeSeries(window_ms=250.0)
        assert series.window_index(0.0) == 0
        assert series.window_index(249.9) == 0
        assert series.window_index(250.0) == 1
        assert series.window_index(1000.0) == 4

    def test_counts_accumulate_per_window_and_label(self):
        series = TimeSeries(window_ms=100.0)
        series.count("hits", 10.0, site="a")
        series.count("hits", 20.0, site="a")
        series.count("hits", 150.0, site="a")
        series.count("hits", 10.0, site="b")
        windows = label_windows(series.counter_series("hits"))
        assert windows[(("site", "a"),)] == {0: 2.0, 1: 1.0}
        assert windows[(("site", "b"),)] == {0: 1.0}

    def test_observe_builds_count_sum_buckets(self):
        series = TimeSeries(window_ms=100.0)
        series.observe("lat", 50.0, 3.0)
        series.observe("lat", 60.0, 7.0)
        ((_, windows),) = series.latency_series("lat")
        count, total, buckets = windows[0]
        assert count == 2
        assert total == 10.0
        assert sum(buckets) == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(window_ms=0.0)

    def test_empty_property(self):
        series = TimeSeries()
        assert series.empty
        series.count("x", 0.0)
        assert not series.empty


class TestBulkIngestion:
    def test_bulk_count_equals_loop(self):
        loop, bulk = TimeSeries(window_ms=100.0), TimeSeries(window_ms=100.0)
        for window, value in ((0, 3.0), (2, 1.0)):
            for _ in range(int(value)):
                loop.count("q", window * 100.0, site="s")
        bulk.bulk_count("q", {"site": "s"}, {0: 3.0, 2: 1.0})
        assert loop.to_dict() == bulk.to_dict()

    def test_bulk_observe_equals_loop(self):
        loop, bulk = TimeSeries(window_ms=100.0), TimeSeries(window_ms=100.0)
        values = [2.0, 9.0, 45.0]
        for value in values:
            loop.observe("lat", 50.0, value, site="s")
        cell = [0, 0.0, [0] * len(DEFAULT_BUCKETS)]
        from bisect import bisect_left
        for value in values:
            cell[0] += 1
            cell[1] += value
            cell[2][bisect_left(DEFAULT_BUCKETS, value)] += 1
        bulk.bulk_observe("lat", {"site": "s"}, {0: cell})
        assert loop.to_dict() == bulk.to_dict()


class TestMerge:
    def test_sharded_merge_equals_serial(self):
        serial = TimeSeries(window_ms=100.0)
        shards = [TimeSeries(window_ms=100.0) for _ in range(3)]
        events = [(i * 37.0 % 1000.0, float(i % 5)) for i in range(60)]
        for index, (t_ms, value) in enumerate(events):
            serial.count("q", t_ms, site="s")
            serial.observe("lat", t_ms, value, site="s")
            shards[index % 3].count("q", t_ms, site="s")
            shards[index % 3].observe("lat", t_ms, value, site="s")
        serial.annotate(500.0, "churn", detail="rollout", scope="site-0")
        shards[1].annotate(500.0, "churn", detail="rollout", scope="site-0")
        merged = TimeSeries(window_ms=100.0)
        for shard in shards:
            merged.merge_from(shard)
        assert json.dumps(merged.to_dict(), sort_keys=True) == \
            json.dumps(serial.to_dict(), sort_keys=True)

    def test_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(window_ms=100.0).merge_from(TimeSeries(window_ms=50.0))


class TestBounds:
    def test_old_windows_pruned(self):
        series = TimeSeries(window_ms=100.0, max_windows=4)
        for window in range(10):
            series.count("q", window * 100.0)
        ((_, windows),) = series.counter_series("q")
        assert sorted(windows) == [6, 7, 8, 9]

    def test_annotations_capped_earliest_kept(self):
        series = TimeSeries(max_annotations=3)
        for at in (5.0, 1.0, 4.0, 2.0, 3.0):
            series.annotate(at, "e")
        assert [a[0] for a in series.annotations()] == [1.0, 2.0, 3.0]


class TestDocument:
    def test_format_marker_and_shape(self):
        series = TimeSeries(window_ms=250.0)
        series.count("repro_workload_queries", 260.0,
                     deployment="mec-ldns-mec-cdns")
        series.observe("repro_workload_total_ms", 260.0, 12.0,
                       deployment="mec-ldns-mec-cdns")
        series.annotate(100.0, "zone_update", detail="serial=2", scope="z")
        document = series.to_dict()
        assert document["format"] == "repro-timeseries-v1"
        assert document["window_ms"] == 250.0
        counter, latency = document["series"]
        assert counter["kind"] == "counter"
        assert counter["windows"] == [
            {"index": 1, "start_ms": 250.0, "value": 1.0}]
        assert latency["kind"] == "latency"
        (window,) = latency["windows"]
        assert window["count"] == 1
        assert window["sum"] == 12.0
        # Zero buckets are omitted; only the one holding 12.0 remains.
        assert len(window["buckets"]) == 1
        assert document["annotations"] == [
            {"t_ms": 100.0, "name": "zone_update", "detail": "serial=2",
             "scope": "z"}]

    def test_infinite_bucket_serialized_as_string(self):
        series = TimeSeries(window_ms=100.0)
        series.observe("lat", 0.0, 10 ** 6)  # beyond every finite bucket
        document = series.to_dict()
        (window,) = document["series"][0]["windows"]
        assert window["buckets"] == [["+Inf", 1]]
        # The document must survive strict JSON round-tripping.
        assert json.loads(json.dumps(document)) == document
