"""Tests for the span tracer: lifecycle, parenting, disabled mode."""

from repro.telemetry.trace import Span, TraceContext, Tracer, spans_in_window


def make_tracer(now=0.0):
    """A tracer bound to a mutable fake clock (a one-element list)."""
    clock = [now]
    tracer = Tracer()
    tracer.bind_clock(lambda: clock[0])
    return tracer, clock


class TestLifecycle:
    def test_begin_end_records_duration(self):
        tracer, clock = make_tracer()
        span = tracer.begin("lookup", "measure", "driver")
        clock[0] = 12.5
        tracer.end(span)
        assert span.done
        assert span.duration_ms == 12.5
        assert tracer.finished == [span]

    def test_end_merges_attrs(self):
        tracer, clock = make_tracer()
        span = tracer.begin("lookup", "measure", "driver", qname="x.test")
        tracer.end(span, status="NOERROR")
        assert span.attrs == {"qname": "x.test", "status": "NOERROR"}

    def test_end_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.begin("lookup", "measure", "driver")
        clock[0] = 5.0
        tracer.end(span)
        clock[0] = 9.0
        tracer.end(span)  # second end must not move the clock or re-record
        assert span.end_ms == 5.0
        assert len(tracer.finished) == 1

    def test_add_records_explicit_times(self):
        tracer, _ = make_tracer()
        span = tracer.add("transit", "net", "pgw", start_ms=3.0, end_ms=7.0)
        assert span.duration_ms == 4.0
        assert span in tracer.finished

    def test_event_is_zero_duration(self):
        tracer, clock = make_tracer(now=42.0)
        span = tracer.event("deliver", "net", "host-a")
        assert span.start_ms == span.end_ms == 42.0

    def test_open_span_not_in_finished(self):
        tracer, _ = make_tracer()
        span = tracer.begin("lookup", "measure", "driver")
        assert not span.done
        assert tracer.finished == []


class TestParenting:
    def test_root_spans_get_fresh_traces(self):
        tracer, _ = make_tracer()
        first = tracer.begin("a", "c", "t")
        second = tracer.begin("b", "c", "t")
        assert first.trace_id != second.trace_id
        assert first.parent_id is None

    def test_child_joins_parent_trace(self):
        tracer, _ = make_tracer()
        parent = tracer.begin("outer", "c", "t")
        child = tracer.begin("inner", "c", "t", parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_context_parents_like_the_span(self):
        tracer, _ = make_tracer()
        parent = tracer.begin("outer", "c", "t")
        ctx = parent.context
        assert isinstance(ctx, TraceContext)
        child = tracer.begin("inner", "c", "t", parent=ctx)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_span_ids_are_unique(self):
        tracer, _ = make_tracer()
        spans = [tracer.begin("s", "c", "t") for _ in range(10)]
        assert len({span.span_id for span in spans}) == 10

    def test_spans_for_filters_by_trace(self):
        tracer, _ = make_tracer()
        root_a = tracer.begin("a", "c", "t")
        root_b = tracer.begin("b", "c", "t")
        tracer.end(root_a)
        tracer.end(root_b)
        assert tracer.spans_for(root_a.trace_id) == [root_a]
        assert set(tracer.trace_ids()) == {root_a.trace_id, root_b.trace_id}


class TestDisabled:
    def test_every_method_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("a", "c", "t") is None
        assert tracer.add("a", "c", "t", start_ms=0.0, end_ms=1.0) is None
        assert tracer.event("a", "c", "t") is None
        assert tracer.finished == []

    def test_end_of_none_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.end(None, status="ignored")  # must not raise
        assert tracer.finished == []


class TestBounds:
    def test_max_spans_drops_overflow(self):
        tracer, _ = make_tracer()
        tracer.max_spans = 2
        for _ in range(5):
            tracer.event("e", "c", "t")
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3

    def test_clear_keeps_id_sequence(self):
        tracer, _ = make_tracer()
        first = tracer.event("e", "c", "t")
        tracer.clear()
        second = tracer.event("e", "c", "t")
        assert tracer.finished == [second]
        assert second.span_id > first.span_id


class TestWindow:
    def test_spans_in_window_selects_by_end_time(self):
        spans = [
            Span(1, 1, None, "a", "c", "t", 0.0, 5.0, {}),
            Span(1, 2, None, "b", "c", "t", 0.0, 15.0, {}),
            Span(1, 3, None, "open", "c", "t", 0.0, None, {}),
        ]
        selected = spans_in_window(spans, 0.0, 10.0)
        assert [span.name for span in selected] == ["a"]
