"""Tests for deterministic sampling and the tail-exemplar reservoir."""

import pytest

from repro.telemetry.sampling import (
    Exemplar,
    HeadSampler,
    TailReservoir,
    exemplar_spans,
    hash_unit,
    hash_unit_u64,
)
from repro.telemetry.trace import Tracer


def make_exemplar(key, total_ms, t_ms=0.0):
    return Exemplar(key=key, total_ms=total_ms, t_ms=t_ms,
                    stages=(("dns", total_ms * 0.4),
                            ("fetch", total_ms * 0.6)),
                    attrs=(("deployment", "mec-ldns-mec-cdns"),))


class TestHashUnit:
    def test_deterministic(self):
        assert hash_unit("ue-7/s3") == hash_unit("ue-7/s3")
        assert hash_unit_u64(123456) == hash_unit_u64(123456)

    def test_unit_interval(self):
        for key in ("a", "b", "population/d0/u1"):
            assert 0.0 <= hash_unit(key) < 1.0
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0.0 <= hash_unit_u64(value) < 1.0

    def test_spreads(self):
        values = {hash_unit_u64(i) for i in range(1000)}
        assert len(values) == 1000


class TestHeadSampler:
    def test_rate_one_keeps_everything(self):
        sampler = HeadSampler(1.0)
        assert all(sampler.keep(f"k{i}") for i in range(50))

    def test_rate_zero_drops_everything(self):
        sampler = HeadSampler(0.0)
        assert not any(sampler.keep(f"k{i}") for i in range(50))

    def test_fractional_rate_is_deterministic_and_close(self):
        sampler = HeadSampler(0.2)
        kept = [sampler.keep_id(i) for i in range(5000)]
        assert kept == [HeadSampler(0.2).keep_id(i) for i in range(5000)]
        assert 0.15 < sum(kept) / len(kept) < 0.25


class TestExemplar:
    def test_round_trip(self):
        exemplar = make_exemplar("d0/u3/s1/q2", 123.5, t_ms=4000.0)
        again = Exemplar.from_dict(exemplar.to_dict())
        assert again == exemplar

    def test_sort_key_is_a_strict_total_order(self):
        a = make_exemplar("a", 10.0)
        b = make_exemplar("b", 10.0)
        assert a.sort_key() != b.sort_key()
        assert sorted([b, a], key=Exemplar.sort_key) == [a, b]


class TestTailReservoir:
    def test_keeps_exactly_the_slowest(self):
        reservoir = TailReservoir(5)
        # Offer in a scrambled order; top-5 must be exact regardless.
        for total in [7, 1, 9, 3, 12, 5, 11, 2, 8, 4, 10, 6]:
            reservoir.offer(make_exemplar(f"q{total}", float(total)))
        assert [e.total_ms for e in reservoir.items()] == \
            [12.0, 11.0, 10.0, 9.0, 8.0]
        assert reservoir.offered == 12

    def test_merge_order_independent(self):
        everything = [make_exemplar(f"q{i}", float((i * 37) % 101))
                      for i in range(60)]
        one = TailReservoir(8)
        for exemplar in everything:
            one.offer(exemplar)
        shards = [TailReservoir(8) for _ in range(3)]
        for index, exemplar in enumerate(everything):
            shards[index % 3].offer(exemplar)
        merged = TailReservoir(8)
        for shard in reversed(shards):
            merged.merge(shard)
        assert merged.items() == one.items()

    def test_threshold_rejects_fast_queries(self):
        reservoir = TailReservoir(4)
        for total in range(100, 108):
            reservoir.offer(make_exemplar(f"q{total}", float(total)))
        reservoir.items()   # force a compaction
        assert reservoir.threshold_ms is not None
        # Anything strictly below the threshold cannot change the top-K.
        reservoir.offer(make_exemplar("fast", reservoir.threshold_ms - 1))
        assert [e.total_ms for e in reservoir.items()] == \
            [107.0, 106.0, 105.0, 104.0]

    def test_capacity_zero_counts_but_keeps_nothing(self):
        reservoir = TailReservoir(0)
        reservoir.offer(make_exemplar("q", 5.0))
        assert len(reservoir) == 0
        assert reservoir.offered == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TailReservoir(-1)


class TestExemplarSpans:
    def test_reconstructs_root_and_stage_children(self):
        exemplar = make_exemplar("d0/u1/s0/q0", 100.0, t_ms=2000.0)
        tracer = Tracer()
        exemplar_spans([exemplar], tracer)
        spans = tracer.finished
        assert len(spans) == 3
        root = spans[0]
        assert root.name == "query"
        assert root.start_ms == 2000.0
        assert root.end_ms == 2100.0
        assert root.attrs["key"] == "d0/u1/s0/q0"
        # Stages lie end to end inside the root.
        dns, fetch = spans[1], spans[2]
        assert (dns.start_ms, dns.end_ms) == (2000.0, 2040.0)
        assert (fetch.start_ms, fetch.end_ms) == (2040.0, 2100.0)
        assert dns.parent_id == root.span_id
        assert fetch.parent_id == root.span_id
