"""Tests for the metrics registry: counters, gauges, histograms."""

import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("c", "help")
        assert counter.value() == 0.0
        assert counter.total() == 0.0

    def test_inc_default_amount(self):
        counter = Counter("c", "help")
        counter.inc()
        counter.inc()
        assert counter.value() == 2.0

    def test_labels_partition_the_series(self):
        counter = Counter("c", "help")
        counter.inc(server="a")
        counter.inc(server="a")
        counter.inc(server="b")
        assert counter.value(server="a") == 2.0
        assert counter.value(server="b") == 1.0
        assert counter.total() == 3.0

    def test_label_order_does_not_matter(self):
        counter = Counter("c", "help")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_negative_increment_rejected(self):
        counter = Counter("c", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_samples_enumerate_all_series(self):
        counter = Counter("c", "help")
        counter.inc(server="a")
        counter.inc(server="b", amount=2.5)
        samples = dict(counter.samples())
        assert samples[(("server", "a"),)] == 1.0
        assert samples[(("server", "b"),)] == 2.5


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("g", "help")
        gauge.set(42.0)
        assert gauge.value() == 42.0

    def test_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.inc(3.0)
        gauge.dec(1.0)
        assert gauge.value() == 2.0

    def test_labelled_series_independent(self):
        gauge = Gauge("g", "help")
        gauge.set(1.0, host="a")
        gauge.set(9.0, host="b")
        assert gauge.value(host="a") == 1.0
        assert gauge.value(host="b") == 9.0


class TestHistogram:
    def test_default_buckets_end_in_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf

    def test_observe_counts_and_sums(self):
        hist = Histogram("h", "help", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(105.5)

    def test_cumulative_buckets(self):
        hist = Histogram("h", "help", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        cumulative = dict(hist.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[10.0] == 2
        assert cumulative[math.inf] == 3

    def test_inf_bucket_always_present(self):
        hist = Histogram("h", "help", buckets=(5.0,))
        hist.observe(999.0)
        assert dict(hist.cumulative_buckets())[math.inf] == 1

    def test_labelled_histograms(self):
        hist = Histogram("h", "help", buckets=(10.0,))
        hist.observe(1.0, site="edge")
        hist.observe(2.0, site="cloud")
        assert hist.count(site="edge") == 1
        assert hist.count(site="cloud") == 1
        assert hist.count() == 0  # the unlabelled series is untouched


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", "help")
        second = registry.counter("requests", "other help ignored")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "help")
        with pytest.raises(ValueError):
            registry.gauge("x", "help")

    def test_len_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a", "help")
        registry.histogram("b", "help")
        assert len(registry) == 2
        assert "a" in registry
        assert "missing" not in registry

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz", "help")
        registry.counter("aa", "help")
        names = [instrument.name for instrument in registry.instruments()]
        assert names == sorted(names)

    def test_get_unknown_returns_none(self):
        assert MetricsRegistry().get("nope") is None
