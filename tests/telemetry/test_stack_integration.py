"""Whole-stack telemetry tests: parity with the packet tap and the
zero-perturbation guarantee.

The two load-bearing claims of the subsystem:

* The span-based Figure 3 wireless/resolver split must agree with the
  packet-tap method (``measure.runner._wireless_portion``) — both
  observe the same simulated instants, so they agree to the float.
* Attaching telemetry must not change the simulation at all: the
  resilience experiment's byte-for-byte replay digest is identical with
  telemetry off and on.
"""

import pytest

from repro import telemetry
from repro.core.deployments import build_testbed
from repro.measure.runner import measure_deployment_queries
from repro.telemetry.analysis import wireless_resolver_split


@pytest.fixture(autouse=True)
def no_leaked_default():
    """Every test starts and ends without an ambient default telemetry."""
    telemetry.clear_default()
    yield
    telemetry.clear_default()


def measured_run(deployment, count=4, seed=7):
    """Run a measured deployment with telemetry attached; return both."""
    testbed = build_testbed(deployment, seed=seed)
    tel = telemetry.Telemetry().attach(testbed.network)
    measurements = measure_deployment_queries(testbed, count)
    return testbed, tel, measurements


class TestSpanTapParity:
    @pytest.mark.parametrize("deployment", [
        "mec-ldns-mec-cdns",
        "mec-ldns-wan-cdns",
        "google-dns",
    ])
    def test_split_matches_packet_tap(self, deployment):
        testbed, tel, measurements = measured_run(deployment)
        assert measurements
        for m in measurements:
            assert m.trace_id is not None
            spans = tel.tracer.spans_for(m.trace_id)
            split = wireless_resolver_split(
                spans, testbed.gateway_host,
                m.started_at, m.started_at + m.latency_ms,
                trace_id=m.trace_id)
            assert split.crossings >= 2  # query out, answer back
            assert split.wireless_ms == pytest.approx(m.wireless_ms,
                                                      abs=1e-9)
            assert split.resolver_ms == pytest.approx(m.resolver_ms,
                                                      abs=1e-9)

    def test_trace_covers_whole_lookup(self):
        _, tel, measurements = measured_run("mec-ldns-mec-cdns")
        for m in measurements:
            spans = tel.tracer.spans_for(m.trace_id)
            names = {span.name for span in spans}
            # The trace must walk the whole stack: driver, stub,
            # network hops, and the serving DNS.
            assert "lookup" in names
            assert "stub.query" in names
            assert "stub.attempt" in names
            assert "transit" in names
            assert "dns.serve" in names

    def test_each_lookup_is_its_own_trace(self):
        _, tel, measurements = measured_run("mec-ldns-mec-cdns")
        trace_ids = [m.trace_id for m in measurements]
        assert len(set(trace_ids)) == len(trace_ids)

    def test_metrics_observed_across_layers(self):
        _, tel, _ = measured_run("mec-ldns-mec-cdns")
        registry = tel.metrics
        assert registry.get("repro_stub_lookups_total").total() > 0
        assert registry.get("repro_dns_queries_total").total() > 0
        assert registry.get("repro_net_datagrams_total").total() > 0
        assert registry.get("repro_lookup_latency_ms").count() > 0


class TestZeroPerturbation:
    def test_replay_digest_identical_with_telemetry_on(self):
        from repro.experiments.resilience import _crash_cell

        def run_digest():
            _, _, digest = _crash_cell("mec-ldns-mec-cdns", "resilient",
                                       queries=5, seed=3)
            return digest

        baseline = run_digest()
        tel = telemetry.Telemetry()
        telemetry.set_default(tel)
        try:
            instrumented = run_digest()
        finally:
            telemetry.clear_default()
        assert instrumented == baseline
        # The comparison must not be vacuous: telemetry really observed
        # the instrumented run.
        assert len(tel.tracer.finished) > 0
        assert len(tel.metrics) > 0

    def test_measurements_identical_with_telemetry_on(self):
        plain = measure_deployment_queries(
            build_testbed("mec-ldns-mec-cdns", seed=11), 4)
        _, _, traced = measured_run("mec-ldns-mec-cdns", count=4, seed=11)
        for before, after in zip(plain, traced):
            assert after.latency_ms == before.latency_ms
            assert after.wireless_ms == before.wireless_ms
            assert after.addresses == before.addresses
            assert after.started_at == before.started_at
