"""Tests for the executor race-detection rules."""

import textwrap

from repro.check import races
from repro.check.sources import load_tree


def lint(code, tmp_path, roots=races.DEFAULT_ROOTS):
    """Rules triggered by ``code``, as a sorted list of rule ids."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    findings = races.analyze(load_tree([str(path)]), roots=roots)
    return sorted(finding.rule for finding in findings)


class TestReachability:
    def test_race_in_helper_called_from_root(self, tmp_path):
        # The violation lives two hops from run_trial; the call graph
        # carries reachability there.
        assert lint(
            """\
            RESULTS = []

            def _record(value):
                RESULTS.append(value)

            def _measure(spec):
                _record(spec)

            def run_trial(spec):
                _measure(spec)
            """, tmp_path) == ["RACE001"]

    def test_unreachable_code_is_not_checked(self, tmp_path):
        # Same violation, but nothing roots at it: workers never run it.
        assert lint(
            """\
            RESULTS = []

            def offline_report(value):
                RESULTS.append(value)
            """, tmp_path) == []


class TestRace001SharedState:
    def test_global_store_flagged(self, tmp_path):
        assert lint(
            """\
            COUNT = 0

            def run_trial(spec):
                global COUNT
                COUNT = COUNT + 1
            """, tmp_path) == ["RACE001"]

    def test_class_attribute_store_flagged(self, tmp_path):
        assert lint(
            """\
            class Cache:
                hits = 0

            def run_trial(spec):
                Cache.hits = spec
            """, tmp_path) == ["RACE001"]

    def test_item_store_into_module_dict_flagged(self, tmp_path):
        assert lint(
            """\
            CACHE = {}

            def run_trial(spec):
                CACHE[spec] = 1
            """, tmp_path) == ["RACE001"]

    def test_mutator_call_on_module_list_flagged(self, tmp_path):
        assert lint(
            """\
            SEEN = []

            def run_trial(spec):
                SEEN.append(spec)
            """, tmp_path) == ["RACE001"]

    def test_local_shadow_is_clean(self, tmp_path):
        # A local rebinding shadows the module name; mutating the local
        # object touches no shared state.
        assert lint(
            """\
            SEEN = []

            def run_trial(spec):
                SEEN = []
                SEEN.append(spec)
                return SEEN
            """, tmp_path) == []


class TestRace002MutableDefault:
    def test_mutable_default_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec, acc=[]):
                acc.append(spec)
                return acc
            """, tmp_path) == ["RACE002"]

    def test_dict_call_default_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec, acc=dict()):
                return acc
            """, tmp_path) == ["RACE002"]

    def test_none_default_clean(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec, acc=None):
                acc = acc if acc is not None else []
                acc.append(spec)
                return acc
            """, tmp_path) == []


class TestRace003ProcessDependence:
    def test_id_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec):
                return id(spec)
            """, tmp_path) == ["RACE003"]

    def test_hash_of_string_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec):
                return hash(spec.name)
            """, tmp_path) == ["RACE003"]

    def test_hash_of_int_constant_clean(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec):
                return hash(42)
            """, tmp_path) == []

    def test_set_iteration_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec):
                names = set(spec)
                out = []
                for name in names:
                    out.append(name)
                return out
            """, tmp_path) == ["RACE003"]

    def test_sorted_set_iteration_clean(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec):
                names = set(spec)
                out = []
                for name in sorted(names):
                    out.append(name)
                return out
            """, tmp_path) == []


class TestRace004PicklingBoundary:
    def test_lambda_to_pool_map_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(pool, items):
                return pool.map(lambda item: item + 1, items)
            """, tmp_path) == ["RACE004"]

    def test_nested_function_to_trialspec_flagged(self, tmp_path):
        assert lint(
            """\
            def run_trial(spec):
                def local_build(seed):
                    return seed
                return TrialSpec(build=local_build)
            """, tmp_path) == ["RACE004"]

    def test_module_level_function_clean(self, tmp_path):
        assert lint(
            """\
            def build(seed):
                return seed

            def run_trial(pool, items):
                return pool.map(build, items)
            """, tmp_path) == []


class TestSuppression:
    def test_inline_allow_suppresses(self, tmp_path):
        assert lint(
            """\
            COUNT = 0

            def run_trial(spec):
                global COUNT
                COUNT = COUNT + 1  # repro: allow[RACE001] merged post-barrier
            """, tmp_path) == []

    def test_comment_line_above_suppresses(self, tmp_path):
        assert lint(
            """\
            COUNT = 0

            def run_trial(spec):
                global COUNT
                # repro: allow[RACE001] merged post-barrier
                COUNT = COUNT + 1
            """, tmp_path) == []
