"""Tests for the ARCH import-layering contract checker."""

import pathlib

from repro.check import layering
from repro.check.sources import load_tree

REPO_SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def build_tree(tmp_path, files):
    """Write ``files`` (relative path -> source) and load them as a tree."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return load_tree([str(tmp_path)])


def fake_repo(tmp_path, extra):
    """A minimal ``repro`` package plus ``extra`` modules."""
    files = {"repro/__init__.py": "", "repro/errors.py": ""}
    for package in ("telemetry", "netsim", "resolver", "dnswire", "cdn"):
        files[f"repro/{package}/__init__.py"] = ""
    files.update(extra)
    return build_tree(tmp_path, files)


def rules_of(findings):
    return sorted(finding.rule for finding in findings)


class TestContract:
    def test_clean_real_tree(self):
        findings = layering.analyze(load_tree([str(REPO_SRC)]))
        assert findings == []

    def test_arch001_upward_import(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/netsim/engine.py": "from repro.resolver import stub\n"})
        assert rules_of(layering.analyze(tree)) == ["ARCH001"]

    def test_arch002_telemetry_imports_sim_layer(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/telemetry/trace.py": "from repro.netsim import engine\n"})
        findings = layering.analyze(tree)
        assert rules_of(findings) == ["ARCH002"]
        assert "zero-perturbation" in findings[0].message

    def test_arch003_dnswire_third_party(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/dnswire/wire.py": "import numpy\n"})
        assert rules_of(layering.analyze(tree)) == ["ARCH003"]

    def test_arch003_not_triggered_by_stdlib(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/dnswire/wire.py": "import struct\nimport ipaddress\n"})
        assert layering.analyze(tree) == []

    def test_arch004_uncontracted_package(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/widgets/__init__.py": "import os\n"})
        findings = layering.analyze(tree)
        assert rules_of(findings) == ["ARCH004"]
        assert "widgets" in findings[0].message

    def test_arch005_cycle(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/cdn/router.py": "from repro.resolver import server\n",
            "repro/resolver/server.py": "from repro.cdn import router\n"})
        rules = rules_of(layering.analyze(tree))
        assert "ARCH005" in rules  # resolver may not import cdn -> ARCH001 too
        assert "ARCH001" in rules

    def test_lazy_function_level_import_is_checked(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/telemetry/trace.py":
                "def hook():\n    from repro.netsim import engine\n"
                "    return engine\n"})
        assert rules_of(layering.analyze(tree)) == ["ARCH002"]

    def test_from_repro_import_names_subpackage(self, tmp_path):
        # ``from repro import netsim`` must attribute the edge to netsim,
        # not to the package facade.
        tree = fake_repo(tmp_path, {
            "repro/telemetry/trace.py": "from repro import netsim\n"})
        assert rules_of(layering.analyze(tree)) == ["ARCH002"]

    def test_custom_contract(self, tmp_path):
        tree = build_tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/alpha/__init__.py": "from repro.beta import core\n",
            "repro/beta/__init__.py": "",
            "repro/beta/core.py": ""})
        allowed = {"alpha": frozenset({"beta"}), "beta": frozenset(),
                   "__init__": frozenset({"alpha", "beta"})}
        assert layering.analyze(tree, contract=allowed) == []
        denied = {"alpha": frozenset(), "beta": frozenset(),
                  "__init__": frozenset()}
        assert rules_of(layering.analyze(tree, contract=denied)) == ["ARCH001"]

    def test_runtime_layer_in_contract(self):
        assert layering.DEFAULT_CONTRACT["runtime"] == \
            frozenset({"errors", "telemetry"})
        assert "runtime" in layering.SIM_LAYERS

    def test_runtime_may_not_import_experiments(self, tmp_path):
        # The registry hands pickled experiment *instances* to workers;
        # a module-level (or lazy) import edge would close the cycle.
        tree = fake_repo(tmp_path, {
            "repro/runtime/__init__.py": "",
            "repro/experiments/__init__.py": "",
            "repro/runtime/executor.py":
                "from repro.experiments import figure5\n"})
        assert "ARCH001" in rules_of(layering.analyze(tree))

    def test_experiments_may_import_runtime(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/runtime/__init__.py": "",
            "repro/experiments/__init__.py": "",
            "repro/experiments/figure5.py":
                "from repro.runtime import spec\n"})
        assert layering.analyze(tree) == []

    def test_profile_layer_in_contract(self):
        # profile is a leaf analysis consumer: it may read the whole
        # stack below it but nothing may import it back.
        assert layering.DEFAULT_CONTRACT["profile"] == frozenset(
            {"errors", "telemetry", "netsim", "runtime", "experiments"})
        assert "profile" in layering.SIM_LAYERS
        for package, allowed in layering.DEFAULT_CONTRACT.items():
            if package not in ("profile", "cli", "__init__", "__main__"):
                assert "profile" not in allowed, package

    def test_experiments_may_not_import_profile(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/profile/__init__.py": "",
            "repro/experiments/__init__.py": "",
            "repro/experiments/figure5.py":
                "from repro.profile import budget\n"})
        assert "ARCH001" in rules_of(layering.analyze(tree))

    def test_inline_suppression(self, tmp_path):
        tree = fake_repo(tmp_path, {
            "repro/netsim/engine.py":
                "from repro.resolver import stub  # repro: allow[ARCH001]\n"})
        assert layering.analyze(tree) == []
