"""Tests for the DET determinism linter."""

import pathlib
import textwrap

import pytest

from repro.check import determinism
from repro.check.sources import load_tree

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint(code, tmp_path):
    """Rules triggered by ``code``, as a sorted list of rule ids."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    findings = determinism.analyze(load_tree([str(path)]))
    return sorted(finding.rule for finding in findings)


class TestRules:
    @pytest.mark.parametrize("code", [
        "import time\nnow = time.time()\n",
        "from time import monotonic\nnow = monotonic()\n",
        "import time as t\nnow = t.perf_counter()\n",
        "from datetime import datetime\nstamp = datetime.now()\n",
        "import datetime\nstamp = datetime.datetime.utcnow()\n",
    ])
    def test_det001_wall_clock(self, code, tmp_path):
        assert lint(code, tmp_path) == ["DET001"]

    @pytest.mark.parametrize("code", [
        "import os\nnoise = os.urandom(16)\n",
        "import uuid\ntoken = uuid.uuid4()\n",
        "import secrets\ntoken = secrets.token_bytes(8)\n",
        "import random\nrng = random.SystemRandom()\n",
    ])
    def test_det002_entropy(self, code, tmp_path):
        assert lint(code, tmp_path) == ["DET002"]

    @pytest.mark.parametrize("code", [
        "import random\nvalue = random.random()\n",
        "import random\nvalue = random.choice([1, 2])\n",
        "from random import shuffle\nshuffle([])\n",
        "import random\nrandom.seed(7)\n",
    ])
    def test_det003_module_level_draw(self, code, tmp_path):
        assert lint(code, tmp_path) == ["DET003"]

    def test_det004_unseeded_random(self, tmp_path):
        assert lint("import random\nrng = random.Random()\n",
                    tmp_path) == ["DET004"]

    def test_seeded_random_is_fine(self, tmp_path):
        assert lint("import random\nrng = random.Random(42)\n",
                    tmp_path) == []

    @pytest.mark.parametrize("code", [
        "import random\n\ndef f(rng=None):\n    return rng or random.Random(0)\n",
        "import random\n\ndef f(rng=None):\n"
        "    return rng if rng else random.Random(0)\n",
        "import random\n\ndef f(rng=random.Random(0)):\n    return rng\n",
    ])
    def test_det005_hidden_default(self, code, tmp_path):
        assert lint(code, tmp_path) == ["DET005"]

    @pytest.mark.parametrize("code", [
        "for item in {1, 2, 3}:\n    print(item)\n",
        "items = list(set([3, 1, 2]))\n",
        "items = [x for x in set([1, 2])]\n",
        "text = ','.join({'b', 'a'})\n",
    ])
    def test_det006_set_order(self, code, tmp_path):
        assert lint(code, tmp_path) == ["DET006"]

    def test_sorted_set_is_fine(self, tmp_path):
        assert lint("items = sorted(set([3, 1, 2]))\n", tmp_path) == []

    def test_instance_stream_draw_is_fine(self, tmp_path):
        code = ("import random\n\n"
                "def f(rng: random.Random):\n"
                "    return rng.uniform(0, 1)\n")
        assert lint(code, tmp_path) == []


class TestSuppression:
    def test_inline_allow_suppresses(self, tmp_path):
        code = ("import time\n"
                "now = time.time()  # repro: allow[DET001] calibration only\n")
        assert lint(code, tmp_path) == []

    def test_inline_allow_is_rule_specific(self, tmp_path):
        code = ("import time\n"
                "now = time.time()  # repro: allow[DET002]\n")
        assert lint(code, tmp_path) == ["DET001"]


class TestFixtureFile:
    def test_known_violations(self):
        findings = determinism.analyze(
            load_tree([str(FIXTURES / "det_violations.py")]))
        rules = sorted(finding.rule for finding in findings)
        assert rules == ["DET001", "DET002", "DET002", "DET003",
                         "DET004", "DET005", "DET006"]

    def test_suppressed_line_absent(self):
        findings = determinism.analyze(
            load_tree([str(FIXTURES / "det_violations.py")]))
        det001 = [finding for finding in findings
                  if finding.rule == "DET001"]
        assert len(det001) == 1  # the suppressed second read is absent
