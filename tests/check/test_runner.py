"""End-to-end tests for the ``repro check`` runner and baseline flow."""

import json
import pathlib

import pytest

from repro.check import runner
from repro.check.findings import Baseline, Finding

ROOT = pathlib.Path(__file__).resolve().parents[2]

VIOLATION = "import time\nnow = time.time()\n"


def write_violation(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(VIOLATION)
    return path


class TestRunCheck:
    def test_clean_tree_acceptance(self):
        # The merge gate of this PR: src/repro itself must be clean.
        report = runner.run_check([str(ROOT / "src" / "repro")])
        assert report.ok, report.render_text()
        assert report.findings == []
        assert report.scanned > 50

    def test_violation_reported(self, tmp_path):
        write_violation(tmp_path)
        report = runner.run_check([str(tmp_path)])
        assert not report.ok
        assert report.counts_by_rule() == {"DET001": 1}

    def test_analyzer_selection(self, tmp_path):
        write_violation(tmp_path)
        report = runner.run_check([str(tmp_path)], analyzers=["layering"])
        assert report.ok  # determinism analyzer not selected

    def test_unknown_analyzer_raises(self, tmp_path):
        with pytest.raises(ValueError):
            runner.run_check([str(tmp_path)], analyzers=["spellcheck"])

    def test_syntax_error_is_gen001(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = runner.run_check([str(tmp_path)])
        assert report.counts_by_rule() == {"GEN001": 1}


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        assert runner.main([str(ROOT / "src" / "repro")]) == 0
        out = capsys.readouterr().out
        assert "repro check: clean" in out

    def test_exit_one_on_violation_fixture(self, tmp_path, capsys):
        write_violation(tmp_path)
        assert runner.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_exit_two_on_bad_baseline(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert runner.main([str(tmp_path), "--baseline", str(bad)]) == 2

    def test_json_format_and_out_artifact(self, tmp_path, capsys):
        write_violation(tmp_path)
        out_path = tmp_path / "report.json"
        code = runner.main([str(tmp_path), "--format", "json",
                            "--out", str(out_path)])
        assert code == 1
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(out_path.read_text())
        assert stdout_doc == file_doc
        assert file_doc["version"] == 1
        assert file_doc["summary"] == {"DET001": 1}
        assert file_doc["findings"][0]["rule"] == "DET001"
        assert set(file_doc) == {"version", "analyzers", "files_scanned",
                                 "summary", "baselined", "findings"}

    def test_list_rules(self, capsys):
        assert runner.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("DET001", "ARCH001", "ZONE001", "GEN001"):
            assert rule in out


class TestBaselineRoundTrip:
    def test_write_then_suppress_then_regress(self, tmp_path, capsys):
        write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"

        # 1. Record the current findings as the baseline: exits 0.
        assert runner.main([str(tmp_path), "--write-baseline",
                            str(baseline_path)]) == 0
        capsys.readouterr()

        # 2. Re-running against the baseline is clean (finding grandfathered).
        assert runner.main([str(tmp_path), "--baseline",
                            str(baseline_path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["baselined"] == 1
        assert doc["findings"] == []

        # 3. A NEW violation still fails the gate.
        (tmp_path / "worse.py").write_text(
            "import os\nnoise = os.urandom(4)\n")
        assert runner.main([str(tmp_path), "--baseline",
                            str(baseline_path)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_baseline_is_line_insensitive(self, tmp_path):
        path = write_violation(tmp_path)
        report = runner.run_check([str(tmp_path)])
        baseline = Baseline.from_findings(report.findings)
        # The same violation on a different line is still grandfathered.
        path.write_text("import time\n\n\nnow = time.time()\n")
        shifted = runner.run_check([str(tmp_path)], baseline=baseline)
        assert shifted.ok
        assert len(shifted.baselined) == 1

    def test_baseline_is_column_insensitive(self, tmp_path):
        path = write_violation(tmp_path)
        report = runner.run_check([str(tmp_path)])
        baseline = Baseline.from_findings(report.findings)
        # The same violation shifted sideways (a formatter's doing) is
        # still grandfathered: the fingerprint carries no column.
        path.write_text("import time\nnow      =      time.time()\n")
        shifted = runner.run_check([str(tmp_path)], baseline=baseline)
        assert shifted.ok
        assert len(shifted.baselined) == 1

    def test_fingerprint_ignores_column(self):
        left = Finding("DET001", "a.py", 3, "wall clock", col=5)
        right = Finding("DET001", "a.py", 3, "wall clock", col=40)
        assert left.fingerprint == right.fingerprint
        assert left == right
        assert hash(left) == hash(right)


class TestOnlySelection:
    def test_only_filters_rules(self, tmp_path):
        write_violation(tmp_path)
        report = runner.run_check([str(tmp_path)], only=["DET002"])
        assert report.ok  # the DET001 finding is filtered out
        report = runner.run_check([str(tmp_path)], only=["DET001"])
        assert report.counts_by_rule() == {"DET001": 1}

    def test_only_narrows_analyzers(self, tmp_path):
        write_violation(tmp_path)
        report = runner.run_check([str(tmp_path)], only=["HOT001"])
        assert report.analyzers == ["hotpath"]

    def test_only_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            runner.run_check([str(tmp_path)], only=["HOT999"])

    def test_cli_only_comma_separated(self, tmp_path, capsys):
        write_violation(tmp_path)
        assert runner.main([str(tmp_path), "--only",
                            "DET002,ARCH001"]) == 0
        capsys.readouterr()
        assert runner.main([str(tmp_path), "--only", "DET001"]) == 1

    def test_cli_only_unknown_rule_exits_two(self, tmp_path, capsys):
        assert runner.main([str(tmp_path), "--only", "NOPE001"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestSarif:
    def test_sarif_stdout(self, tmp_path, capsys):
        write_violation(tmp_path)
        assert runner.main([str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == runner.SARIF_VERSION
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert [rule["id"] for rule in run["tool"]["driver"]["rules"]] \
            == ["DET001"]
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1
        assert "reproCheck/v1" in result["partialFingerprints"]

    def test_sarif_out_artifact(self, tmp_path, capsys):
        write_violation(tmp_path)
        sarif_path = tmp_path / "check.sarif"
        assert runner.main([str(tmp_path), "--sarif-out",
                            str(sarif_path)]) == 1
        capsys.readouterr()
        doc = json.loads(sarif_path.read_text())
        assert doc["version"] == runner.SARIF_VERSION
        assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_sarif_clean_tree_has_no_results(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        assert runner.main([str(tmp_path), "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestWholeProgramPasses:
    def test_new_analyzers_registered(self):
        assert {"rng", "races", "hotpath"} <= set(runner.ANALYZERS)
        for rule in ("RNG001", "RNG005", "RACE001", "RACE004",
                     "HOT001", "HOT003"):
            assert rule in runner.ALL_RULES

    def test_clean_tree_under_new_passes(self):
        # The merge gate: the whole-program passes report nothing
        # unsuppressed on src/repro itself.
        report = runner.run_check(
            [str(ROOT / "src" / "repro")],
            analyzers=["rng", "races", "hotpath"])
        assert report.ok, report.render_text()

    def test_include_suppressed_sees_inventory(self):
        # The HOT/RNG/RACE allows in-tree become visible to inventory
        # runs; the suppressed findings exist and are rule-tagged.
        report = runner.run_check(
            [str(ROOT / "src" / "repro")],
            analyzers=["rng", "races", "hotpath"],
            include_suppressed=True)
        assert not report.ok
        assert set(report.counts_by_rule()) <= {
            "RNG001", "RNG002", "RNG003", "RNG004", "RNG005",
            "RACE001", "RACE002", "RACE003", "RACE004",
            "HOT001", "HOT002", "HOT003"}
