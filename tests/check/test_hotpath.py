"""Tests for the hot-path performance lint."""

import textwrap

from repro.check import hotpath
from repro.check.sources import load_tree

#: tmp_path fixtures resolve to their bare stem as the module name.
HOT = ("snippet",)


def lint(code, tmp_path, hot_prefixes=HOT):
    """Rules triggered by ``code``, as a sorted list of rule ids."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    findings = hotpath.analyze(load_tree([str(path)]),
                               hot_prefixes=hot_prefixes)
    return sorted(finding.rule for finding in findings)


class TestHot001LoopInvariantWire:
    def test_invariant_to_wire_flagged(self, tmp_path):
        assert lint(
            """\
            def send(msg, sock, targets):
                for target in targets:
                    sock.send(msg.to_wire(), target)
            """, tmp_path) == ["HOT001"]

    def test_invariant_make_query_flagged(self, tmp_path):
        assert lint(
            """\
            from repro.dnswire.message import make_query

            def probe(name, attempts):
                for _ in range(attempts):
                    query = make_query(name, 1)
            """, tmp_path) == ["HOT001"]

    def test_fires_outside_hot_modules_too(self, tmp_path):
        # HOT001 is not gated on the hot-module list.
        assert lint(
            """\
            def send(msg, sock, targets):
                for target in targets:
                    sock.send(msg.to_wire(), target)
            """, tmp_path,
            hot_prefixes=hotpath.DEFAULT_HOT_PREFIXES) == ["HOT001"]

    def test_loop_variant_receiver_clean(self, tmp_path):
        assert lint(
            """\
            def send(messages, sock):
                for msg in messages:
                    sock.send(msg.to_wire())
            """, tmp_path) == []

    def test_wire_cursor_is_not_invariant(self, tmp_path):
        # ``reader`` advances in place on every decode even though the
        # name is never rebound.
        assert lint(
            """\
            def parse(reader, count):
                out = []
                for _ in range(count):
                    out.append(Question.from_wire(reader))
                return out
            """, tmp_path) == []

    def test_invariant_cached_wire_clean(self, tmp_path):
        # cached_wire memoizes on message content: a loop-invariant
        # call is a dict hit, which is the fix HOT001 suggests.
        assert lint(
            """\
            from repro.dnswire.message import cached_wire

            def send(msg, sock, targets):
                for target in targets:
                    sock.send(cached_wire(msg), target)
            """, tmp_path) == []

    def test_to_wire_message_suggests_cached_wire(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(textwrap.dedent(
            """\
            def send(msg, sock, targets):
                for target in targets:
                    sock.send(msg.to_wire(), target)
            """))
        findings = hotpath.analyze(load_tree([str(path)]),
                                   hot_prefixes=HOT)
        assert len(findings) == 1
        assert "cached_wire" in findings[0].message

    def test_foreign_make_query_clean(self, tmp_path):
        # A make_query that does not resolve into repro.dnswire is not
        # wire-layer work.
        assert lint(
            """\
            from othersim.api import make_query

            def probe(name, attempts):
                for _ in range(attempts):
                    query = make_query(name, 1)
            """, tmp_path) == []


class TestHot002SchedulingAllocation:
    def test_lambda_to_scheduler_flagged(self, tmp_path):
        assert lint(
            """\
            def arm(sim, fut, value):
                sim.call_after(5.0, lambda: fut.resolve(value))
            """, tmp_path) == ["HOT002"]

    def test_lambda_in_loop_flagged(self, tmp_path):
        assert lint(
            """\
            def fanout(items):
                thunks = []
                for item in items:
                    thunks.append(lambda: item)
                return thunks
            """, tmp_path) == ["HOT002"]

    def test_nested_def_in_loop_flagged(self, tmp_path):
        assert lint(
            """\
            def fanout(items):
                thunks = []
                for item in items:
                    def thunk(bound=item):
                        return bound
                    thunks.append(thunk)
                return thunks
            """, tmp_path) == ["HOT002"]

    def test_args_through_scheduler_clean(self, tmp_path):
        # The fixed idiom: the scheduler carries the args in its heap
        # tuple, no closure allocated.
        assert lint(
            """\
            def arm(sim, fut, value):
                sim.call_after(5.0, fut.resolve, value)
            """, tmp_path) == []

    def test_cold_module_clean(self, tmp_path):
        assert lint(
            """\
            def arm(sim, fut, value):
                sim.call_after(5.0, lambda: fut.resolve(value))
            """, tmp_path,
            hot_prefixes=hotpath.DEFAULT_HOT_PREFIXES) == []


class TestHot003ListScans:
    def test_membership_against_module_list_flagged(self, tmp_path):
        assert lint(
            """\
            KNOWN = []

            def dispatch(events):
                for event in events:
                    if event in KNOWN:
                        continue
            """, tmp_path) == ["HOT003"]

    def test_index_on_local_list_flagged(self, tmp_path):
        assert lint(
            """\
            def dispatch(events):
                order = list(events)
                for event in events:
                    position = order.index(event)
            """, tmp_path) == ["HOT003"]

    def test_set_membership_clean(self, tmp_path):
        assert lint(
            """\
            KNOWN = set()

            def dispatch(events):
                for event in events:
                    if event in KNOWN:
                        continue
            """, tmp_path) == []

    def test_cold_module_clean(self, tmp_path):
        assert lint(
            """\
            KNOWN = []

            def dispatch(events):
                for event in events:
                    if event in KNOWN:
                        continue
            """, tmp_path,
            hot_prefixes=hotpath.DEFAULT_HOT_PREFIXES) == []


class TestInnerLoopAttribution:
    def test_inner_loop_invariance_is_local(self, tmp_path):
        # ``msg`` varies in the outer loop but is invariant for the
        # inner one: the finding belongs to the inner loop.
        assert lint(
            """\
            def send(messages, sock, targets):
                for msg in messages:
                    for target in targets:
                        sock.send(msg.to_wire(), target)
            """, tmp_path) == ["HOT001"]


class TestSuppression:
    def test_inline_allow_suppresses(self, tmp_path):
        assert lint(
            """\
            def send(msg, sock, targets):
                for target in targets:
                    sock.send(msg.to_wire(), target)  # repro: allow[HOT001] deferred to item 2
            """, tmp_path) == []

    def test_include_suppressed_reinstates(self, tmp_path):
        # Inventory runs see through the allow comments.
        path = tmp_path / "snippet.py"
        path.write_text(textwrap.dedent(
            """\
            def send(msg, sock, targets):
                for target in targets:
                    sock.send(msg.to_wire(), target)  # repro: allow[HOT001] deferred to item 2
            """))
        tree = load_tree([str(path)])
        tree.include_suppressed = True
        findings = hotpath.analyze(tree, hot_prefixes=HOT)
        assert [finding.rule for finding in findings] == ["HOT001"]
