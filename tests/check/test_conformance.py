"""Tests for the ZONE conformance pass."""

import pathlib
import textwrap

import pytest

from repro.check import conformance
from repro.check.conformance import (
    MAX_TTL_VALUE,
    name_syntax_issues,
    ttl_issue,
    validate_zone,
)
from repro.check.sources import load_tree
from repro.dnswire import A, CNAME, Name, RecordType, ResourceRecord
from repro.dnswire.zone import zone_from_records

ZONES = pathlib.Path(__file__).parent / "fixtures" / "zones"
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def zone_rules(filename):
    findings = conformance.analyze(load_tree([str(ZONES / filename)]))
    return sorted(finding.rule for finding in findings)


class TestNameSyntax:
    @pytest.mark.parametrize("name", [
        "", ".", "example.test.", "www.example.test",
        "*.wild.example.test.", "_dns.example.test.",
        "1.0.0.10.in-addr.arpa.",
    ])
    def test_valid(self, name):
        assert name_syntax_issues(name) == []

    @pytest.mark.parametrize("name", [
        "-lead.example.test.", "trail-.example.test.",
        "mid.*.example.test.", "double..dot.test.",
        "x" * 64 + ".test.",
        ".".join(["a" * 60] * 5) + ".",  # > 255 octets on the wire
        "bang!.example.test.",
    ])
    def test_invalid(self, name):
        assert name_syntax_issues(name) != []

    def test_at_only_for_owners(self):
        assert name_syntax_issues("@", allow_at=True) == []
        assert name_syntax_issues("@") != []


class TestTtl:
    def test_range(self):
        assert ttl_issue(0) is None
        assert ttl_issue(MAX_TTL_VALUE) is None
        assert ttl_issue(-1) is not None
        assert ttl_issue(MAX_TTL_VALUE + 1) is not None


class TestZoneFiles:
    def test_good_zone_clean(self):
        assert zone_rules("good.zone") == []

    def test_bad_ttl(self):
        assert "ZONE001" in zone_rules("bad_ttl.zone")

    def test_bad_names(self):
        rules = zone_rules("bad_names.zone")
        assert rules.count("ZONE002") == 2  # leading hyphen + mid wildcard

    def test_double_cname(self):
        assert "ZONE003" in zone_rules("double_cname.zone")

    def test_missing_soa(self):
        assert zone_rules("missing_soa.zone") == ["ZONE005"]

    def test_unparseable(self):
        assert zone_rules("unparseable.zone") == ["ZONE000"]


class TestEmbeddedText:
    def test_embedded_master_text_scanned(self):
        findings = conformance.analyze(
            load_tree([str(FIXTURES / "embedded_zone.py")]))
        assert sorted(finding.rule for finding in findings) == ["ZONE003"]

    def test_docstring_mentioning_origin_ignored(self, tmp_path):
        path = tmp_path / "doc.py"
        path.write_text('"""Explains $ORIGIN and $TTL directives.\n\n'
                        'More prose.\n"""\n')
        assert conformance.analyze(load_tree([str(path)])) == []


class TestLiteralScanning:
    def test_bad_owner_and_ttl_literals(self, tmp_path):
        path = tmp_path / "build.py"
        path.write_text(textwrap.dedent("""\
            def build(zone, rtype, rdata):
                zone.add_simple("double..dot", rtype, rdata, ttl=-5)
        """))
        findings = conformance.analyze(load_tree([str(path)]))
        assert sorted(finding.rule for finding in findings) == \
            ["ZONE001", "ZONE002"]

    def test_name_constructor_literal(self, tmp_path):
        path = tmp_path / "names.py"
        path.write_text("from repro.dnswire import Name\n"
                        "BAD = Name('-nope.example.test.')\n")
        findings = conformance.analyze(load_tree([str(path)]))
        assert [finding.rule for finding in findings] == ["ZONE002"]

    def test_ttl_constant_assignment(self, tmp_path):
        path = tmp_path / "consts.py"
        path.write_text("HUGE_TTL = 4000000000\n")
        findings = conformance.analyze(load_tree([str(path)]))
        assert [finding.rule for finding in findings] == ["ZONE001"]


class TestValidateZone:
    def test_cname_at_apex(self):
        zone = zone_from_records("apex.test", [
            ResourceRecord(Name("apex.test"), RecordType.CNAME, 300,
                           CNAME(Name("other.test")))])
        findings = validate_zone(zone, "apex.test", 1, expect_soa=False)
        assert [finding.rule for finding in findings] == ["ZONE003"]

    def test_wire_round_trip_clean(self):
        zone = zone_from_records("rt.test", [
            ResourceRecord(Name("www.rt.test"), RecordType.A, 300,
                           A("192.0.2.1")),
            ResourceRecord(Name("www2.rt.test"), RecordType.A, 300,
                           A("192.0.2.2"))])
        assert validate_zone(zone, "rt.test", 1, expect_soa=False) == []

    def test_negative_ttl_record(self):
        zone = zone_from_records("neg.test", [
            ResourceRecord(Name("www.neg.test"), RecordType.A, -1,
                           A("192.0.2.1"))])
        findings = validate_zone(zone, "neg.test", 1, expect_soa=False)
        rules = [finding.rule for finding in findings]
        assert "ZONE001" in rules  # (wire encoding also fails: ZONE004)
