"""Tests for the RNG stream-provenance dataflow rules."""

import textwrap

import pytest

from repro.check import dataflow
from repro.check.sources import load_tree


def lint(code, tmp_path):
    """Rules triggered by ``code``, as a sorted list of rule ids."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    findings = dataflow.analyze(load_tree([str(path)]))
    return sorted(finding.rule for finding in findings)


class TestRng001ConstantSeed:
    @pytest.mark.parametrize("code", [
        """\
        import random

        def build():
            rng = random.Random(42)
            return rng.random()
        """,
        """\
        import random

        def build():
            rng = random.Random(7 * 13 + 1)
            return rng.random()
        """,
        """\
        from random import Random

        def build():
            rng = Random("fixed")
            return rng.random()
        """,
    ])
    def test_constant_seed_flagged(self, code, tmp_path):
        assert lint(code, tmp_path) == ["RNG001"]

    @pytest.mark.parametrize("code", [
        # Seed derived through the blessed helper.
        """\
        import random
        from repro.runtime.spec import derive_seed

        def build(seed):
            rng = random.Random(derive_seed(seed, "workload"))
            return rng.random()
        """,
        # Caller-supplied state has provenance by definition.
        """\
        import random

        def build(spec):
            rng = random.Random(spec.seed)
            return rng.random()
        """,
        # Parameters are caller-supplied too.
        """\
        import random

        def build(seed):
            rng = random.Random(seed)
            return rng.random()
        """,
    ])
    def test_derived_seed_clean(self, code, tmp_path):
        assert lint(code, tmp_path) == []

    def test_unseeded_is_not_rng001(self, tmp_path):
        # No argument at all is DET004's domain, not a provenance issue.
        assert lint(
            """\
            import random

            def build():
                rng = random.Random()
                return rng.random()
            """, tmp_path) == []


class TestRng002ModuleGlobal:
    def test_module_level_rng_flagged(self, tmp_path):
        assert lint(
            """\
            import random

            base = 7
            rng = random.Random(base)
            """, tmp_path) == ["RNG002"]

    def test_module_level_streams_factory_flagged(self, tmp_path):
        assert lint(
            """\
            from repro.netsim.rand import RandomStreams

            streams = RandomStreams(0)
            """, tmp_path) == ["RNG002"]

    def test_global_store_inside_function_flagged(self, tmp_path):
        assert lint(
            """\
            import random

            _rng = None

            def init(seed):
                global _rng
                _rng = random.Random(seed)
            """, tmp_path) == ["RNG002"]

    def test_local_rng_clean(self, tmp_path):
        assert lint(
            """\
            import random

            def trial(seed):
                rng = random.Random(seed)
                return rng.random()
            """, tmp_path) == []


class TestRng003ClassAttribute:
    def test_class_attribute_rng_flagged(self, tmp_path):
        assert lint(
            """\
            import random

            class Sampler:
                rng = random.Random(seed_from_config())
            """, tmp_path) == ["RNG003"]

    def test_instance_attribute_clean(self, tmp_path):
        assert lint(
            """\
            import random

            class Sampler:
                def __init__(self, seed):
                    self.rng = random.Random(seed)
            """, tmp_path) == []


class TestRng004StreamFanout:
    def test_two_consumers_flagged(self, tmp_path):
        assert lint(
            """\
            def sample(rng, wireless, resolver):
                a = wireless.sample(rng)
                b = resolver.sample(rng)
                return a + b
            """, tmp_path) == ["RNG004"]

    def test_named_stream_local_flagged(self, tmp_path):
        assert lint(
            """\
            def trial(streams, wireless, resolver):
                rng = streams.stream("latency")
                a = wireless.sample(rng)
                b = resolver.sample(rng)
                return a + b
            """, tmp_path) == ["RNG004"]

    def test_single_consumer_clean(self, tmp_path):
        assert lint(
            """\
            def sample(rng, wireless):
                jitter = rng.random()
                burst = rng.random()
                return wireless.sample(rng) + jitter + burst
            """, tmp_path) == []

    def test_own_draws_are_not_consumption(self, tmp_path):
        assert lint(
            """\
            def sample(rng):
                return rng.random() + rng.gauss(0.0, 1.0)
            """, tmp_path) == []

    def test_distinct_streams_clean(self, tmp_path):
        assert lint(
            """\
            def trial(streams, wireless, resolver):
                a = wireless.sample(streams.stream("wireless"))
                b = resolver.sample(streams.stream("resolver"))
                return a + b
            """, tmp_path) == []


class TestRng005ProcessBoundary:
    def test_rng_into_trialspec_flagged(self, tmp_path):
        assert lint(
            """\
            def plan(rng):
                return TrialSpec(name="t", rng=rng)
            """, tmp_path) == ["RNG005"]

    def test_fresh_rng_into_task_flagged(self, tmp_path):
        assert lint(
            """\
            import random

            def plan(seed):
                return _TrialTask(random.Random(seed))
            """, tmp_path) == ["RNG005"]

    def test_seed_into_trialspec_clean(self, tmp_path):
        assert lint(
            """\
            from repro.runtime.spec import derive_seed

            def plan(seed):
                return TrialSpec(name="t", seed=derive_seed(seed, "t"))
            """, tmp_path) == []


class TestSuppression:
    def test_inline_allow_suppresses(self, tmp_path):
        assert lint(
            """\
            def sample(rng, wireless, resolver):
                a = wireless.sample(rng)
                b = resolver.sample(rng)  # repro: allow[RNG004] both legs draw in fixed order
                return a + b
            """, tmp_path) == []

    def test_comment_line_above_suppresses(self, tmp_path):
        assert lint(
            """\
            def sample(rng, wireless, resolver):
                a = wireless.sample(rng)
                # repro: allow[RNG004] both legs draw in fixed order
                b = resolver.sample(rng)
                return a + b
            """, tmp_path) == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        assert lint(
            """\
            def sample(rng, wireless, resolver):
                a = wireless.sample(rng)
                b = resolver.sample(rng)  # repro: allow[RNG001] wrong rule
                return a + b
            """, tmp_path) == ["RNG004"]
