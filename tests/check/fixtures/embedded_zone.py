"""Fixture: embedded master-file text carrying a duplicate CNAME.

Parsed (never imported) by conformance tests: the string constant below
must be recognised as zone data and yield exactly one ZONE003 finding.
"""

EMBEDDED_ZONE = """
$ORIGIN embedded.test.
alias 300 IN CNAME a.embedded.test.
alias 300 IN CNAME b.embedded.test.
"""
