"""Fixture: one known violation per DET rule.

This file is *parsed* by the determinism analyzer in tests — it is never
imported or executed, and it must keep exactly the violations the tests
assert (one per rule, plus one inline-suppressed wall-clock read).
"""

import os
import random
import time
import uuid


def wall_clock():
    return time.time()  # DET001


def entropy_sources():
    return os.urandom(8) + uuid.uuid4().bytes  # DET002 twice


def module_level_draw():
    return random.random()  # DET003


def unseeded_stream():
    return random.Random()  # DET004


def hidden_default(rng=None):
    rng = rng or random.Random(0)  # DET005
    return rng.random()


def set_order_escape(items):
    return list(set(items))  # DET006


def suppressed_wall_clock():
    return time.time()  # repro: allow[DET001] fixture proves suppression
