"""Tests for the ASCII chart renderers."""

import pytest

from repro.experiments import run_figure2, run_figure5


@pytest.fixture(scope="module")
def figure5():
    return run_figure5(queries=8, seed=42)


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(trials=12, seed=5)


class TestFigure5Chart:
    def test_one_bar_per_deployment(self, figure5):
        chart = figure5.render_chart()
        assert chart.count(" ms") == 6

    def test_wireless_and_resolver_segments(self, figure5):
        chart = figure5.render_chart()
        assert "=" in chart and "#" in chart
        # The MEC bar is wireless-dominated: its line has more '=' than '#'.
        mec_line = next(line for line in chart.splitlines()
                        if line.startswith("MEC L-DNS w/ MEC C-DNS"))
        assert mec_line.count("=") > mec_line.count("#")

    def test_longest_bar_is_cloudflare(self, figure5):
        chart = figure5.render_chart()
        lengths = {line.split()[0]: line.count("=") + line.count("#")
                   for line in chart.splitlines() if " ms" in line}
        assert max(lengths, key=lengths.get) == "Cloudflare"

    def test_width_respected(self, figure5):
        for line in figure5.render_chart(width=30).splitlines():
            if " ms" in line:
                bar = line[len("MEC L-DNS w/ MEC C-DNS "):-len(" 999.9 ms")]
                assert len(bar) <= 32


class TestFigure2Chart:
    def test_grouped_by_domain(self, figure2):
        chart = figure2.render_chart()
        assert chart.count("---") == 2 * 5  # five domain headers
        assert chart.count(" ms") == 15

    def test_cellular_bar_longest_per_domain(self, figure2):
        chart = figure2.render_chart()
        blocks = chart.split("---")
        for block in blocks[1:]:
            if "cellular" not in block:
                continue
            lengths = {}
            for line in block.splitlines():
                if " ms" in line:
                    lengths[line.split()[0]] = line.count("#")
            if len(lengths) == 3:
                assert max(lengths, key=lengths.get) == "cellular-mobile"
