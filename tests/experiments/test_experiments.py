"""Tests for the paper-artifact experiment modules.

These run the experiments at reduced trial counts (shape checks are
margin-based, so they still hold) and verify both the structured results
and the rendered output.
"""

import pytest

from repro.experiments import (
    run_ecs,
    run_figure2,
    run_figure3,
    run_figure5,
    run_table1,
    run_table2,
)
from repro.experiments import ecs as ecs_mod
from repro.experiments import figure2 as f2_mod
from repro.experiments import figure3 as f3_mod
from repro.experiments import figure5 as f5_mod
from repro.experiments.report import format_bar, format_table


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [("1", "2")])

    def test_format_table_title(self):
        text = format_table(["a"], [("1",)], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_bar(self):
        assert format_bar(0.5, width=10) == "#####....."
        assert format_bar(0.0, width=4) == "...."
        assert format_bar(1.5, width=4) == "####"  # clamped


class TestTable1:
    def test_five_rows_with_paper_domains(self):
        result = run_table1()
        assert len(result.rows) == 5
        domains = {row.domain for row in result.rows}
        assert "a0.muscache.com" in domains
        assert "q-cf.bstatic.com" in domains

    def test_render(self):
        text = run_table1().render()
        assert "Airbnb" in text
        assert "cdn0.agoda.net" in text


class TestTable2:
    def test_seven_roles(self):
        result = run_table2()
        assert len(result.rows) == 7
        entities = {row.entity for row in result.rows}
        assert "MEC Provider" in entities
        assert "CDN Brokers" in entities

    def test_multi_role_entities_consistent(self):
        result = run_table2()
        assert "Verizon" in result.multi_role
        assert "Cellular Providers" in result.multi_role["Verizon"]

    def test_render_includes_module_mapping(self):
        text = run_table2().render()
        assert "repro.cdn.broker" in text
        assert "Verizon" in text


@pytest.fixture(scope="module")
def figure2_result():
    return run_figure2(trials=14, seed=5)


class TestFigure2:
    def test_fifteen_bars(self, figure2_result):
        assert len(figure2_result.rows) == 15  # 5 domains x 3 networks

    def test_shape_claims_hold(self, figure2_result):
        assert f2_mod.check_shape(figure2_result) == []

    def test_minimum_twelve_tests(self, figure2_result):
        assert all(row.stats.count >= 12 for row in figure2_result.rows)

    def test_render(self, figure2_result):
        text = figure2_result.render()
        assert "cellular-mobile" in text
        assert "Figure 2" in text

    def test_bars_accessor(self, figure2_result):
        bars = figure2_result.bars()
        assert ("Airbnb", "wired-campus") in bars


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3(trials=30, seed=5)


class TestFigure3:
    def test_shape_claims_hold(self, figure3_result):
        assert f3_mod.check_shape(figure3_result) == []

    def test_answers_only_from_deployment_pools(self, figure3_result):
        assert all(row.unmatched == 0 for row in figure3_result.rows)

    def test_multi_provider_domains_spread(self, figure3_result):
        distribution = figure3_result.distribution_for(
            "TripAdvisor", "cellular-mobile")
        providers = {label.split(" (")[0] for label in distribution}
        assert len(providers) >= 2

    def test_render(self, figure3_result):
        text = figure3_result.render()
        assert "Akamai (23.55.124.0/24)" in text
        assert "%" in text


@pytest.fixture(scope="module")
def figure5_result():
    return run_figure5(queries=20, seed=42)


class TestFigure5:
    def test_six_bars_in_paper_order(self, figure5_result):
        assert [row.key for row in figure5_result.rows] == list(
            f5_mod.DEPLOYMENT_KEYS)

    def test_shape_claims_hold(self, figure5_result):
        assert f5_mod.check_shape(figure5_result) == []

    def test_means_near_paper_values(self, figure5_result):
        # Calibration check: within 20% of every published mean.
        for row in figure5_result.rows:
            assert row.latency.mean == pytest.approx(row.paper_mean, rel=0.2)

    def test_render_shows_paper_column(self, figure5_result):
        text = figure5_result.render()
        assert "paper ms" in text
        assert "MEC L-DNS w/ MEC C-DNS" in text

    def test_row_lookup(self, figure5_result):
        assert figure5_result.row("lan-ldns").label == "LAN L-DNS"
        with pytest.raises(KeyError):
            figure5_result.row("nope")


class TestEcs:
    def test_ratios_and_correctness(self):
        result = run_ecs(queries=15, seed=42)
        assert ecs_mod.check_shape(result) == []
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.always_correct_cache

    def test_render(self):
        result = run_ecs(queries=10, seed=1)
        text = result.render()
        assert "ratio" in text
        assert "correct cache" in text
