"""Tests for the load generator and capacity-curve experiment."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.experiments.capacity import check_shape, run
from repro.measure.loadgen import LoadGenerator, run_load
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer


def build_server(workers=None, processing=0.5, max_queue=64):
    sim = Simulator()
    net = Network(sim, RandomStreams(7))
    net.add_host("dns", "10.0.0.53")
    net.add_host("clients", "10.0.0.2")
    net.add_link("clients", "dns", Constant(1))
    zone = Zone(Name("cdn.test"))
    zone.add(ResourceRecord(Name("cdn.test"), RecordType.SOA, 300,
                            SOA(Name("ns.cdn.test"), Name("a.cdn.test"),
                                1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("cdn.test"), RecordType.NS, 300,
                            NS(Name("ns.cdn.test"))))
    zone.add(ResourceRecord(Name("v.cdn.test"), RecordType.A, 300,
                            A("10.0.0.9")))
    AuthoritativeServer(net, net.host("dns"), [zone],
                        processing_delay=Constant(processing),
                        workers=workers, max_queue=max_queue)
    return net


class TestLoadGenerator:
    def test_light_load_all_answered(self):
        net = build_server()
        result = run_load(net, net.host("clients"),
                          Endpoint("10.0.0.53", 53), Name("v.cdn.test"),
                          offered_qps=100, duration_ms=500)
        assert result.loss_rate == 0.0
        assert result.sent == result.answered == 50
        assert result.goodput_qps == pytest.approx(100, rel=0.05)
        assert result.p50_ms == pytest.approx(2.5, abs=0.5)

    def test_overload_shows_loss_and_queueing(self):
        net = build_server(workers=1, processing=2.0, max_queue=10)
        # Capacity 500 qps; offer 2000.
        result = run_load(net, net.host("clients"),
                          Endpoint("10.0.0.53", 53), Name("v.cdn.test"),
                          offered_qps=2000, duration_ms=500,
                          reply_timeout_ms=500)
        assert result.loss_rate > 0.4
        assert result.p95_ms > 15

    def test_invalid_parameters_rejected(self):
        # run() is a process; validation errors surface as ProcessFailed
        # with the ValueError as the cause.
        from repro.netsim.engine import ProcessFailed
        net = build_server()
        generator = LoadGenerator(net, net.host("clients"),
                                  Endpoint("10.0.0.53", 53),
                                  Name("v.cdn.test"))
        for bad_args in ((0, 100), (10, 0)):
            with pytest.raises(ProcessFailed) as excinfo:
                net.sim.run_until_resolved(
                    net.sim.spawn(generator.run(*bad_args)))
            assert isinstance(excinfo.value.__cause__, ValueError)

    def test_result_string(self):
        net = build_server()
        result = run_load(net, net.host("clients"),
                          Endpoint("10.0.0.53", 53), Name("v.cdn.test"),
                          offered_qps=50, duration_ms=200)
        text = str(result)
        assert "goodput" in text and "p95" in text


@pytest.fixture(scope="module")
def curve():
    return run(rates=(400.0, 1200.0, 2200.0, 3500.0), duration_ms=800,
               seed=0)


class TestCapacityCurve:
    def test_shape_claims_hold(self, curve):
        assert check_shape(curve) == []

    def test_goodput_plateaus_at_capacity(self, curve):
        beyond = [point for point in curve.points
                  if point.offered_qps > curve.nominal_capacity_qps]
        for point in beyond:
            assert point.goodput_qps <= 1.15 * curve.nominal_capacity_qps

    def test_saturation_detected(self, curve):
        assert curve.saturation_qps == 2200

    def test_latency_flat_below_capacity(self, curve):
        below = [point for point in curve.points
                 if point.offered_qps < 0.75 * curve.nominal_capacity_qps]
        assert all(point.p95_ms < 5 for point in below)

    def test_render(self, curve):
        text = curve.render()
        assert "capacity curve" in text
        assert "saturation onset" in text
