"""Tests for the request-disaggregation experiment."""

import pytest

from repro.experiments.disaggregation import check_shape, run


@pytest.fixture(scope="module")
def result():
    return run(requests=800, seed=0)


class TestDisaggregation:
    def test_shape_claims_hold(self, result):
        assert check_shape(result) == []

    def test_two_routings_compared(self, result):
        assert {row.routing for row in result.rows} == \
            {"aggregated", "disaggregated"}
        assert result.row("aggregated").groups == 1
        assert result.row("disaggregated").groups == 3

    def test_hit_ratio_drop_is_substantial(self, result):
        drop = (result.row("aggregated").hit_ratio
                - result.row("disaggregated").hit_ratio)
        assert drop > 0.10  # tens of points, not noise

    def test_latency_tracks_hit_ratio(self, result):
        assert result.row("disaggregated").mean_fetch_ms > \
            result.row("aggregated").mean_fetch_ms

    def test_render(self, result):
        text = result.render()
        assert "aggregate hit ratio" in text
        assert "disaggregated" in text

    def test_row_lookup_unknown(self, result):
        with pytest.raises(KeyError):
            result.row("anycast")
