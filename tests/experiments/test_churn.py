"""Tests for the control-plane churn experiment."""

import pytest

from repro.core.deployments import DEPLOYMENT_KEYS
from repro.experiments.churn import (DEADLINE_MS, FAULT_DEPLOYMENT,
                                     FAULT_SCENARIOS, MODES,
                                     WARMED_DEPLOYMENTS, check_shape, run)


@pytest.fixture(scope="module")
def result():
    return run(queries=40, seed=42)


class TestChurnGrid:
    def test_grid_covers_every_cell(self, result):
        # 6 churn-only deployment cells + 3 fault scenarios x 2 modes.
        assert len(result.rows) == 12
        assert {row.scenario for row in result.rows} == \
            {"churn-only", *FAULT_SCENARIOS}
        churn_only = {row.deployment for row in result.rows
                      if row.scenario == "churn-only"}
        assert churn_only == set(DEPLOYMENT_KEYS)

    def test_row_lookup(self, result):
        row = result.row("mec-partition", FAULT_DEPLOYMENT, "baseline")
        assert row.mode == "baseline"
        with pytest.raises(KeyError):
            result.row("churn-only", "no-such-deployment", "resilient")

    def test_shape_claims_hold_at_full_fidelity(self, result):
        assert check_shape(result) == []

    def test_every_cell_sees_the_full_schedule_and_handover(self, result):
        for row in result.rows:
            assert row.updates == 3
            assert row.handoffs == 1
            assert row.post_handoff_lookups > 0

    def test_integrated_design_beats_warmed_resolvers(self, result):
        integrated = result.row("churn-only", FAULT_DEPLOYMENT,
                                "resilient")
        for deployment in WARMED_DEPLOYMENTS:
            warmed = result.row("churn-only", deployment, "resilient")
            assert warmed.misloc_rate > integrated.misloc_rate
            assert warmed.max_staleness_ms > integrated.max_staleness_ms

    def test_serve_stale_during_churn_needs_resilience(self, result):
        for scenario in FAULT_SCENARIOS:
            baseline = result.row(scenario, FAULT_DEPLOYMENT, "baseline")
            assert baseline.stale_during_churn == 0

    def test_partition_forces_axfr_fallback(self, result):
        for mode in MODES:
            row = result.row("mec-partition", FAULT_DEPLOYMENT, mode)
            assert row.axfr_fallbacks >= 1

    def test_render_is_complete(self, result):
        text = result.render()
        for token in ("churn-only", "cdns-crash", "mec-partition",
                      "origin-brownout", "misloc", "stale ms", "prop ms",
                      "rfc8767", "axfr-fb", "ho-mis",
                      f"deadline {DEADLINE_MS:.0f} ms"):
            assert token in text

    def test_rates_are_fractions(self, result):
        for row in result.rows:
            assert 0.0 <= row.availability <= 1.0
            assert 0.0 <= row.misloc_rate <= 1.0
            assert row.answered <= row.queries
            assert row.mislocalized_in_window <= row.lookups_in_window
            assert row.mislocalized_after_handoff <= \
                row.post_handoff_lookups


class TestDeterminism:
    def test_replay_digests_match_byte_for_byte(self, result):
        assert result.replays
        for first, second in result.replays.values():
            assert first == second

    def test_identical_seeds_reproduce_the_whole_grid(self):
        first = run(queries=4, seed=9)
        second = run(queries=4, seed=9)
        assert first.timelines == second.timelines
        assert first.rows == second.rows

    def test_different_seeds_change_measurements(self):
        first = run(queries=4, seed=9)
        second = run(queries=4, seed=10)
        assert first.rows != second.rows
