"""Tests for the envelope-sweep experiment."""

import pytest

from repro.core.deployments import build_custom_cdns_testbed
from repro.experiments.envelope_sweep import (
    ENVELOPE_MS,
    check_shape,
    run,
)
from repro.measure import measure_deployment_queries


@pytest.fixture(scope="module")
def result():
    return run(distances=(0.5, 2.0, 4.0, 8.0, 25.0), queries=8, seed=42)


class TestEnvelopeSweep:
    def test_shape_claims_hold(self, result):
        assert check_shape(result) == []

    def test_latency_monotone_in_distance(self, result):
        means = [point.mean_latency_ms for point in result.points]
        assert means == sorted(means)

    def test_crossover_in_lan_band(self, result):
        assert result.crossover_one_way_ms is not None
        assert 1.0 <= result.crossover_one_way_ms <= 8.0

    def test_envelope_flags_consistent(self, result):
        for point in result.points:
            assert point.within_envelope == \
                (point.mean_latency_ms < ENVELOPE_MS)

    def test_render(self, result):
        text = result.render()
        assert "crossover" in text
        assert "C-DNS one-way ms" in text

    def test_no_crossover_when_all_within(self):
        narrow = run(distances=(0.5, 1.0), queries=6, seed=42)
        assert narrow.crossover_one_way_ms is None


class TestCustomTestbed:
    def test_custom_distance_resolves_correctly(self):
        testbed = build_custom_cdns_testbed(5.0, seed=1)
        measurements = measure_deployment_queries(testbed, 4)
        for m in measurements:
            assert m.status == "NOERROR"
            assert m.addresses[0] in testbed.expected_cache_ips

    def test_zero_distance_close_to_lan_figure(self):
        near = build_custom_cdns_testbed(0.5, seed=1)
        far = build_custom_cdns_testbed(25.0, seed=1)
        near_ms = measure_deployment_queries(near, 6)
        far_ms = measure_deployment_queries(far, 6)
        near_mean = sum(m.latency_ms for m in near_ms) / 6
        far_mean = sum(m.latency_ms for m in far_ms) / 6
        assert far_mean - near_mean == pytest.approx(49, abs=6)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            build_custom_cdns_testbed(-1)
