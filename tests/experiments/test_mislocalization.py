"""Tests for the P2 mislocalization experiment."""

import pytest

from repro.cdn.providers import CONNECTIVITIES
from repro.experiments.mislocalization import (
    CLIENT_LOCATION,
    GEOIP_ENTRIES,
    check_shape,
    run,
)


@pytest.fixture(scope="module")
def result():
    return run(trials=15, seed=4)


class TestMislocalization:
    def test_shape_claims_hold(self, result):
        assert check_shape(result) == []

    def test_rows_cover_connectivities(self, result):
        assert [row.connectivity for row in result.rows] == \
            list(CONNECTIVITIES)

    def test_cellular_geoip_error_dominates(self, result):
        wired = result.row("wired-campus")
        cellular = result.row("cellular-mobile")
        # The carrier pool is registered ~1150 km away with a 450 km
        # radius; the campus block is essentially on-site.
        assert wired.geoip_error_km < 30
        assert cellular.geoip_error_km > 700

    def test_cache_distance_ordering(self, result):
        distances = [row.mean_cache_distance_km for row in result.rows]
        assert distances[0] < distances[2]  # wired < cellular

    def test_per_site_detail_complete(self, result):
        assert set(result.per_site_distance) == {
            "Airbnb", "Booking.com", "TripAdvisor", "Agoda", "Expedia"}
        for by_conn in result.per_site_distance.values():
            assert set(by_conn) == set(CONNECTIVITIES)

    def test_render(self, result):
        text = result.render()
        assert "GeoIP error km" in text
        assert "cellular-mobile" in text

    def test_row_lookup_unknown(self, result):
        with pytest.raises(KeyError):
            result.row("satellite")

    def test_geoip_entries_cover_visible_addresses(self):
        import ipaddress
        from repro.experiments.mislocalization import VISIBLE_ADDRESS
        networks = [ipaddress.IPv4Network(cidr)
                    for cidr, _, _ in GEOIP_ENTRIES]
        for address in VISIBLE_ADDRESS.values():
            assert any(ipaddress.IPv4Address(address) in network
                       for network in networks)

    def test_client_location_is_atlanta_area(self):
        assert 33 < CLIENT_LOCATION.lat < 34.5
        assert -85 < CLIENT_LOCATION.lon < -84
