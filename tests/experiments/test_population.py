"""Tests for the population-scale artifact (repro.experiments.population)."""

import pytest

from repro.experiments.population import (EXPERIMENT, PopulationExperiment,
                                          PopulationResult, check_shape, run)
from repro.runtime import result_digest
from repro.workload.arrivals import DiurnalProfile

#: Cheap single-deployment overrides shared by the behavioural tests.
SMALL = dict(target_queries=400, districts=1, catalog=2_000,
             cache_capacity=50, deployment="mec-ldns-mec-cdns")


@pytest.fixture(scope="module")
def small_result():
    return run(**SMALL)


class TestPlanning:
    def test_full_grid_is_deployments_times_districts(self):
        specs = EXPERIMENT.trials(EXPERIMENT.resolve_params())
        assert len(specs) == 6 * 2  # six deployments, two districts

    def test_unknown_deployment_rejected_in_the_planner(self):
        params = EXPERIMENT.resolve_params({"deployment": "carrier-pigeon"})
        with pytest.raises(ValueError):
            EXPERIMENT.trials(params)

    def test_bad_allocation_rejected_in_the_planner(self):
        params = EXPERIMENT.resolve_params({"allocation": "round-robin"})
        with pytest.raises(ValueError):
            EXPERIMENT.trials(params)

    def test_window_activity_factor(self):
        flat = PopulationExperiment._window_activity(
            DiurnalProfile([1.0] * 24), 18 * 3600.0, 3600.0)
        assert flat == pytest.approx(1.0)
        profile = DiurnalProfile()
        evening = PopulationExperiment._window_activity(
            profile, 18 * 3600.0, 3600.0)
        # The evening window runs hotter than the day average — this
        # factor is what keeps ``target_queries`` honest.
        assert evening == pytest.approx(profile.hourly[18] / profile.mean)
        assert evening > 1.3
        # A window straddling two buckets averages them.
        straddle = PopulationExperiment._window_activity(
            profile, 17.5 * 3600.0, 3600.0)
        expected = (0.5 * profile.hourly[17] + 0.5 * profile.hourly[18]) \
            / profile.mean
        assert straddle == pytest.approx(expected)


class TestResult:
    def test_query_volume_lands_near_target(self, small_result):
        row = small_result.row("mec-ldns-mec-cdns")
        assert row.queries == pytest.approx(SMALL["target_queries"],
                                            rel=0.35)

    def test_localized_row_shape(self, small_result):
        row = small_result.row("mec-ldns-mec-cdns")
        assert row.localization == 1.0
        assert 0.0 < row.hit_rate < 1.0
        assert row.dns.p50 < 20.0
        assert row.total.p50 > row.dns.p50
        assert row.sessions > 0
        assert row.active_ues > 0

    def test_row_lookup_raises_on_missing_key(self, small_result):
        with pytest.raises(KeyError):
            small_result.row("google-dns")

    def test_render_mentions_the_grid(self, small_result):
        text = small_result.render()
        assert "Population scale" in text
        assert "MEC L-DNS w/ MEC C-DNS" in text
        assert "allocation=content" in text

    def test_serial_reruns_are_digest_identical(self, small_result):
        again = run(**SMALL)
        assert result_digest(again) == result_digest(small_result)
        assert again.render() == small_result.render()


class TestShapeClaims:
    def test_small_run_passes_the_structural_claims(self, small_result):
        assert check_shape(small_result) == []

    def test_empty_rows_are_flagged(self, small_result):
        row = small_result.rows[0]._replace(queries=0)
        broken = PopulationResult(
            rows=[row], target_queries=small_result.target_queries,
            districts=small_result.districts, sites=small_result.sites,
            allocation=small_result.allocation,
            catalog=small_result.catalog)
        assert any("no queries" in violation
                   for violation in check_shape(broken))

    def test_delocalized_mec_row_is_flagged(self, small_result):
        row = small_result.row("mec-ldns-mec-cdns")._replace(
            localization=0.4)
        broken = PopulationResult(
            rows=[row], target_queries=small_result.target_queries,
            districts=small_result.districts, sites=small_result.sites,
            allocation=small_result.allocation,
            catalog=small_result.catalog)
        assert any("localization" in violation
                   for violation in check_shape(broken))
