"""Tests for the overload experiment and the finite-capacity server model."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone, make_query
from repro.dnswire.rdata import A, NS, SOA
from repro.experiments.overload import check_shape, run
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator, UdpSocket
from repro.resolver import AuthoritativeServer, StubResolver


def make_zone():
    zone = Zone(Name("cdn.test"))
    zone.add(ResourceRecord(Name("cdn.test"), RecordType.SOA, 300,
                            SOA(Name("ns.cdn.test"), Name("a.cdn.test"),
                                1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("cdn.test"), RecordType.NS, 300,
                            NS(Name("ns.cdn.test"))))
    zone.add(ResourceRecord(Name("v.cdn.test"), RecordType.A, 300,
                            A("10.0.0.9")))
    return zone


class TestWorkerModel:
    def build(self, workers, max_queue=8, processing=5.0):
        sim = Simulator()
        net = Network(sim, RandomStreams(13))
        net.add_host("server", "10.0.0.53")
        net.add_host("client", "10.0.0.2")
        net.add_link("client", "server", Constant(1))
        server = AuthoritativeServer(net, net.host("server"), [make_zone()],
                                     processing_delay=Constant(processing),
                                     workers=workers, max_queue=max_queue)
        return sim, net, server

    def burst(self, sim, net, count):
        sock = UdpSocket(net.host("client"))
        for index in range(count):
            query = make_query(Name("v.cdn.test"), msg_id=index + 1)
            sock.send_to(query.to_wire(), Endpoint("10.0.0.53", 53))
        sim.run()
        return sock

    def test_unlimited_workers_by_default(self):
        sim, net, server = self.build(workers=None)
        self.burst(sim, net, 20)
        assert server.responses_sent == 20
        assert server.queries_dropped == 0

    def test_single_worker_serialises_service(self):
        sim, net, server = self.build(workers=1, max_queue=100)
        self.burst(sim, net, 5)
        # 5 queries x 5ms service, serialised: last finishes ~26ms in.
        assert server.responses_sent == 5
        assert sim.now >= 5 * 5
        assert server.peak_backlog == 4

    def test_queue_overflow_drops(self):
        sim, net, server = self.build(workers=1, max_queue=3)
        self.burst(sim, net, 10)
        assert server.queries_dropped == 6  # 1 served + 3 queued at t=0
        assert server.responses_sent == 4

    def test_queued_queries_eventually_answered(self):
        sim, net, server = self.build(workers=2, max_queue=50)
        self.burst(sim, net, 12)
        assert server.responses_sent == 12

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            self.build(workers=0)

    def test_queueing_visible_in_client_latency(self):
        sim, net, server = self.build(workers=1, max_queue=100,
                                      processing=4.0)
        stub = StubResolver(net, net.host("client"),
                            Endpoint("10.0.0.53", 53))
        # Saturate with a background burst, then measure a legit query.
        sock = UdpSocket(net.host("client"))
        for index in range(10):
            sock.send_to(make_query(Name("v.cdn.test"),
                                    msg_id=index + 100).to_wire(),
                         Endpoint("10.0.0.53", 53))
        result = sim.run_until_resolved(sim.spawn(
            stub.query(Name("v.cdn.test"))))
        # It waited behind ~10 x 4ms of service time.
        assert result.query_time_ms > 30


@pytest.fixture(scope="module")
def overload_result():
    return run(attack_qps=1500, seed=0)


class TestOverloadExperiment:
    def test_shape_claims_hold(self, overload_result):
        assert check_shape(overload_result) == []

    def test_flood_degrades_unmitigated_service(self, overload_result):
        row = overload_result.row("none")
        assert row.attack_success_rate < 0.8
        assert row.queries_dropped_at_mec > 100

    def test_mitigation_preserves_availability(self, overload_result):
        row = overload_result.row("switch-to-provider")
        assert row.attack_success_rate > 0.95
        assert row.mitigation_activations >= 1

    def test_mitigation_costs_latency(self, overload_result):
        row = overload_result.row("switch-to-provider")
        assert row.attack_p95_ms > 2 * row.baseline_p95_ms

    def test_render(self, overload_result):
        text = overload_result.render()
        assert "answered during attack" in text
        assert "switch-to-provider" in text

    def test_row_lookup_unknown(self, overload_result):
        with pytest.raises(KeyError):
            overload_result.row("rate-limit")
