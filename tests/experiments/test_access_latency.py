"""Tests for the end-to-end access-latency experiment."""

import pytest

from repro.experiments.access_latency import check_shape, run


@pytest.fixture(scope="module")
def result():
    return run(rounds=6, seed=42)


class TestAccessLatency:
    def test_shape_claims_hold(self, result):
        assert check_shape(result) == []

    def test_all_deployments_measured(self, result):
        assert len(result.rows) == 6

    def test_fetch_leg_is_flat(self, result):
        fetches = [row.fetch_ms for row in result.rows]
        assert max(fetches) - min(fetches) < 0.3 * max(fetches)

    def test_gap_is_dns_dominated(self, result):
        mec = result.row("mec-ldns-mec-cdns")
        cloudflare = result.row("cloudflare-dns")
        dns_gap = cloudflare.dns_ms - mec.dns_ms
        total_gap = cloudflare.total_ms - mec.total_ms
        assert dns_gap == pytest.approx(total_gap, rel=0.15)

    def test_every_fetch_hits_warmed_edge(self, result):
        assert all(row.cache_hit_rate == 1.0 for row in result.rows)

    def test_totals_are_component_sums(self, result):
        for row in result.rows:
            assert row.total_ms == pytest.approx(row.dns_ms + row.fetch_ms)

    def test_render(self, result):
        text = result.render()
        assert "edge hits" in text
        assert "MEC L-DNS w/ MEC C-DNS" in text

    def test_row_lookup_unknown(self, result):
        with pytest.raises(KeyError):
            result.row("smoke-signals")
