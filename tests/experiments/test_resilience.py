"""Tests for the fault-injection (chaos) experiment."""

import pytest

from repro.experiments.resilience import (DEADLINE_MS, MODES, SCENARIOS,
                                          check_shape, run)


@pytest.fixture(scope="module")
def result():
    return run(queries=40, seed=42)


class TestResilienceGrid:
    def test_grid_covers_every_cell(self, result):
        # 6 deployments x 2 modes for the crash, 2 cells each for the
        # partition and burst-loss scenarios.
        assert len(result.rows) == 16
        assert {row.scenario for row in result.rows} == set(SCENARIOS)
        assert {row.mode for row in result.rows} == set(MODES)

    def test_row_lookup(self, result):
        row = result.row("cdns-crash", "mec-ldns-mec-cdns", "resilient")
        assert row.mode == "resilient"
        with pytest.raises(KeyError):
            result.row("cdns-crash", "no-such-deployment", "baseline")

    def test_shape_claims_hold_at_full_fidelity(self, result):
        assert check_shape(result) == []

    def test_stale_answers_only_in_resilient_cells(self, result):
        for row in result.rows:
            if row.mode == "baseline":
                assert row.stale_answers == 0

    def test_faulted_cells_recorded_timelines(self, result):
        assert result.timelines[
            "cdns-crash/mec-ldns-mec-cdns/baseline"] != []
        assert result.timelines[
            "mec-partition/mec-ldns-mec-cdns/baseline"] != []
        # The warmed-resolver deployments have no C-DNS to crash: their
        # timeline is empty by design, not by omission.
        assert result.timelines["cdns-crash/google-dns/baseline"] == []

    def test_render_is_complete(self, result):
        text = result.render()
        for token in ("cdns-crash", "mec-partition", "lte-burst-loss",
                      "avail", "stale", "fallback",
                      f"deadline {DEADLINE_MS:.0f} ms"):
            assert token in text

    def test_availability_is_a_fraction(self, result):
        for row in result.rows:
            assert 0.0 <= row.availability <= 1.0
            assert row.answered <= row.queries


class TestDeterminism:
    def test_replay_digests_match_byte_for_byte(self, result):
        assert result.replays  # the run replays at least one cell
        for first, second in result.replays.values():
            assert first == second

    def test_identical_seeds_reproduce_the_whole_grid(self):
        first = run(queries=5, seed=7)
        second = run(queries=5, seed=7)
        assert first.timelines == second.timelines
        assert first.rows == second.rows

    def test_different_seeds_change_measurements(self):
        first = run(queries=5, seed=7)
        second = run(queries=5, seed=8)
        assert first.rows != second.rows
