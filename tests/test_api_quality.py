"""API quality gates: documentation and export hygiene.

Every public module, class, and function in the library must carry a
docstring, and every name exported via ``__all__`` must resolve — the
kind of checks a release pipeline runs.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda module: module.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


def _documented_in_hierarchy(cls, method_name):
    """True if the method has a docstring anywhere in the MRO.

    Overrides of a documented base method inherit its contract (the same
    convention documentation generators follow).
    """
    for ancestor in cls.__mro__:
        method = vars(ancestor).get(method_name)
        if method is not None and getattr(method, "__doc__", None) \
                and method.__doc__.strip():
            return True
    return False


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda module: module.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not _documented_in_hierarchy(member, method_name):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, \
        f"{module.__name__}: undocumented public API: {undocumented}"


@pytest.mark.parametrize("module", [m for m in ALL_MODULES
                                    if hasattr(m, "__all__")],
                         ids=lambda module: module.__name__)
def test_dunder_all_resolves(module):
    missing = [name for name in module.__all__
               if not hasattr(module, name)]
    assert not missing, f"{module.__name__}.__all__ has dead names: {missing}"
