"""Coverage sweep: corners the feature-focused suites skirt around.

Grouped by subsystem; each test documents a small contract that would
otherwise only be exercised implicitly.
"""

import pytest

from repro.dnswire import (
    A,
    Name,
    RecordType,
    ResourceRecord,
    Zone,
    make_query,
)
from repro.dnswire.rdata import NS, SOA
from repro.errors import AddressError, RoutingError
from repro.netsim import (
    Constant,
    Datagram,
    Endpoint,
    Network,
    PacketTrace,
    RandomStreams,
    Simulator,
    UdpSocket,
)


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, RandomStreams(55))
    network.add_host("a", "10.0.0.1")
    network.add_host("b", "10.0.0.2")
    network.add_link("a", "b", Constant(2))
    return network


class TestDatagram:
    def test_rewritten_preserves_payload_and_hops(self):
        datagram = Datagram(Endpoint("10.0.0.1", 100),
                            Endpoint("10.0.0.2", 200), b"payload")
        datagram.hops.append("mid")
        clone = datagram.rewritten(src=Endpoint("198.51.100.1", 7))
        assert clone.payload == b"payload"
        assert clone.hops == ["mid"]
        assert clone.dst == datagram.dst
        assert clone.src == Endpoint("198.51.100.1", 7)

    def test_size_and_repr(self):
        datagram = Datagram(Endpoint("10.0.0.1", 1),
                            Endpoint("10.0.0.2", 2), b"abc")
        assert datagram.size == 3
        assert "10.0.0.1:1" in repr(datagram)


class TestTraceHelpers:
    def test_between_window(self, net):
        trace = PacketTrace(net)
        sender = UdpSocket(net.host("a"))
        receiver = UdpSocket(net.host("b"), port=9)
        receiver.on_datagram = lambda payload, src, sock: None
        sender.send_to(b"x", Endpoint("10.0.0.2", 9))
        net.sim.run()
        sender.send_to(b"y", Endpoint("10.0.0.2", 9))
        net.sim.run()
        early = trace.between(0, 1.0)
        assert early and all(record.time <= 1.0 for record in early)
        assert len(trace.between(0, net.sim.now)) == len(trace.records)

    def test_first_with_no_match(self, net):
        trace = PacketTrace(net)
        assert trace.first("deliver") is None
        assert repr(trace).startswith("PacketTrace")


class TestNetworkEdges:
    def test_remove_link_unknown_raises(self, net):
        with pytest.raises(RoutingError):
            net.remove_link("a", "ghost-link-peer")

    def test_release_unassigned_address_raises(self, net):
        with pytest.raises(AddressError):
            net.release_address(net.host("a"), "203.0.113.9")

    def test_middlebox_drop_blocks_delivery(self, net):
        from repro.netsim import Middlebox

        class BlackHole(Middlebox):
            def process(self, datagram, host):
                return None

        net.host("b").install_middlebox(BlackHole())
        received = []
        receiver = UdpSocket(net.host("b"), port=9)
        receiver.on_datagram = lambda payload, src, sock: received.append(1)
        UdpSocket(net.host("a")).send_to(b"x", Endpoint("10.0.0.2", 9))
        net.sim.run()
        assert not received

    def test_host_primary_address_requires_assignment(self, net):
        sim2 = Simulator()
        net2 = Network(sim2, RandomStreams(1))
        bare = net2.add_host("bare")
        with pytest.raises(AddressError):
            bare.address


class TestZoneGlue:
    def test_delegation_carries_glue(self):
        zone = Zone(Name("example.com"))
        zone.add(ResourceRecord(Name("example.com"), RecordType.SOA, 300,
                                SOA(Name("ns1.example.com"),
                                    Name("admin.example.com"),
                                    1, 2, 3, 4, 60)))
        zone.add(ResourceRecord(Name("sub.example.com"), RecordType.NS, 300,
                                NS(Name("ns.sub.example.com"))))
        zone.add(ResourceRecord(Name("ns.sub.example.com"), RecordType.A,
                                300, A("192.0.2.53")))
        result = zone.lookup(Name("www.sub.example.com"), RecordType.A)
        assert result.status.value == "delegation"
        assert result.additional
        assert result.additional[0].rdata.address == "192.0.2.53"

    def test_delegation_without_glue_has_empty_additional(self):
        zone = Zone(Name("example.com"))
        zone.add(ResourceRecord(Name("sub.example.com"), RecordType.NS, 300,
                                NS(Name("ns.elsewhere.net"))))
        result = zone.lookup(Name("www.sub.example.com"), RecordType.A)
        assert result.status.value == "delegation"
        assert result.additional == []


class TestServerGarbageHandling:
    def test_garbage_payload_gets_formerr(self, net):
        from repro.resolver import AuthoritativeServer
        zone = Zone(Name("cdn.test"))
        zone.add(ResourceRecord(Name("cdn.test"), RecordType.SOA, 300,
                                SOA(Name("ns.cdn.test"), Name("a.cdn.test"),
                                    1, 2, 3, 4, 60)))
        server = AuthoritativeServer(net, net.host("b"), [zone])
        replies = []
        sock = UdpSocket(net.host("a"))
        sock.on_datagram = lambda payload, src, s: replies.append(payload)
        # Two id octets followed by garbage that cannot parse.
        sock.send_to(b"\x12\x34" + b"\xff" * 5, server.endpoint)
        net.sim.run()
        assert replies
        from repro.dnswire import Message
        response = Message.from_wire(replies[0])
        assert response.rcode.name == "FORMERR"
        assert response.msg_id == 0x1234

    def test_tiny_garbage_silently_dropped(self, net):
        from repro.resolver import AuthoritativeServer
        zone = Zone(Name("cdn.test"))
        zone.add(ResourceRecord(Name("cdn.test"), RecordType.SOA, 300,
                                SOA(Name("ns.cdn.test"), Name("a.cdn.test"),
                                    1, 2, 3, 4, 60)))
        server = AuthoritativeServer(net, net.host("b"), [zone])
        sock = UdpSocket(net.host("a"))
        sock.send_to(b"\x01", server.endpoint)
        net.sim.run()
        assert server.responses_sent == 0

    def test_notimp_for_unsupported_opcode(self, net):
        from repro.dnswire.types import Opcode
        from repro.resolver import AuthoritativeServer
        zone = Zone(Name("cdn.test"))
        zone.add(ResourceRecord(Name("cdn.test"), RecordType.SOA, 300,
                                SOA(Name("ns.cdn.test"), Name("a.cdn.test"),
                                    1, 2, 3, 4, 60)))
        server = AuthoritativeServer(net, net.host("b"), [zone])
        query = make_query(Name("cdn.test"), msg_id=9)
        query.opcode = Opcode.NOTIFY
        replies = []
        sock = UdpSocket(net.host("a"))
        sock.on_datagram = lambda payload, src, s: replies.append(payload)
        sock.send_to(query.to_wire(), server.endpoint)
        net.sim.run()
        from repro.dnswire import Message
        assert Message.from_wire(replies[0]).rcode.name == "NOTIMP"


class TestReprs:
    """Reprs are part of the debugging surface; keep them informative."""

    def test_assorted_reprs(self, net):
        from repro.netsim.latency import LogNormal
        from repro.resolver.cache import DnsCache
        assert "LogNormal" in repr(LogNormal(1.0, 0.5))
        assert "DnsCache" in repr(DnsCache())
        assert "Host(a" in repr(net.host("a"))
        link = net.link_between("a", "b")
        assert "ms" in repr(link)
        sock = UdpSocket(net.host("a"))
        assert "open" in repr(sock)
        sock.close()
        assert "closed" in repr(sock)

    def test_experiment_reprs(self):
        from repro.cdn.providers import AKAMAI_24
        assert AKAMAI_24.label == "Akamai (23.55.124.0/24)"
        from repro.measure.stats import summarize
        assert "mean=" in str(summarize([1.0, 2.0]))
