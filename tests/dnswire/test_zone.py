"""Tests for zone data, lookup semantics, and the master-file parser."""

import pytest

from repro.dnswire import (
    A,
    CNAME,
    LookupStatus,
    Name,
    RecordType,
    ResourceRecord,
    Zone,
    parse_master_file,
)
from repro.dnswire.rdata import NS, SOA
from repro.dnswire.zone import zone_from_records
from repro.errors import ZoneError


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


@pytest.fixture
def zone():
    z = Zone(Name("example.com"))
    z.add(rr("example.com", RecordType.SOA,
             SOA(Name("ns1.example.com"), Name("admin.example.com"),
                 1, 7200, 3600, 1209600, 60)))
    z.add(rr("example.com", RecordType.NS, NS(Name("ns1.example.com"))))
    z.add(rr("www.example.com", RecordType.A, A("192.0.2.10")))
    z.add(rr("www.example.com", RecordType.A, A("192.0.2.11")))
    z.add(rr("alias.example.com", RecordType.CNAME, CNAME(Name("www.example.com"))))
    z.add(rr("*.wild.example.com", RecordType.A, A("192.0.2.99")))
    z.add(rr("deep.empty.example.com", RecordType.A, A("192.0.2.50")))
    z.add(rr("sub.example.com", RecordType.NS, NS(Name("ns.sub.example.com"))))
    return z


class TestLookup:
    def test_exact_match(self, zone):
        result = zone.lookup(Name("www.example.com"), RecordType.A)
        assert result.status == LookupStatus.SUCCESS
        assert sorted(r.rdata.address for r in result.records) == \
            ["192.0.2.10", "192.0.2.11"]

    def test_case_insensitive_lookup(self, zone):
        result = zone.lookup(Name("WWW.EXAMPLE.COM"), RecordType.A)
        assert result.status == LookupStatus.SUCCESS

    def test_nodata(self, zone):
        result = zone.lookup(Name("www.example.com"), RecordType.AAAA)
        assert result.status == LookupStatus.NODATA
        assert result.authority  # SOA for negative caching
        assert result.authority[0].rtype == RecordType.SOA

    def test_nxdomain(self, zone):
        result = zone.lookup(Name("missing.example.com"), RecordType.A)
        assert result.status == LookupStatus.NXDOMAIN
        assert result.authority[0].rtype == RecordType.SOA

    def test_out_of_zone_is_nxdomain(self, zone):
        result = zone.lookup(Name("www.other.net"), RecordType.A)
        assert result.status == LookupStatus.NXDOMAIN

    def test_cname_interposed(self, zone):
        result = zone.lookup(Name("alias.example.com"), RecordType.A)
        assert result.status == LookupStatus.CNAME
        assert result.cname_target == Name("www.example.com")
        assert result.records[0].rtype == RecordType.CNAME

    def test_cname_query_returns_cname_directly(self, zone):
        result = zone.lookup(Name("alias.example.com"), RecordType.CNAME)
        assert result.status == LookupStatus.SUCCESS

    def test_wildcard_synthesis(self, zone):
        result = zone.lookup(Name("anything.wild.example.com"), RecordType.A)
        assert result.status == LookupStatus.SUCCESS
        assert result.records[0].name == Name("anything.wild.example.com")
        assert result.records[0].rdata.address == "192.0.2.99"

    def test_wildcard_multiple_levels(self, zone):
        result = zone.lookup(Name("a.b.wild.example.com"), RecordType.A)
        assert result.status == LookupStatus.SUCCESS

    def test_empty_non_terminal_is_nodata(self, zone):
        # "empty.example.com" exists only as an interior node.
        result = zone.lookup(Name("empty.example.com"), RecordType.A)
        assert result.status == LookupStatus.NODATA

    def test_delegation(self, zone):
        result = zone.lookup(Name("host.sub.example.com"), RecordType.A)
        assert result.status == LookupStatus.DELEGATION
        assert result.authority[0].rtype == RecordType.NS
        assert result.authority[0].rdata.target == Name("ns.sub.example.com")

    def test_delegation_at_cut_point(self, zone):
        result = zone.lookup(Name("sub.example.com"), RecordType.A)
        assert result.status == LookupStatus.DELEGATION

    def test_apex_ns_is_not_delegation(self, zone):
        result = zone.lookup(Name("example.com"), RecordType.NS)
        assert result.status == LookupStatus.SUCCESS

    def test_any_query(self, zone):
        result = zone.lookup(Name("example.com"), RecordType.ANY)
        assert result.status == LookupStatus.SUCCESS
        assert {r.rtype for r in result.records} == {RecordType.SOA, RecordType.NS}


class TestZoneBuilding:
    def test_out_of_zone_add_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add(rr("www.other.net", RecordType.A, A("192.0.2.1")))

    def test_cname_conflicts_with_other_data(self, zone):
        with pytest.raises(ZoneError):
            zone.add(rr("www.example.com", RecordType.CNAME,
                        CNAME(Name("x.example.com"))))
        with pytest.raises(ZoneError):
            zone.add(rr("alias.example.com", RecordType.A, A("192.0.2.1")))

    def test_add_simple_relative(self):
        z = Zone(Name("example.com"))
        z.add_simple("www", RecordType.A, A("192.0.2.1"))
        assert z.lookup(Name("www.example.com"), RecordType.A).status == \
            LookupStatus.SUCCESS

    def test_soa_property(self, zone):
        assert zone.soa is not None
        assert zone.soa.rdata.minimum == 60

    def test_records_iteration(self, zone):
        assert sum(1 for _ in zone.records()) == 8

    def test_zone_from_records(self):
        z = zone_from_records("example.org", [
            rr("a.example.org", RecordType.A, A("192.0.2.1"))])
        assert z.origin == Name("example.org")


MASTER = """
$ORIGIN mycdn.ciab.test.
$TTL 1h
@       IN SOA ns1 admin ( 2024010101 7200 3600
                           1209600 300 )
        IN NS  ns1
ns1     IN A   10.0.0.53
video   300 IN A 10.233.1.10
video   IN A   10.233.1.11
demo    IN CNAME video
*.edge  IN A   10.233.2.1
txt     IN TXT "v=mec1" "edge=atlanta"
"""


class TestMasterFile:
    def test_parse_counts(self):
        zone = parse_master_file(MASTER)
        assert zone.origin == Name("mycdn.ciab.test")
        assert sum(1 for _ in zone.records()) == 8

    def test_soa_parenthesised(self):
        zone = parse_master_file(MASTER)
        assert zone.soa.rdata.serial == 2024010101
        assert zone.soa.rdata.minimum == 300

    def test_ttl_handling(self):
        zone = parse_master_file(MASTER)
        result = zone.lookup(Name("video.mycdn.ciab.test"), RecordType.A)
        assert {r.ttl for r in result.records} == {300, 3600}

    def test_default_ttl_applied(self):
        zone = parse_master_file(MASTER)
        result = zone.lookup(Name("ns1.mycdn.ciab.test"), RecordType.A)
        assert result.records[0].ttl == 3600

    def test_relative_names_resolved(self):
        zone = parse_master_file(MASTER)
        result = zone.lookup(Name("demo.mycdn.ciab.test"), RecordType.A)
        assert result.status == LookupStatus.CNAME
        assert result.cname_target == Name("video.mycdn.ciab.test")

    def test_wildcard_from_master(self):
        zone = parse_master_file(MASTER)
        result = zone.lookup(Name("atl1.edge.mycdn.ciab.test"), RecordType.A)
        assert result.status == LookupStatus.SUCCESS

    def test_txt_quoting(self):
        zone = parse_master_file(MASTER)
        result = zone.lookup(Name("txt.mycdn.ciab.test"), RecordType.TXT)
        assert result.records[0].rdata.strings == (b"v=mec1", b"edge=atlanta")

    def test_origin_argument(self):
        zone = parse_master_file("www IN A 192.0.2.1", origin=Name("example.com"))
        assert zone.lookup(Name("www.example.com"), RecordType.A).status == \
            LookupStatus.SUCCESS

    def test_no_origin_raises(self):
        with pytest.raises(ZoneError):
            parse_master_file("www IN A 192.0.2.1")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(ZoneError):
            parse_master_file("$ORIGIN e.com.\n@ IN SOA ns1 admin ( 1 2 3")

    def test_empty_file_raises(self):
        with pytest.raises(ZoneError):
            parse_master_file("; only a comment\n")

    def test_comments_ignored(self):
        zone = parse_master_file(
            "$ORIGIN e.com.\nwww IN A 192.0.2.1 ; the web server\n")
        assert zone.lookup(Name("www.e.com"), RecordType.A).status == \
            LookupStatus.SUCCESS
