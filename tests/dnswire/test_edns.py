"""Tests for EDNS0 and the RFC 7871 Client Subnet option."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.dnswire.edns import (
    AddressFamily,
    ClientSubnet,
    Edns,
    EdnsOptionCode,
    OpaqueOption,
)
from repro.errors import WireFormatError


class TestClientSubnet:
    def test_roundtrip_ipv4(self):
        option = ClientSubnet("203.0.113.7", 24)
        parsed = ClientSubnet.from_wire(option.to_wire())
        assert parsed.address == "203.0.113.0"  # masked to /24
        assert parsed.source_prefix == 24
        assert parsed.scope_prefix == 0
        assert parsed.family == AddressFamily.IPV4

    def test_address_masked_to_source_prefix(self):
        option = ClientSubnet("203.0.113.77", 20)
        assert option.address == "203.0.112.0"

    def test_wire_truncates_address_octets(self):
        option = ClientSubnet("203.0.113.0", 24)
        # family(2) + prefixes(2) + 3 address octets
        assert len(option.to_wire()) == 7

    def test_roundtrip_ipv6(self):
        option = ClientSubnet("2001:db8:1234::1", 48)
        parsed = ClientSubnet.from_wire(option.to_wire())
        assert parsed.family == AddressFamily.IPV6
        assert parsed.network() == ipaddress.ip_network("2001:db8:1234::/48")

    def test_scope_prefix_roundtrip(self):
        option = ClientSubnet("10.1.2.0", 24, scope_prefix=24)
        assert ClientSubnet.from_wire(option.to_wire()).scope_prefix == 24

    def test_with_scope(self):
        base = ClientSubnet("10.1.2.0", 24)
        scoped = base.with_scope(16)
        assert scoped.scope_prefix == 16
        assert scoped.address == base.address

    def test_zero_prefix_carries_no_address(self):
        option = ClientSubnet("1.2.3.4", 0)
        assert option.address == "0.0.0.0"
        assert len(option.to_wire()) == 4

    def test_bad_prefix_rejected(self):
        with pytest.raises(WireFormatError):
            ClientSubnet("10.0.0.1", 33)

    def test_bad_family_rejected(self):
        with pytest.raises(WireFormatError):
            ClientSubnet.from_wire(b"\x00\x07\x18\x00\x0a\x00\x00")

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=32))
    def test_any_ipv4_subnet_roundtrips(self, packed, prefix):
        address = str(ipaddress.IPv4Address(packed))
        option = ClientSubnet(address, prefix)
        parsed = ClientSubnet.from_wire(option.to_wire())
        assert parsed == option
        assert parsed.network() == ipaddress.ip_network(
            f"{address}/{prefix}", strict=False)


class TestEdns:
    def test_options_roundtrip(self):
        edns = Edns(options=[ClientSubnet("198.51.100.0", 24)])
        options = Edns.options_from_wire(edns.options_to_wire())
        assert options == [ClientSubnet("198.51.100.0", 24)]

    def test_unknown_option_is_opaque(self):
        opaque = OpaqueOption(4242, b"\x01\x02")
        edns = Edns(options=[opaque])
        parsed = Edns.options_from_wire(edns.options_to_wire())
        assert parsed == [opaque]

    def test_client_subnet_accessor(self):
        ecs = ClientSubnet("198.51.100.0", 24)
        assert Edns(options=[ecs]).client_subnet == ecs
        assert Edns().client_subnet is None

    def test_option_lookup_by_code(self):
        ecs = ClientSubnet("198.51.100.0", 24)
        edns = Edns(options=[ecs])
        assert edns.option(int(EdnsOptionCode.ECS)) == ecs
        assert edns.option(999) is None
