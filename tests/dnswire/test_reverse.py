"""Tests for reverse-DNS (in-addr.arpa) support."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.name import reverse_pointer
from repro.dnswire.rdata import NS, PTR, SOA
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, StubResolver


class TestReversePointer:
    def test_octet_order_reversed(self):
        assert reverse_pointer("10.233.64.2") == \
            Name("2.64.233.10.in-addr.arpa")

    def test_invalid_address_rejected(self):
        with pytest.raises(ValueError):
            reverse_pointer("not-an-ip")

    def test_roundtrip_through_ptr_zone(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(5))
        net.add_host("dns", "10.0.0.53")
        net.add_host("client", "10.0.0.2")
        net.add_link("client", "dns", Constant(1))
        zone = Zone(Name("64.233.10.in-addr.arpa"))
        zone.add(ResourceRecord(Name("64.233.10.in-addr.arpa"),
                                RecordType.SOA, 300,
                                SOA(Name("ns.mec.test"), Name("a.mec.test"),
                                    1, 2, 3, 4, 60)))
        zone.add(ResourceRecord(Name("64.233.10.in-addr.arpa"),
                                RecordType.NS, 300, NS(Name("ns.mec.test"))))
        zone.add(ResourceRecord(reverse_pointer("10.233.64.2"),
                                RecordType.PTR, 300,
                                PTR(Name("cache-1.edge1.mec.test"))))
        server = AuthoritativeServer(net, net.host("dns"), [zone])
        stub = StubResolver(net, net.host("client"), server.endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(reverse_pointer("10.233.64.2"), RecordType.PTR)))
        assert result.status == "NOERROR"
        assert result.response.answers[0].rdata.target == \
            Name("cache-1.edge1.mec.test")
