"""Tests for typed rdata codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire.name import Name
from repro.dnswire.rdata import (
    A, AAAA, CNAME, GenericRdata, MX, NS, PTR, SOA, SRV, TXT,
    parse_rdata, rdata_class_for,
)
from repro.dnswire.types import RecordType
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError


def roundtrip(rdata, rtype):
    writer = WireWriter()
    rdata.to_wire(writer)
    data = writer.getvalue()
    return parse_rdata(int(rtype), WireReader(data), len(data))


class TestA:
    def test_roundtrip(self):
        assert roundtrip(A("192.0.2.1"), RecordType.A) == A("192.0.2.1")

    def test_text(self):
        assert A("192.0.2.1").to_text() == "192.0.2.1"
        assert A.from_text(["192.0.2.1"], Name(".")) == A("192.0.2.1")

    def test_invalid_address(self):
        with pytest.raises(ValueError):
            A("999.1.1.1")

    def test_wrong_length_rejected(self):
        with pytest.raises(WireFormatError):
            parse_rdata(int(RecordType.A), WireReader(b"\x01\x02\x03"), 3)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_any_ipv4_roundtrips(self, packed):
        import ipaddress
        address = str(ipaddress.IPv4Address(packed))
        assert roundtrip(A(address), RecordType.A).address == address


class TestAAAA:
    def test_roundtrip(self):
        rdata = AAAA("2001:db8::1")
        assert roundtrip(rdata, RecordType.AAAA) == rdata

    def test_canonical_form(self):
        assert AAAA("2001:0db8:0000:0000:0000:0000:0000:0001").address == "2001:db8::1"


class TestNameRdata:
    def test_cname_roundtrip(self):
        rdata = CNAME(Name("cdn.example.net"))
        assert roundtrip(rdata, RecordType.CNAME) == rdata

    def test_ns_ptr(self):
        assert roundtrip(NS(Name("ns1.example.com")), RecordType.NS).target == \
            Name("ns1.example.com")
        assert roundtrip(PTR(Name("host.example.com")), RecordType.PTR).target == \
            Name("host.example.com")

    def test_from_text_relative(self):
        rdata = CNAME.from_text(["cdn"], Name("example.com"))
        assert rdata.target == Name("cdn.example.com")

    def test_cname_and_ns_not_equal(self):
        assert CNAME(Name("x.com")) != NS(Name("x.com"))


class TestMX:
    def test_roundtrip(self):
        rdata = MX(10, Name("mail.example.com"))
        assert roundtrip(rdata, RecordType.MX) == rdata

    def test_text(self):
        rdata = MX.from_text(["10", "mail"], Name("example.com"))
        assert rdata.preference == 10
        assert rdata.exchange == Name("mail.example.com")


class TestTXT:
    def test_roundtrip(self):
        rdata = TXT((b"hello", b"world"))
        assert roundtrip(rdata, RecordType.TXT) == rdata

    def test_from_string_splits_at_255(self):
        rdata = TXT.from_string("x" * 600)
        assert [len(chunk) for chunk in rdata.strings] == [255, 255, 90]

    def test_oversize_chunk_rejected(self):
        with pytest.raises(WireFormatError):
            TXT((b"x" * 256,))

    def test_text_rendering(self):
        assert TXT((b"a b",)).to_text() == '"a b"'


class TestSOA:
    def test_roundtrip(self):
        rdata = SOA(Name("ns1.example.com"), Name("admin.example.com"),
                    2024010101, 7200, 3600, 1209600, 300)
        parsed = roundtrip(rdata, RecordType.SOA)
        assert parsed == rdata
        assert parsed.minimum == 300

    def test_from_text(self):
        rdata = SOA.from_text(
            ["ns1", "admin", "1", "2", "3", "4", "5"], Name("example.com"))
        assert rdata.mname == Name("ns1.example.com")
        assert rdata.serial == 1
        assert rdata.minimum == 5


class TestSRV:
    def test_roundtrip(self):
        rdata = SRV(0, 5, 53, Name("dns.kube-system.svc.cluster.local"))
        assert roundtrip(rdata, RecordType.SRV) == rdata


class TestGeneric:
    def test_unknown_type_roundtrips(self):
        data = b"\x01\x02\x03\x04"
        parsed = parse_rdata(999, WireReader(data), len(data))
        assert isinstance(parsed, GenericRdata)
        assert parsed.data == data
        assert parsed.generic_rtype == 999

    def test_rfc3597_text(self):
        rdata = GenericRdata(b"\xde\xad")
        assert rdata.to_text() == "\\# 2 dead"
        assert GenericRdata.from_text(["\\#", "2", "dead"], Name(".")).data == b"\xde\xad"

    def test_registry_lookup(self):
        assert rdata_class_for(int(RecordType.A)) is A
        assert rdata_class_for(4242) is GenericRdata


class TestRdlengthValidation:
    def test_underconsumed_rdata_rejected(self):
        # A CNAME whose rdlength claims more bytes than the name uses.
        writer = WireWriter()
        CNAME(Name("a.b")).to_wire(writer)
        data = writer.getvalue() + b"\x00"
        with pytest.raises(WireFormatError):
            parse_rdata(int(RecordType.CNAME), WireReader(data), len(data))
