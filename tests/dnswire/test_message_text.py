"""Tests for dig-style message rendering."""

from repro.dnswire import (
    A,
    ClientSubnet,
    Edns,
    Name,
    Rcode,
    RecordType,
    ResourceRecord,
    make_query,
    make_response,
)


def build_response():
    query = make_query(Name("video.demo1.mycdn.ciab.test"), msg_id=7,
                       edns=Edns(options=[ClientSubnet("10.45.0.0", 24, 16)]))
    return make_response(
        query, recursion_available=True,
        answers=[ResourceRecord(Name("video.demo1.mycdn.ciab.test"),
                                RecordType.A, 30, A("10.233.64.2"))])


class TestMessageToText:
    def test_header_line(self):
        text = build_response().to_text()
        assert ";; ->>HEADER<<- opcode: QUERY, status: NOERROR, id: 7" in text

    def test_flags_line_counts_sections(self):
        text = build_response().to_text()
        assert "QUERY: 1, ANSWER: 1, AUTHORITY: 0, ADDITIONAL: 1" in text
        assert "flags: qr rd ra" in text

    def test_question_section(self):
        text = build_response().to_text()
        assert ";video.demo1.mycdn.ciab.test." in text
        assert "IN\tA" in text

    def test_answer_section(self):
        text = build_response().to_text()
        assert "video.demo1.mycdn.ciab.test. 30 IN A 10.233.64.2" in text

    def test_edns_pseudosection_with_ecs(self):
        text = build_response().to_text()
        assert "OPT PSEUDOSECTION" in text
        assert "CLIENT-SUBNET: 10.45.0.0/24/16" in text

    def test_no_edns_no_pseudosection(self):
        query = make_query(Name("a.test"), msg_id=1)
        assert "OPT" not in make_response(query).to_text()

    def test_nxdomain_status(self):
        query = make_query(Name("ghost.test"), msg_id=2)
        text = make_response(query, rcode=Rcode.NXDOMAIN).to_text()
        assert "status: NXDOMAIN" in text

    def test_empty_sections_omitted(self):
        query = make_query(Name("a.test"), msg_id=3)
        text = make_response(query).to_text()
        assert "ANSWER SECTION" not in text
        assert "AUTHORITY SECTION" not in text

    def test_dnssec_do_flag_rendered(self):
        # Rendered on the query itself; responses mirror options only.
        query = make_query(Name("a.test"), msg_id=4,
                           edns=Edns(dnssec_ok=True))
        assert "flags: do" in query.to_text()


class TestCliVerboseDig:
    def test_verbose_prints_full_response(self, capsys):
        from repro.cli import main
        assert main(["dig", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "->>HEADER<<-" in out
        assert "ANSWER SECTION" in out
        assert ";; Query time:" in out
