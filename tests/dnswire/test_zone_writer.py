"""Tests for the master-file writer, incl. a parse/render round-trip."""


from hypothesis import given, settings, strategies as st

from repro.dnswire import (
    A,
    CNAME,
    Name,
    RecordType,
    ResourceRecord,
    TXT,
    Zone,
    parse_master_file,
)
from repro.dnswire.rdata import MX, NS, SOA, SRV
from repro.dnswire.zone import zone_to_master_text

ORIGIN = Name("render.test")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def base_zone():
    zone = Zone(ORIGIN)
    zone.add(rr("render.test", RecordType.SOA,
                SOA(Name("ns1.render.test"), Name("admin.render.test"),
                    7, 60, 30, 1209600, 300)))
    zone.add(rr("render.test", RecordType.NS, NS(Name("ns1.render.test"))))
    zone.add(rr("ns1.render.test", RecordType.A, A("10.0.0.53")))
    return zone


class TestWriter:
    def test_origin_and_apex_rendering(self):
        text = zone_to_master_text(base_zone())
        assert text.startswith("$ORIGIN render.test.\n")
        assert "@ 300 IN SOA" in text

    def test_soa_leads(self):
        lines = zone_to_master_text(base_zone()).splitlines()
        assert "SOA" in lines[1]

    def test_roundtrip_all_supported_types(self):
        zone = base_zone()
        zone.add(rr("www.render.test", RecordType.A, A("192.0.2.1")))
        zone.add(rr("alias.render.test", RecordType.CNAME,
                    CNAME(Name("www.render.test"))))
        zone.add(rr("render.test", RecordType.MX,
                    MX(10, Name("mail.render.test"))))
        zone.add(rr("txt.render.test", RecordType.TXT,
                    TXT((b"v=mec1", b"hello world"))))
        zone.add(rr("_dns._udp.render.test", RecordType.SRV,
                    SRV(0, 5, 53, Name("ns1.render.test"))))
        reparsed = parse_master_file(zone_to_master_text(zone))
        original = sorted(map(str, (r.to_text() for r in zone.records())))
        roundtripped = sorted(map(str, (r.to_text()
                                        for r in reparsed.records())))
        assert roundtripped == original

    def test_roundtrip_preserves_lookup_behaviour(self):
        zone = base_zone()
        zone.add(rr("*.edge.render.test", RecordType.A, A("10.9.9.9")))
        reparsed = parse_master_file(zone_to_master_text(zone))
        result = reparsed.lookup(Name("atl.edge.render.test"), RecordType.A)
        assert result.status.value == "success"


_label = st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789"),
                 min_size=1, max_size=10)
_ipv4 = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda v: f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}")


@given(st.lists(st.tuples(_label, _ipv4, st.integers(1, 86400)),
                min_size=0, max_size=12, unique_by=lambda t: t[0]))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property_random_zones(hosts):
    zone = base_zone()
    for label, address, ttl in hosts:
        zone.add(rr(f"{label}.render.test", RecordType.A, A(address),
                    ttl=ttl))
    reparsed = parse_master_file(zone_to_master_text(zone))
    assert sorted(r.to_text() for r in reparsed.records()) == \
        sorted(r.to_text() for r in zone.records())
