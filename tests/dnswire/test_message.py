"""Tests for the full message codec."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire import (
    A,
    CNAME,
    ClientSubnet,
    Edns,
    Flags,
    Message,
    Name,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    make_query,
    make_response,
)
from repro.dnswire.types import Opcode
from repro.errors import WireFormatError


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


class TestFlags:
    def test_bits_roundtrip_all_set(self):
        flags = Flags(qr=True, aa=True, tc=True, rd=True, ra=True, ad=True, cd=True)
        assert Flags.from_bits(flags.to_bits()) == flags

    def test_bits_roundtrip_none_set(self):
        flags = Flags(rd=False)
        assert Flags.from_bits(flags.to_bits()) == flags

    def test_individual_bits(self):
        assert Flags(qr=True, rd=False).to_bits() == 0x8000
        assert Flags(rd=True).to_bits() == 0x0100


class TestQueryResponse:
    def test_query_roundtrip(self):
        query = make_query(Name("a0.muscache.com"), RecordType.A, msg_id=42)
        parsed = Message.from_wire(query.to_wire())
        assert parsed.msg_id == 42
        assert parsed.question == Question(Name("a0.muscache.com"), RecordType.A)
        assert not parsed.flags.qr
        assert parsed.flags.rd

    def test_response_roundtrip(self):
        query = make_query(Name("cdn0.agoda.net"), msg_id=7)
        response = make_response(
            query, authoritative=True,
            answers=[rr("cdn0.agoda.net", RecordType.A, A("23.55.124.10"))])
        parsed = Message.from_wire(response.to_wire())
        assert parsed.msg_id == 7
        assert parsed.flags.qr and parsed.flags.aa
        assert parsed.answer_addresses() == ["23.55.124.10"]

    def test_cname_chain_in_answer(self):
        query = make_query(Name("static.tacdn.com"), msg_id=1)
        response = make_response(query, answers=[
            rr("static.tacdn.com", RecordType.CNAME, CNAME(Name("t.fastly.net"))),
            rr("t.fastly.net", RecordType.A, A("151.101.2.2")),
        ])
        parsed = Message.from_wire(response.to_wire())
        assert parsed.answers[0].rtype == RecordType.CNAME
        assert parsed.answer_addresses() == ["151.101.2.2"]

    def test_all_sections_roundtrip(self):
        from repro.dnswire.rdata import SOA
        query = make_query(Name("x.example.com"), msg_id=3)
        response = make_response(
            query, rcode=Rcode.NXDOMAIN,
            authorities=[rr("example.com", RecordType.SOA,
                            SOA(Name("ns1.example.com"), Name("admin.example.com"),
                                1, 2, 3, 4, 60))],
            additionals=[rr("ns1.example.com", RecordType.A, A("192.0.2.53"))])
        parsed = Message.from_wire(response.to_wire())
        assert parsed.rcode == Rcode.NXDOMAIN
        assert len(parsed.authorities) == 1
        assert len(parsed.additionals) == 1
        assert parsed.authorities[0].rtype == RecordType.SOA

    def test_response_mirrors_rd_flag(self):
        query = make_query(Name("a.b"), recursion_desired=False)
        assert not make_response(query).flags.rd

    def test_question_accessor_empty_raises(self):
        with pytest.raises(WireFormatError):
            Message().question

    def test_opcode_roundtrip(self):
        msg = Message(msg_id=5, opcode=Opcode.NOTIFY)
        msg.questions.append(Question(Name("example.com"), RecordType.SOA))
        assert Message.from_wire(msg.to_wire()).opcode == Opcode.NOTIFY


class TestEdnsInMessages:
    def test_opt_record_roundtrip(self):
        query = make_query(Name("example.com"), msg_id=9,
                           edns=Edns(udp_payload=4096))
        parsed = Message.from_wire(query.to_wire())
        assert parsed.edns is not None
        assert parsed.edns.udp_payload == 4096

    def test_ecs_rides_in_opt(self):
        ecs = ClientSubnet("203.0.113.0", 24)
        query = make_query(Name("example.com"), edns=Edns(options=[ecs]))
        parsed = Message.from_wire(query.to_wire())
        assert parsed.edns.client_subnet == ecs

    def test_response_mirrors_edns(self):
        ecs = ClientSubnet("203.0.113.0", 24)
        query = make_query(Name("example.com"), edns=Edns(options=[ecs]))
        response = make_response(query)
        assert response.edns is not None
        assert response.edns.client_subnet == ecs

    def test_no_edns_means_no_opt(self):
        query = make_query(Name("example.com"))
        parsed = Message.from_wire(query.to_wire())
        assert parsed.edns is None

    def test_extended_rcode(self):
        query = make_query(Name("example.com"), edns=Edns())
        response = make_response(query, rcode=Rcode.BADVERS)
        parsed = Message.from_wire(response.to_wire())
        assert parsed.rcode == Rcode.BADVERS

    def test_dnssec_ok_bit(self):
        query = make_query(Name("example.com"), edns=Edns(dnssec_ok=True))
        assert Message.from_wire(query.to_wire()).edns.dnssec_ok

    def test_non_root_opt_owner_rejected(self):
        query = make_query(Name("example.com"), edns=Edns())
        data = bytearray(query.to_wire())
        # Corrupt the OPT owner: replace root label (0x00) before TYPE=41
        # with a pointer to the question name.
        opt_type_at = data.find(b"\x00\x29", 12 + 1)
        data[opt_type_at - 1:opt_type_at + 1] = b"\xc0\x0c\x00"
        with pytest.raises(WireFormatError):
            Message.from_wire(bytes(data))


class TestCompressionInMessages:
    def test_answer_owner_compressed_against_question(self):
        query = make_query(Name("a-very-long-cdn-name.example.com"), msg_id=1)
        response = make_response(query, answers=[
            rr("a-very-long-cdn-name.example.com", RecordType.A, A("192.0.2.1"))])
        wire = response.to_wire()
        # The owner of the answer should be a 2-byte pointer; a full repeat
        # would make the message much longer.
        uncompressed_len = (len(make_response(query).to_wire())
                            + Name("a-very-long-cdn-name.example.com").wire_length()
                            + 10 + 4)
        assert len(wire) < uncompressed_len

    def test_truncated_message_rejected(self):
        query = make_query(Name("example.com"))
        data = query.to_wire()
        with pytest.raises(WireFormatError):
            Message.from_wire(data[:-3])


_label = st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
                 min_size=1, max_size=12)
_names = st.lists(_label, min_size=1, max_size=4).map(lambda ls: Name(".".join(ls)))
_ipv4 = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda v: f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}")


@given(
    msg_id=st.integers(min_value=0, max_value=0xFFFF),
    qname=_names,
    answers=st.lists(st.tuples(_names, _ipv4, st.integers(0, 86400)), max_size=6),
    rcode=st.sampled_from([Rcode.NOERROR, Rcode.NXDOMAIN, Rcode.SERVFAIL, Rcode.REFUSED]),
)
def test_message_roundtrip_property(msg_id, qname, answers, rcode):
    query = make_query(qname, RecordType.A, msg_id=msg_id)
    response = make_response(
        query, rcode=rcode,
        answers=[rr(str(name), RecordType.A, A(addr), ttl)
                 for name, addr, ttl in answers])
    parsed = Message.from_wire(response.to_wire())
    assert parsed.msg_id == msg_id
    assert parsed.rcode == rcode
    assert parsed.question.name == qname
    assert parsed.answers == response.answers
