"""Tests for the wire buffers and name compression."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire.name import Name
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import (
    CompressionLoopError,
    TruncatedMessageError,
    WireFormatError,
)


class TestPrimitives:
    def test_integers_roundtrip(self):
        writer = WireWriter()
        writer.write_u8(0xAB)
        writer.write_u16(0xBEEF)
        writer.write_u32(0xDEADBEEF)
        reader = WireReader(writer.getvalue())
        assert reader.read_u8() == 0xAB
        assert reader.read_u16() == 0xBEEF
        assert reader.read_u32() == 0xDEADBEEF
        assert reader.remaining == 0

    def test_bytes_roundtrip(self):
        writer = WireWriter()
        writer.write_bytes(b"hello")
        assert WireReader(writer.getvalue()).read_bytes(5) == b"hello"

    def test_truncated_read_raises(self):
        reader = WireReader(b"\x01")
        with pytest.raises(TruncatedMessageError):
            reader.read_u16()

    def test_patch_u16(self):
        writer = WireWriter()
        offset = writer.reserve_u16()
        writer.write_bytes(b"xyz")
        writer.patch_u16(offset, 3)
        reader = WireReader(writer.getvalue())
        assert reader.read_u16() == 3

    def test_seek_out_of_range(self):
        with pytest.raises(WireFormatError):
            WireReader(b"ab").seek(5)


class TestNames:
    def test_simple_name_roundtrip(self):
        writer = WireWriter()
        writer.write_name(Name("www.example.com"))
        reader = WireReader(writer.getvalue())
        assert reader.read_name() == Name("www.example.com")

    def test_root_name_is_single_zero(self):
        writer = WireWriter()
        writer.write_name(Name("."))
        assert writer.getvalue() == b"\x00"

    def test_uncompressed_encoding(self):
        writer = WireWriter()
        writer.write_name(Name("ab.c"))
        assert writer.getvalue() == b"\x02ab\x01c\x00"

    def test_compression_reuses_suffix(self):
        writer = WireWriter()
        writer.write_name(Name("www.example.com"))
        first_len = len(writer)
        writer.write_name(Name("mail.example.com"))
        data = writer.getvalue()
        # Second name should be "mail" + 2-byte pointer, not a full encoding.
        assert len(data) - first_len == len(b"\x04mail") + 2
        reader = WireReader(data)
        assert reader.read_name() == Name("www.example.com")
        assert reader.read_name() == Name("mail.example.com")

    def test_compression_whole_name_pointer(self):
        writer = WireWriter()
        writer.write_name(Name("example.com"))
        first_len = len(writer)
        writer.write_name(Name("example.com"))
        assert len(writer.getvalue()) - first_len == 2

    def test_compression_case_insensitive(self):
        writer = WireWriter()
        writer.write_name(Name("EXAMPLE.com"))
        first_len = len(writer)
        writer.write_name(Name("example.COM"))
        assert len(writer.getvalue()) - first_len == 2

    def test_compression_disabled(self):
        writer = WireWriter(enable_compression=False)
        writer.write_name(Name("example.com"))
        first_len = len(writer)
        writer.write_name(Name("example.com"))
        assert len(writer.getvalue()) == 2 * first_len

    def test_reader_position_after_pointer(self):
        writer = WireWriter()
        writer.write_name(Name("example.com"))
        writer.write_name(Name("www.example.com"))
        writer.write_u16(0x1234)
        reader = WireReader(writer.getvalue())
        reader.read_name()
        assert reader.read_name() == Name("www.example.com")
        assert reader.read_u16() == 0x1234

    def test_pointer_loop_detected(self):
        # A name at offset 0 that is a pointer to itself.
        with pytest.raises(CompressionLoopError):
            WireReader(b"\xc0\x00").read_name()

    def test_mutual_pointer_loop_detected(self):
        # label "a" at 0, then pointer at 2 back to 0: reading from offset 0
        # yields a -> pointer(2)->0 -> a -> ... must be caught.
        data = b"\x01a\xc0\x00"
        with pytest.raises(CompressionLoopError):
            WireReader(data).read_name()

    def test_forward_pointer_rejected(self):
        data = b"\xc0\x04\x00\x00\x01a\x00"
        with pytest.raises(CompressionLoopError):
            WireReader(data).read_name()

    def test_unsupported_label_type(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x80abc").read_name()

    def test_truncated_name(self):
        with pytest.raises(TruncatedMessageError):
            WireReader(b"\x05ab").read_name()


_label = st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
                 min_size=1, max_size=15)
_names = st.lists(_label, min_size=0, max_size=5).map(
    lambda labels: Name(".".join(labels)) if labels else Name("."))


@given(st.lists(_names, min_size=1, max_size=8))
def test_many_names_roundtrip_with_compression(names):
    writer = WireWriter()
    for name in names:
        writer.write_name(name)
    reader = WireReader(writer.getvalue())
    for name in names:
        assert reader.read_name() == name
    assert reader.remaining == 0


@given(st.lists(_names, min_size=1, max_size=8))
def test_compression_never_grows_output(names):
    compressed = WireWriter(enable_compression=True)
    plain = WireWriter(enable_compression=False)
    for name in names:
        compressed.write_name(name)
        plain.write_name(name)
    assert len(compressed) <= len(plain)
