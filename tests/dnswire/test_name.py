"""Tests for domain name handling."""

import pytest
from hypothesis import given, strategies as st

from repro.dnswire.name import MAX_LABEL_LENGTH, Name, ROOT, derelativize
from repro.errors import NameError_


class TestConstruction:
    def test_from_text_basic(self):
        name = Name("www.example.com.")
        assert name.labels == (b"www", b"example", b"com")

    def test_trailing_dot_optional(self):
        assert Name("www.example.com") == Name("www.example.com.")

    def test_root(self):
        assert Name(".").is_root
        assert Name("").is_root
        assert ROOT.is_root
        assert ROOT.to_text() == "."

    def test_from_labels(self):
        name = Name.from_labels([b"a", b"b"])
        assert name.to_text() == "a.b."

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            Name("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_label_max_length_ok(self):
        name = Name("a" * MAX_LABEL_LENGTH + ".com")
        assert len(name.labels[0]) == MAX_LABEL_LENGTH

    def test_name_too_long(self):
        label = "a" * 60
        with pytest.raises(NameError_):
            Name(".".join([label] * 5))

    def test_empty_interior_label_rejected(self):
        with pytest.raises(NameError_):
            Name("www..example.com")

    def test_non_ascii_rejected(self):
        with pytest.raises(NameError_):
            Name("wüw.example.com")


class TestComparison:
    def test_case_insensitive_equality(self):
        assert Name("WWW.Example.COM") == Name("www.example.com")

    def test_case_insensitive_hash(self):
        assert hash(Name("WWW.Example.COM")) == hash(Name("www.example.com"))

    def test_original_case_preserved(self):
        assert Name("WWW.Example.COM").to_text() == "WWW.Example.COM."

    def test_inequality(self):
        assert Name("a.example.com") != Name("b.example.com")

    def test_not_equal_to_string(self):
        assert Name("example.com") != "example.com"

    def test_ordering_is_suffix_major(self):
        # Canonical DNS order compares from the root downwards.
        assert Name("a.example.com") < Name("b.example.com")
        assert Name("z.alpha.com") < Name("a.beta.com")


class TestStructure:
    def test_parent(self):
        assert Name("www.example.com").parent() == Name("example.com")

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_is_subdomain_of(self):
        assert Name("www.example.com").is_subdomain_of(Name("example.com"))
        assert Name("example.com").is_subdomain_of(Name("example.com"))
        assert not Name("example.com").is_subdomain_of(Name("www.example.com"))
        assert not Name("badexample.com").is_subdomain_of(Name("example.com"))

    def test_everything_is_under_root(self):
        assert Name("www.example.com").is_subdomain_of(ROOT)

    def test_subdomain_case_insensitive(self):
        assert Name("WWW.EXAMPLE.COM").is_subdomain_of(Name("example.com"))

    def test_relativize(self):
        labels = Name("www.example.com").relativize(Name("example.com"))
        assert labels == (b"www",)

    def test_relativize_not_subdomain_raises(self):
        with pytest.raises(NameError_):
            Name("www.other.com").relativize(Name("example.com"))

    def test_concatenate(self):
        joined = Name("www").concatenate(Name("example.com"))
        assert joined == Name("www.example.com")

    def test_prepend(self):
        assert Name("example.com").prepend("cdn") == Name("cdn.example.com")

    def test_split_prefix(self):
        prefix, rest = Name("a.b.example.com").split_prefix(2)
        assert prefix == (b"a", b"b")
        assert rest == Name("example.com")

    def test_wire_length(self):
        # 3 + 1 + 7 + 1 + 3 + 1 + root(1) = 17
        assert Name("www.example.com").wire_length() == 17
        assert ROOT.wire_length() == 1


class TestDerelativize:
    def test_relative_name(self):
        name = derelativize("www", Name("example.com"))
        assert name == Name("www.example.com")

    def test_absolute_name_ignores_origin(self):
        name = derelativize("www.other.net.", Name("example.com"))
        assert name == Name("www.other.net")

    def test_at_sign_is_origin(self):
        assert derelativize("@", Name("example.com")) == Name("example.com")

    def test_at_sign_without_origin_raises(self):
        with pytest.raises(NameError_):
            derelativize("@", None)


_label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1, max_size=20)


@given(st.lists(_label, min_size=0, max_size=6))
def test_text_roundtrip_property(labels):
    text = ".".join(labels) + "." if labels else "."
    name = Name(text)
    assert Name(name.to_text()) == name
    assert len(name) == len(labels)


@given(st.lists(_label, min_size=1, max_size=4), st.lists(_label, min_size=0, max_size=3))
def test_concatenate_preserves_subdomain_property(suffix_labels, prefix_labels):
    suffix = Name(".".join(suffix_labels))
    combined = Name.from_labels(
        tuple(label.encode() for label in prefix_labels) + suffix.labels)
    assert combined.is_subdomain_of(suffix)
    assert combined.relativize(suffix) == tuple(
        label.encode() for label in prefix_labels)
