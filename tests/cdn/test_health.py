"""Tests for the cache health monitor and its router integration."""

import pytest

from repro.cdn import (
    CacheServer,
    ContentCatalog,
    CoverageZone,
    HealthMonitor,
    TrafficRouter,
)
from repro.dnswire import Name
from repro.faults import FaultPlan, inject
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import StubResolver


class HealthScenario:
    def __init__(self, seed=97, failure_threshold=2):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.net.add_host("router", "10.96.0.53")
        self.net.add_host("client", "10.45.0.2")
        self.net.add_link("client", "router", Constant(1))
        self.catalog = ContentCatalog()
        self.caches = []
        for index in range(3):
            host = self.net.add_host(f"cache-{index}", f"10.233.1.{10 + index}")
            self.net.add_link(host.name, "router", Constant(0.5))
            self.net.add_link(host.name, "client", Constant(2))
            self.caches.append(CacheServer(self.net, host, self.catalog))
        self.monitor = HealthMonitor(
            self.net, self.net.host("router"), self.caches,
            interval_ms=100, probe_timeout_ms=50,
            failure_threshold=failure_threshold)
        self.router = TrafficRouter(
            self.net, self.net.host("router"), Name("mycdn.ciab.test"),
            zones=[CoverageZone("all", ["0.0.0.0/0"], self.caches)],
            health_check=self.monitor.is_healthy)

    def probe_all(self):
        self.sim.run_until_resolved(
            self.sim.spawn(self.monitor.probe_all_once()))

    def query(self, name="video.demo1.mycdn.ciab.test"):
        stub = StubResolver(self.net, self.net.host("client"),
                            self.router.endpoint)
        return self.sim.run_until_resolved(
            self.sim.spawn(stub.query(Name(name))))


class TestHealthMonitor:
    def test_all_healthy_initially(self):
        scenario = HealthScenario()
        assert scenario.monitor.healthy_count == 3

    def test_probe_confirms_live_caches(self):
        scenario = HealthScenario()
        scenario.probe_all()
        assert scenario.monitor.healthy_count == 3
        assert scenario.monitor.probes_sent == 3

    def test_failure_threshold_hysteresis(self):
        scenario = HealthScenario(failure_threshold=2)
        scenario.caches[0].online = False
        scenario.probe_all()
        # One failed probe is not enough.
        assert scenario.monitor.is_healthy(scenario.caches[0])
        scenario.probe_all()
        assert not scenario.monitor.is_healthy(scenario.caches[0])
        assert scenario.monitor.transitions == 1

    def test_recovery_on_first_success(self):
        scenario = HealthScenario(failure_threshold=1)
        scenario.caches[0].online = False
        scenario.probe_all()
        assert not scenario.monitor.is_healthy(scenario.caches[0])
        scenario.caches[0].online = True
        scenario.probe_all()
        assert scenario.monitor.is_healthy(scenario.caches[0])
        assert scenario.monitor.transitions == 2

    def test_router_follows_monitor_belief(self):
        scenario = HealthScenario(failure_threshold=1)
        first_ip = scenario.query().addresses[0]
        victim = next(cache for cache in scenario.caches
                      if cache.endpoint.ip == first_ip)
        victim.online = False
        # Router still believes the cache is healthy (stale answer risk)...
        assert scenario.query().addresses[0] == first_ip
        # ...until the monitor detects the crash.
        scenario.probe_all()
        rerouted = scenario.query().addresses[0]
        assert rerouted != first_ip

    def test_continuous_monitoring_loop(self):
        scenario = HealthScenario(failure_threshold=2)
        scenario.monitor.start()
        scenario.caches[1].online = False
        scenario.sim.run(until=1000)
        assert not scenario.monitor.is_healthy(scenario.caches[1])
        assert scenario.monitor.healthy_count == 2
        scenario.monitor.stop()

    def test_invalid_threshold_rejected(self):
        scenario = HealthScenario()
        with pytest.raises(ValueError):
            HealthMonitor(scenario.net, scenario.net.host("router"),
                          scenario.caches, failure_threshold=0)


class TestHealthUnderHostCrash:
    """Hysteresis against real crashes (host down, not a polite flag)."""

    def test_crash_detected_after_threshold_then_recovers(self):
        scenario = HealthScenario(failure_threshold=2)
        inject(scenario.net,
               FaultPlan().crash_host("cache-0", 0, duration_ms=450))
        scenario.monitor.start()
        # Two probe rounds (interval 100 ms) must fail before the flip.
        scenario.sim.run(until=300)
        assert not scenario.monitor.is_healthy(scenario.caches[0])
        assert scenario.monitor.healthy_count == 2
        # The host restarts at 450 ms; one good probe restores belief.
        scenario.sim.run(until=1000)
        assert scenario.monitor.is_healthy(scenario.caches[0])
        assert scenario.monitor.transitions == 2
        scenario.monitor.stop()

    def test_single_lost_probe_does_not_flip_belief(self):
        scenario = HealthScenario(failure_threshold=2)
        inject(scenario.net,
               FaultPlan().crash_host("cache-1", 0, duration_ms=60))
        scenario.probe_all()  # exactly one probe lands inside the crash
        assert scenario.monitor.is_healthy(scenario.caches[1])
        assert scenario.monitor.transitions == 0

    def test_router_routes_around_crashed_host(self):
        scenario = HealthScenario(failure_threshold=2)
        crashed_ip = scenario.caches[0].endpoint.ip
        inject(scenario.net,
               FaultPlan().crash_host("cache-0", 0, duration_ms=10_000))
        scenario.probe_all()
        scenario.probe_all()
        assert not scenario.monitor.is_healthy(scenario.caches[0])
        for _ in range(4):
            assert crashed_ip not in scenario.query().addresses
