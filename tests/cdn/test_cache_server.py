"""Tests for cache servers, origin fill, and the fetch client."""

import pytest

from repro.cdn import (
    CacheServer,
    ContentCatalog,
    FifoPolicy,
    HttpClient,
    LruPolicy,
)
from repro.dnswire import Name
from repro.errors import QueryTimeout
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.netsim.engine import ProcessFailed


class Scenario:
    """client --1ms-- edge-cache --10ms-- origin."""

    def __init__(self, capacity=10**6, policy=None):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(5))
        self.net.add_host("client", "10.0.0.2")
        self.net.add_host("edge", "10.0.0.80")
        self.net.add_host("origin", "203.0.113.80")
        self.net.add_link("client", "edge", Constant(1))
        self.net.add_link("edge", "origin", Constant(10))
        self.catalog = ContentCatalog()
        self.small = self.catalog.add_object(Name("cdn.test"), "/small.js", 1_000)
        self.big = self.catalog.add_object(Name("cdn.test"), "/big.bin", 600_000)
        self.origin = CacheServer(self.net, self.net.host("origin"),
                                  self.catalog, is_origin=True)
        self.edge = CacheServer(self.net, self.net.host("edge"), self.catalog,
                                capacity_bytes=capacity, policy=policy,
                                parent=self.origin.endpoint)
        self.client = HttpClient(self.net, self.net.host("client"))

    def fetch(self, item, server=None):
        target = server or self.edge
        future = self.sim.spawn(
            self.client.fetch(item.url, target.endpoint.ip))
        return self.sim.run_until_resolved(future)


class TestCacheServer:
    def test_miss_fills_from_origin_then_hits(self):
        scenario = Scenario()
        first = scenario.fetch(scenario.small)
        assert first.status == 200
        assert not first.cache_hit
        assert scenario.edge.stats.misses == 1
        assert scenario.edge.stats.fills == 1
        second = scenario.fetch(scenario.small)
        assert second.cache_hit
        assert second.served_by == "edge"
        assert second.latency_ms < first.latency_ms

    def test_origin_serves_without_storing(self):
        scenario = Scenario()
        result = scenario.fetch(scenario.small, server=scenario.origin)
        assert result.status == 200
        assert result.cache_hit  # origin always "has" the content
        assert scenario.origin.used_bytes == 0

    def test_404_for_unknown_content(self):
        scenario = Scenario()
        future = scenario.sim.spawn(scenario.client.fetch(
            "http://cdn.test/nope.js", scenario.edge.endpoint.ip))
        result = scenario.sim.run_until_resolved(future)
        assert result.status == 404
        assert scenario.edge.stats.not_found == 1

    def test_offline_cache_times_out(self):
        scenario = Scenario()
        scenario.edge.online = False
        scenario.client.timeout = 100
        future = scenario.sim.spawn(scenario.client.fetch(
            scenario.small.url, scenario.edge.endpoint.ip))
        with pytest.raises(ProcessFailed) as excinfo:
            scenario.sim.run_until_resolved(future)
        assert isinstance(excinfo.value.__cause__, QueryTimeout)

    def test_capacity_triggers_eviction(self):
        scenario = Scenario(capacity=601_000)
        scenario.fetch(scenario.small)
        scenario.fetch(scenario.big)  # small (1k) + big (600k) > 601k? no: =601k fits
        extra = scenario.catalog.add_object(Name("cdn.test"), "/extra.js", 5_000)
        scenario.fetch(extra)  # forces eviction of LRU (small)
        assert scenario.edge.stats.evictions >= 1
        assert scenario.edge.used_bytes <= scenario.edge.capacity_bytes

    def test_lru_evicts_oldest_content(self):
        scenario = Scenario(capacity=601_000, policy=LruPolicy())
        scenario.fetch(scenario.small)
        scenario.fetch(scenario.big)
        scenario.fetch(scenario.small)  # refresh small
        extra = scenario.catalog.add_object(Name("cdn.test"), "/x.js", 5_000)
        scenario.fetch(extra)
        assert scenario.edge.contains(scenario.small.url)
        assert not scenario.edge.contains(scenario.big.url)

    def test_fifo_evicts_admission_order(self):
        scenario = Scenario(capacity=601_000, policy=FifoPolicy())
        scenario.fetch(scenario.small)
        scenario.fetch(scenario.big)
        scenario.fetch(scenario.small)  # hit; FIFO ignores it
        extra = scenario.catalog.add_object(Name("cdn.test"), "/x.js", 5_000)
        scenario.fetch(extra)
        assert not scenario.edge.contains(scenario.small.url)

    def test_oversized_object_never_admitted(self):
        scenario = Scenario(capacity=10_000)
        scenario.fetch(scenario.big)
        assert not scenario.edge.contains(scenario.big.url)
        assert scenario.edge.used_bytes == 0

    def test_warm_preloads(self):
        scenario = Scenario()
        scenario.edge.warm([scenario.small])
        result = scenario.fetch(scenario.small)
        assert result.cache_hit
        assert scenario.edge.stats.fills == 0

    def test_transfer_time_scales_with_size(self):
        scenario = Scenario()
        scenario.edge.warm([scenario.small, scenario.big])
        small_result = scenario.fetch(scenario.small)
        big_result = scenario.fetch(scenario.big)
        assert big_result.latency_ms > small_result.latency_ms

    def test_hit_ratio_stat(self):
        scenario = Scenario()
        scenario.fetch(scenario.small)
        scenario.fetch(scenario.small)
        scenario.fetch(scenario.small)
        assert scenario.edge.stats.hit_ratio == pytest.approx(2 / 3)

    def test_invalid_capacity_rejected(self):
        scenario = Scenario()
        with pytest.raises(ValueError):
            CacheServer(scenario.net, scenario.net.add_host("c2", "10.0.0.81"),
                        scenario.catalog, capacity_bytes=0)
