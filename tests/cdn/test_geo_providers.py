"""Tests for geography, GeoIP, provider pools, and the broker."""

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.cdn.broker import CdnBroker
from repro.cdn.geo import GeoIpDatabase, GeoPoint, displace, haversine_km
from repro.cdn.providers import (
    AKAMAI_24,
    CONNECTIVITIES,
    FASTLY_151,
    TABLE1_SITES,
    deployment_for,
)

ATLANTA = GeoPoint(33.749, -84.388)
NYC = GeoPoint(40.713, -74.006)


class TestGeo:
    def test_haversine_known_distance(self):
        # Atlanta <-> New York is ~1200 km.
        assert haversine_km(ATLANTA, NYC) == pytest.approx(1200, rel=0.03)

    def test_haversine_zero(self):
        assert haversine_km(ATLANTA, ATLANTA) == 0

    def test_haversine_symmetric(self):
        assert haversine_km(ATLANTA, NYC) == pytest.approx(
            haversine_km(NYC, ATLANTA))

    def test_displace_distance_roundtrip(self):
        moved = displace(ATLANTA, 100, 0.7)
        assert haversine_km(ATLANTA, moved) == pytest.approx(100, rel=0.01)

    @given(st.floats(min_value=0, max_value=2000),
           st.floats(min_value=0, max_value=6.28))
    def test_displace_property(self, distance, bearing):
        moved = displace(ATLANTA, distance, bearing)
        assert haversine_km(ATLANTA, moved) == pytest.approx(
            distance, rel=0.02, abs=0.5)


class TestGeoIp:
    def test_exact_entry_and_lookup(self):
        db = GeoIpDatabase(random.Random(0))
        db.register("198.51.100.0/24", ATLANTA, error_km=0)
        assert db.lookup("198.51.100.7") == ATLANTA
        assert db.exact_entry("198.51.100.7") == (ATLANTA, 0)

    def test_longest_prefix_wins(self):
        db = GeoIpDatabase(random.Random(0))
        db.register("198.51.0.0/16", NYC, error_km=0)
        db.register("198.51.100.0/24", ATLANTA, error_km=0)
        assert db.lookup("198.51.100.7") == ATLANTA
        assert db.lookup("198.51.5.1") == NYC

    def test_unknown_ip_returns_none(self):
        db = GeoIpDatabase(random.Random(0))
        assert db.lookup("8.8.8.8") is None
        assert db.unknown == 1

    def test_error_radius_bounds_displacement(self):
        db = GeoIpDatabase(random.Random(1))
        db.register("198.51.100.0/24", ATLANTA, error_km=500)
        for _ in range(100):
            believed = db.lookup("198.51.100.9")
            assert haversine_km(ATLANTA, believed) <= 505

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            GeoIpDatabase(random.Random(0)).register("10.0.0.0/8", ATLANTA, error_km=-1)


class TestProviders:
    def test_pool_contains(self):
        assert AKAMAI_24.contains("23.55.124.7")
        assert not AKAMAI_24.contains("23.55.125.7")
        assert FASTLY_151.contains("151.101.34.1")

    def test_address_for_is_stable_and_in_pool(self):
        first = AKAMAI_24.address_for("resolver-1")
        second = AKAMAI_24.address_for("resolver-1")
        other = AKAMAI_24.address_for("resolver-2")
        assert first == second
        assert AKAMAI_24.contains(first)
        assert AKAMAI_24.contains(other)

    def test_table1_has_five_sites_with_paper_domains(self):
        assert len(TABLE1_SITES) == 5
        domains = {d.site: d.domain.to_text() for d in TABLE1_SITES}
        assert domains["Airbnb"] == "a0.muscache.com."
        assert domains["Booking.com"] == "q-cf.bstatic.com."
        assert domains["TripAdvisor"] == "static.tacdn.com."
        assert domains["Agoda"] == "cdn0.agoda.net."
        assert domains["Expedia"] == "a.cdn.intentmedia.net."

    def test_weights_normalised_per_connectivity(self):
        for deployment in TABLE1_SITES:
            for connectivity in CONNECTIVITIES:
                weights = deployment.weights_for(connectivity)
                assert len(weights) == len(deployment.pools)
                assert sum(weights) == pytest.approx(1.0)

    def test_weights_differ_across_connectivities(self):
        # The core Figure 3 observation: same domain, different mixes.
        for deployment in TABLE1_SITES:
            mixes = {tuple(deployment.weights_for(c)) for c in CONNECTIVITIES}
            assert len(mixes) == 3

    def test_deployment_lookup_by_site_and_domain(self):
        assert deployment_for("Airbnb").site == "Airbnb"
        assert deployment_for("a0.muscache.com").site == "Airbnb"
        assert deployment_for("A0.MUSCACHE.COM.").site == "Airbnb"
        with pytest.raises(KeyError):
            deployment_for("nonexistent.example")

    def test_pool_for_ip(self):
        deployment = deployment_for("Agoda")
        assert deployment.pool_for_ip("23.55.124.9") == AKAMAI_24
        assert deployment.pool_for_ip("203.0.113.1") is None

    def test_unknown_connectivity_rejected(self):
        with pytest.raises(ValueError):
            TABLE1_SITES[0].weights_for("satellite")


class TestBroker:
    def test_selection_tracks_weights(self):
        deployment = deployment_for("Agoda")
        broker = CdnBroker(deployment, random.Random(9))
        counts = Counter(broker.select_pool("wired-campus").label
                         for _ in range(2000))
        share = counts[AKAMAI_24.label] / 2000
        assert share == pytest.approx(0.80, abs=0.04)

    def test_distributions_differ_by_connectivity(self):
        deployment = deployment_for("Agoda")
        broker = CdnBroker(deployment, random.Random(9))
        wired = Counter(broker.select_pool("wired-campus").label
                        for _ in range(1000))
        cellular = Counter(broker.select_pool("cellular-mobile").label
                           for _ in range(1000))
        assert wired[AKAMAI_24.label] > 2 * cellular[AKAMAI_24.label]

    def test_resolve_returns_in_pool_address(self):
        deployment = deployment_for("Booking.com")
        broker = CdnBroker(deployment, random.Random(1))
        address = broker.resolve("wifi-home", "resolver-x")
        assert deployment.pool_for_ip(address) is not None
