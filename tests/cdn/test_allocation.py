"""Tests for consistent-hash traffic allocation (repro.cdn.allocation).

Covers the extracted :class:`HashRing` (the geometry the traffic router
has always used) and :class:`ConsistentAllocator`'s bounded-load
guarantees after Huang et al.: no member above
``ceil((1 + epsilon) * assigned / members)``, sticky assignment, and
bounded movement on membership change.
"""

import math

import pytest

from repro.cdn.allocation import ConsistentAllocator, HashRing, hash_point

MEMBERS = [f"cache-{index}" for index in range(5)]
KEYS = [f"10.64.{index // 256}.{index % 256}" for index in range(400)]


class TestHashRing:
    def test_pick_is_deterministic_and_member_valued(self):
        ring = HashRing(MEMBERS, name_of=str)
        other = HashRing(MEMBERS, name_of=str)
        for key in KEYS[:50]:
            picked = ring.pick(key)
            assert picked in MEMBERS
            assert other.pick(key) == picked

    def test_all_members_receive_keys(self):
        ring = HashRing(MEMBERS, name_of=str)
        hit = {ring.pick(key) for key in KEYS}
        assert hit == set(MEMBERS)

    def test_members_in_insertion_order(self):
        assert HashRing(MEMBERS, name_of=str).members() == MEMBERS

    def test_walk_starts_at_pick_and_visits_each_member_once(self):
        ring = HashRing(MEMBERS, name_of=str)
        for key in KEYS[:20]:
            walked = list(ring.walk(key))
            assert walked[0] == ring.pick(key)
            assert sorted(walked) == sorted(MEMBERS)

    def test_predicate_skips_ineligible_members(self):
        ring = HashRing(MEMBERS, name_of=str)
        only = MEMBERS[3]
        for key in KEYS[:20]:
            assert ring.pick(key, lambda member: member == only) == only

    def test_empty_ring_picks_nothing(self):
        ring = HashRing([], name_of=str)
        assert ring.pick("anything") is None
        assert list(ring.walk("anything")) == []

    def test_name_of_defaults_to_name_attribute(self):
        class Named:
            def __init__(self, name):
                self.name = name

        members = [Named("a"), Named("b")]
        by_name = HashRing(members)
        by_str = HashRing(["a", "b"], name_of=str)
        for key in KEYS[:20]:
            assert by_name.pick(key).name == by_str.pick(key)

    def test_hash_point_is_stable(self):
        # The ring coordinate function is part of the on-disk/digest
        # contract between the router and the workload engine; pin it.
        assert hash_point("cache-0#0") == hash_point("cache-0#0")
        assert hash_point("cache-0#0") != hash_point("cache-0#1")


def max_load(allocator):
    return max(allocator.load(member) for member in allocator.members)


class TestBoundedLoads:
    def test_no_member_exceeds_the_bound(self):
        allocator = ConsistentAllocator(MEMBERS, epsilon=0.25)
        for key in KEYS:
            assert allocator.assign(key) in MEMBERS
        bound = math.ceil((1 + allocator.epsilon) * len(KEYS) / len(MEMBERS))
        assert allocator.capacity() == bound
        assert max_load(allocator) <= bound
        assert sum(allocator.load(m) for m in allocator.members) == len(KEYS)

    def test_epsilon_zero_is_perfectly_flat(self):
        allocator = ConsistentAllocator(MEMBERS, epsilon=0.0)
        for key in KEYS[:100]:
            allocator.assign(key)
        loads = [allocator.load(member) for member in allocator.members]
        assert max(loads) - min(loads) <= 1

    def test_assignment_is_sticky(self):
        allocator = ConsistentAllocator(MEMBERS)
        first = {key: allocator.assign(key) for key in KEYS}
        for key in reversed(KEYS):
            assert allocator.assign(key) == first[key]
        assert allocator.assigned_count == len(KEYS)

    def test_release_frees_load(self):
        allocator = ConsistentAllocator(MEMBERS)
        member = allocator.assign("ue-1")
        assert allocator.load(member) == 1
        allocator.release("ue-1")
        assert allocator.load(member) == 0
        assert allocator.assigned_count == 0
        allocator.release("ue-1")  # idempotent

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            ConsistentAllocator(MEMBERS, epsilon=-0.1)

    def test_eligibility_overflow_relaxes_the_bound(self):
        # When every eligible member sits at the bound, the allocator
        # must still serve the key (the paper's overflow-to-next rule)
        # rather than fail it.
        allocator = ConsistentAllocator(MEMBERS, epsilon=0.0)
        only = MEMBERS[2]
        for key in KEYS[:40]:
            assert allocator.assign(key, eligible=lambda m: m == only) == only
        assert allocator.load(only) == 40

    def test_no_eligible_member_returns_none(self):
        allocator = ConsistentAllocator(MEMBERS)
        assert allocator.assign("ue-1", eligible=lambda m: False) is None


class TestMembershipChange:
    def test_removed_members_keys_all_move(self):
        allocator = ConsistentAllocator(MEMBERS)
        before = {key: allocator.assign(key) for key in KEYS}
        removed = MEMBERS[0]
        survivors = MEMBERS[1:]
        moved = allocator.set_members(survivors)
        after = {key: allocator.assign(key) for key in KEYS}
        assert set(after.values()) <= set(survivors)
        actually_moved = sum(1 for key in KEYS if after[key] != before[key])
        assert moved == actually_moved
        assert moved >= sum(1 for member in before.values()
                            if member == removed)

    def test_movement_is_bounded_not_total(self):
        allocator = ConsistentAllocator(MEMBERS)
        for key in KEYS:
            allocator.assign(key)
        moved = allocator.set_members(MEMBERS[1:])
        # Consistency: a single-member change must not reshuffle the
        # whole population (vs ~(m-1)/m of it for modulo hashing).
        assert moved < len(KEYS) // 2
        assert allocator.moves == moved

    def test_bound_holds_after_change(self):
        allocator = ConsistentAllocator(MEMBERS, epsilon=0.25)
        for key in KEYS:
            allocator.assign(key)
        allocator.set_members(MEMBERS[1:])
        bound = math.ceil((1 + allocator.epsilon) * len(KEYS)
                          / (len(MEMBERS) - 1))
        assert max_load(allocator) <= bound
        assert allocator.assigned_count == len(KEYS)

    def test_identical_membership_moves_nothing(self):
        allocator = ConsistentAllocator(MEMBERS)
        for key in KEYS[:100]:
            allocator.assign(key)
        assert allocator.set_members(list(MEMBERS)) == 0
