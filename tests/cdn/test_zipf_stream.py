"""Tests for streaming Zipf sampling (repro.cdn.content.ZipfRankStream).

The rejection sampler replaced the per-item weight and cumulative
tables, so ``ZipfWorkload`` now runs in O(1) memory over catalogs that
are never materialized.  These tests pin what must not change: the
sampled *distribution* (regression against the exact Zipf pmf), the
rank-frequency slope, and determinism of the stream for a fixed seed.
"""

import math
import random
from collections import Counter

import pytest

from repro.cdn.content import ContentCatalog, ZipfRankStream, ZipfWorkload
from repro.dnswire import Name


def zipf_pmf(n, s):
    weights = [rank ** -s for rank in range(1, n + 1)]
    total = sum(weights)
    return [weight / total for weight in weights]


def chi_square(counts, probabilities, draws):
    statistic = 0.0
    for rank0, probability in enumerate(probabilities):
        expected = probability * draws
        observed = counts.get(rank0 + 1, 0)
        statistic += (observed - expected) ** 2 / expected
    return statistic


class TestDistribution:
    @pytest.mark.parametrize("exponent", [0.9, 1.0, 1.3])
    def test_frequencies_match_the_exact_pmf(self, exponent):
        # Regression for the table-based implementation this replaced:
        # the sampled frequency distribution must be the same Zipf(s).
        n, draws = 50, 60_000
        stream = ZipfRankStream(n, random.Random(1234), exponent=exponent)
        counts = Counter(stream.ranks(draws))
        assert set(counts) <= set(range(1, n + 1))
        statistic = chi_square(counts, zipf_pmf(n, exponent), draws)
        # Chi-square with df = n - 1: mean df, sd sqrt(2 df).  Five
        # sigma keeps the test deterministic-seed-stable yet sharp
        # enough to catch a wrong exponent or a biased envelope.
        df = n - 1
        assert statistic < df + 5.0 * math.sqrt(2.0 * df)

    def test_rank_frequency_slope(self):
        # Least-squares slope of log(freq) vs log(rank) over the head
        # ranks must recover -s.
        n, s, draws = 1_000, 0.9, 150_000
        stream = ZipfRankStream(n, random.Random(7), exponent=s)
        counts = Counter(stream.ranks(draws))
        xs, ys = [], []
        for rank in range(1, 21):
            assert counts[rank] > 0
            xs.append(math.log(rank))
            ys.append(math.log(counts[rank]))
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        slope = (sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
                 / sum((x - mean_x) ** 2 for x in xs))
        assert slope == pytest.approx(-s, abs=0.06)

    def test_stream_is_deterministic_for_a_seed(self):
        first = list(ZipfRankStream(10_000, random.Random(42)).ranks(200))
        second = list(ZipfRankStream(10_000, random.Random(42)).ranks(200))
        assert first == second

    def test_ranks_stay_in_range_for_huge_catalogs(self):
        # The whole point of the rejection sampler: a 10^7-item catalog
        # with no 10^7-entry table behind it.
        stream = ZipfRankStream(10_000_000, random.Random(3))
        ranks = list(stream.ranks(2_000))
        assert all(1 <= rank <= 10_000_000 for rank in ranks)
        assert min(ranks) == 1  # the head is hot even at this scale

    def test_single_item_catalog(self):
        stream = ZipfRankStream(1, random.Random(0))
        assert list(stream.ranks(10)) == [1] * 10

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ZipfRankStream(0, random.Random(0))


class TestWorkloadFacade:
    @staticmethod
    def _catalog_items(count):
        catalog = ContentCatalog()
        return [catalog.add_object(Name("cdn.test"), f"/obj{index}", 1000)
                for index in range(count)]

    def test_most_popular_item_is_first(self):
        items = self._catalog_items(20)
        workload = ZipfWorkload(items, random.Random(5), exponent=1.0)
        counts = Counter(item.url for item in workload.requests(8_000))
        assert counts.most_common(1)[0][0] == items[0].url

    def test_workload_delegates_to_the_stream(self):
        items = self._catalog_items(30)
        workload = ZipfWorkload(items, random.Random(99), exponent=0.9)
        direct = ZipfRankStream(30, random.Random(99), exponent=0.9)
        expected = [items[rank - 1] for rank in direct.ranks(500)]
        assert list(workload.requests(500)) == expected

    def test_empty_item_list_rejected(self):
        with pytest.raises(ValueError):
            ZipfWorkload([], random.Random(0))
