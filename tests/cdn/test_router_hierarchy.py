"""Tests for the traffic router (C-DNS) and the tiered CDN."""

import pytest

from repro.cdn import (
    CacheServer,
    CdnTier,
    ContentCatalog,
    CoverageZone,
    HttpClient,
    TieredCdn,
    TrafficRouter,
)
from repro.dnswire import ClientSubnet, Edns, Name, RecordType
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import StubResolver


class RouterScenario:
    """Two edge caches + one mid cache + origin, with per-tier routers."""

    def __init__(self):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(21))
        self.catalog = ContentCatalog()
        self.item = self.catalog.add_object(
            Name("video.demo1.mycdn.ciab.test"), "/seg1.ts", 100_000)
        # Hosts.
        self.net.add_host("client", "10.45.0.2")
        self.net.add_host("edge1", "10.233.1.10")
        self.net.add_host("edge2", "10.233.1.11")
        self.net.add_host("mid1", "172.16.5.10")
        self.net.add_host("origin", "203.0.113.80")
        self.net.add_host("edge-router", "10.233.0.53")
        self.net.add_host("mid-router", "172.16.5.53")
        self.net.add_host("far-router", "203.0.113.53")
        for name in ("edge1", "edge2", "edge-router"):
            self.net.add_link("client", name, Constant(2))
        for name in ("mid1", "mid-router"):
            self.net.add_link("client", name, Constant(10))
            self.net.add_link("edge1", name, Constant(8))
            self.net.add_link("edge2", name, Constant(8))
        self.net.add_link("client", "origin", Constant(40))
        self.net.add_link("mid1", "origin", Constant(30))
        self.net.add_link("client", "far-router", Constant(40))

        self.origin = CacheServer(self.net, self.net.host("origin"),
                                  self.catalog, is_origin=True)
        self.mid = CacheServer(self.net, self.net.host("mid1"), self.catalog,
                               parent=self.origin.endpoint)
        self.edge1 = CacheServer(self.net, self.net.host("edge1"),
                                 self.catalog, parent=self.mid.endpoint)
        self.edge2 = CacheServer(self.net, self.net.host("edge2"),
                                 self.catalog, parent=self.mid.endpoint)

        domain = Name("mycdn.ciab.test")
        edge_zone = CoverageZone("edge", ["10.45.0.0/16"],
                                 [self.edge1, self.edge2])
        self.edge_router = TrafficRouter(
            self.net, self.net.host("edge-router"), domain,
            zones=[edge_zone], ecs_enabled=True)
        mid_zone = CoverageZone("mid", ["10.0.0.0/8", "172.16.0.0/12"],
                                [self.mid])
        self.mid_router = TrafficRouter(
            self.net, self.net.host("mid-router"), domain,
            zones=[mid_zone])
        far_zone = CoverageZone("far", ["0.0.0.0/0"], [])
        self.far_router = TrafficRouter(
            self.net, self.net.host("far-router"), domain,
            zones=[], default_zone=far_zone)
        self.stub = StubResolver(self.net, self.net.host("client"),
                                 self.edge_router.endpoint)

    def query(self, name="video.demo1.mycdn.ciab.test", server=None,
              rtype=RecordType.A, edns=None):
        future = self.sim.spawn(self.stub.query(Name(name), rtype,
                                                server=server, edns=edns))
        return self.sim.run_until_resolved(future)


@pytest.fixture
def scenario():
    return RouterScenario()


class TestTrafficRouter:
    def test_routes_to_edge_cache(self, scenario):
        result = scenario.query()
        assert result.status == "NOERROR"
        assert result.addresses[0] in ("10.233.1.10", "10.233.1.11")
        assert scenario.edge_router.routed == 1

    def test_consistent_hash_is_stable(self, scenario):
        first = scenario.query().addresses[0]
        # Re-query several times: same content name -> same cache.
        for _ in range(5):
            assert scenario.query().addresses[0] == first

    def test_different_content_spreads(self, scenario):
        answers = {scenario.query(f"video{i}.demo1.mycdn.ciab.test").addresses[0]
                   for i in range(20)}
        assert answers == {"10.233.1.10", "10.233.1.11"}

    def test_offline_cache_skipped(self, scenario):
        first = scenario.query().addresses[0]
        offline = (scenario.edge1 if first == "10.233.1.10" else scenario.edge2)
        offline.online = False
        rerouted = scenario.query().addresses[0]
        assert rerouted != first

    def test_out_of_domain_refused(self, scenario):
        result = scenario.query("www.google.com")
        assert result.status == "REFUSED"

    def test_non_a_query_gets_empty_noerror(self, scenario):
        result = scenario.query(rtype=RecordType.TXT)
        assert result.status == "NOERROR"
        assert not result.response.answers

    def test_uncovered_client_with_no_default_servfails(self, scenario):
        # mid_router has zones covering 10/8 and 172.16/12 only.
        scenario.net.add_host("outsider", "203.0.113.200")
        scenario.net.add_link("outsider", "mid-router", Constant(1))
        stub = StubResolver(scenario.net, scenario.net.host("outsider"),
                            scenario.mid_router.endpoint)
        future = scenario.sim.spawn(
            stub.query(Name("video.demo1.mycdn.ciab.test")))
        result = scenario.sim.run_until_resolved(future)
        assert result.status == "SERVFAIL"

    def test_next_tier_referral_when_content_missing(self, scenario):
        # Edge router that does not host this delivery service refers to mid.
        scenario.edge_router.content_available = lambda name: False
        scenario.edge_router.next_tier = scenario.mid_router.endpoint.ip
        result = scenario.query()
        assert result.addresses == [scenario.mid_router.endpoint.ip]
        assert scenario.edge_router.referred_to_next_tier == 1

    def test_empty_zone_refers_to_next_tier(self, scenario):
        scenario.far_router.next_tier = "198.18.0.1"
        scenario.net.add_host("anyone", "198.51.100.77")
        scenario.net.add_link("anyone", "far-router", Constant(1))
        stub = StubResolver(scenario.net, scenario.net.host("anyone"),
                            scenario.far_router.endpoint)
        future = scenario.sim.spawn(
            stub.query(Name("video.demo1.mycdn.ciab.test")))
        result = scenario.sim.run_until_resolved(future)
        assert result.addresses == ["198.18.0.1"]

    def test_ecs_subnet_drives_zone_selection(self, scenario):
        # A query whose ECS places the client outside the edge zone.
        ecs = ClientSubnet("203.0.113.0", 24)
        result = scenario.query(edns=Edns(options=[ecs]))
        # No zone covers 203.0.113/24 and there is no default: SERVFAIL.
        assert result.status == "SERVFAIL"

    def test_ecs_scope_stamped(self, scenario):
        ecs = ClientSubnet("10.45.0.0", 24)
        result = scenario.query(edns=Edns(options=[ecs]))
        assert result.status == "NOERROR"
        response_ecs = result.response.edns.client_subnet
        assert response_ecs is not None
        assert response_ecs.scope_prefix == 16  # matched 10.45.0.0/16 zone

    def test_coverage_zone_longest_prefix(self):
        zone = CoverageZone("z", ["10.0.0.0/8", "10.45.0.0/16"], [])
        matched, prefix = zone.covers("10.45.1.1")
        assert matched and prefix == 16
        matched, prefix = zone.covers("10.1.1.1")
        assert matched and prefix == 8
        matched, _ = zone.covers("192.0.2.1")
        assert not matched


class TestTieredCdn:
    def build_tiers(self, scenario):
        edge_tier = CdnTier("edge", scenario.edge_router,
                            [scenario.edge1, scenario.edge2])
        mid_tier = CdnTier("mid", scenario.mid_router, [scenario.mid])
        far_tier = CdnTier("far", scenario.far_router, [scenario.origin])
        return TieredCdn([edge_tier, mid_tier, far_tier])

    def test_parent_linking(self, scenario):
        cdn = self.build_tiers(scenario)
        assert scenario.edge1.parent == scenario.mid.endpoint
        assert scenario.mid.parent == scenario.origin.endpoint
        assert scenario.edge_router.next_tier == \
            scenario.mid_router.endpoint.ip
        assert cdn.edge.name == "edge"
        assert cdn.origin_tier.name == "far"

    def test_fetch_fills_through_tiers(self, scenario):
        self.build_tiers(scenario)
        cache_ip = scenario.query().addresses[0]
        client = HttpClient(scenario.net, scenario.net.host("client"))
        future = scenario.sim.spawn(
            client.fetch(scenario.item.url, cache_ip))
        result = scenario.sim.run_until_resolved(future)
        assert result.status == 200
        assert not result.cache_hit
        # The object travelled origin -> mid -> edge.
        assert scenario.mid.stats.fills == 1
        assert scenario.mid.contains(scenario.item.url)
        # Second fetch is an edge hit and faster.
        future = scenario.sim.spawn(
            client.fetch(scenario.item.url, cache_ip))
        second = scenario.sim.run_until_resolved(future)
        assert second.cache_hit
        assert second.latency_ms < result.latency_ms

    def test_hit_ratio_per_tier(self, scenario):
        cdn = self.build_tiers(scenario)
        cache_ip = scenario.query().addresses[0]
        client = HttpClient(scenario.net, scenario.net.host("client"))
        for _ in range(4):
            future = scenario.sim.spawn(
                client.fetch(scenario.item.url, cache_ip))
            scenario.sim.run_until_resolved(future)
        assert cdn.edge.hit_ratio() == pytest.approx(3 / 4)

    def test_tier_lookup(self, scenario):
        cdn = self.build_tiers(scenario)
        assert cdn.tier("mid").caches == [scenario.mid]
        with pytest.raises(KeyError):
            cdn.tier("nonexistent")

    def test_empty_tier_list_rejected(self):
        with pytest.raises(ValueError):
            TieredCdn([])
