"""Tests for the content catalog, workloads, and eviction policies."""

import random
from collections import Counter

import pytest

from repro.cdn.content import ContentCatalog, ContentItem, ZipfWorkload
from repro.cdn.policy import FifoPolicy, LfuPolicy, LruPolicy
from repro.dnswire import Name
from repro.errors import ContentNotFound


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = ContentCatalog()
        item = catalog.add_object(Name("cdn.test"), "/a.js", 1000)
        assert catalog.by_url(item.url) is item
        assert item.url == "http://cdn.test/a.js"
        assert item.url in catalog

    def test_unknown_url_raises(self):
        with pytest.raises(ContentNotFound):
            ContentCatalog().by_url("http://cdn.test/missing")

    def test_for_domain(self):
        catalog = ContentCatalog()
        catalog.add_object(Name("a.test"), "/1", 10)
        catalog.add_object(Name("a.test"), "/2", 10)
        catalog.add_object(Name("b.test"), "/1", 10)
        assert len(catalog.for_domain(Name("a.test"))) == 2
        assert len(catalog) == 3
        assert set(catalog.domains()) == {Name("a.test"), Name("b.test")}

    def test_invalid_items_rejected(self):
        with pytest.raises(ValueError):
            ContentItem(Name("a.test"), "/x", 0)
        with pytest.raises(ValueError):
            ContentItem(Name("a.test"), "no-slash", 10)

    def test_populate_synthetic(self):
        catalog = ContentCatalog()
        items = catalog.populate_synthetic(Name("cdn.test"), 50,
                                           random.Random(1),
                                           min_bytes=100, max_bytes=10_000)
        assert len(items) == 50
        assert all(100 <= item.size_bytes <= 10_000 for item in items)
        assert len({item.url for item in items}) == 50


class TestZipf:
    def test_skew_favours_low_ranks(self):
        catalog = ContentCatalog()
        items = catalog.populate_synthetic(Name("cdn.test"), 100,
                                           random.Random(2))
        workload = ZipfWorkload(items, random.Random(3), exponent=1.0)
        counts = Counter(item.content_id
                         for item in workload.requests(5000))
        top = counts[items[0].content_id]
        mid = counts.get(items[50].content_id, 0)
        assert top > 10 * max(mid, 1) / 2  # rank 1 dominates rank 51
        assert top > counts.get(items[10].content_id, 0)

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            ZipfWorkload([], random.Random(0))

    def test_bad_exponent_rejected(self):
        catalog = ContentCatalog()
        items = catalog.populate_synthetic(Name("x.test"), 3, random.Random(0))
        with pytest.raises(ValueError):
            ZipfWorkload(items, random.Random(0), exponent=0)

    def test_deterministic_given_seed(self):
        catalog = ContentCatalog()
        items = catalog.populate_synthetic(Name("x.test"), 10, random.Random(0))
        first = [item.url for item in
                 ZipfWorkload(items, random.Random(7)).requests(20)]
        second = [item.url for item in
                  ZipfWorkload(items, random.Random(7)).requests(20)]
        assert first == second


class TestPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LruPolicy()
        for cid in ("a", "b", "c"):
            policy.on_admit(cid)
        policy.on_hit("a")
        assert policy.choose_victim() == "b"

    def test_lru_eviction_removes_tracking(self):
        policy = LruPolicy()
        policy.on_admit("a")
        policy.on_evict("a")
        assert policy.choose_victim() is None

    def test_lfu_evicts_least_frequent(self):
        policy = LfuPolicy()
        for cid in ("a", "b", "c"):
            policy.on_admit(cid)
        policy.on_hit("a")
        policy.on_hit("a")
        policy.on_hit("b")
        assert policy.choose_victim() == "c"

    def test_lfu_tie_broken_by_age(self):
        policy = LfuPolicy()
        policy.on_admit("old")
        policy.on_admit("new")
        assert policy.choose_victim() == "old"

    def test_fifo_ignores_hits(self):
        policy = FifoPolicy()
        policy.on_admit("a")
        policy.on_admit("b")
        policy.on_hit("a")
        assert policy.choose_victim() == "a"

    def test_empty_policies_return_none(self):
        assert LruPolicy().choose_victim() is None
        assert LfuPolicy().choose_victim() is None
        assert FifoPolicy().choose_victim() is None
