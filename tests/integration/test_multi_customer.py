"""Integration: several CDN customers sharing one MEC site and cluster IP.

The paper's P2/§5 argument: "the proposed design can help promote reuse
of public IPs by assigning the same public IP for CDN domains of the many
CDN customers" — mobile clients interact with every CDN through the one
cluster IP bound to the MEC L-DNS.
"""

import pytest

from repro.cdn import CacheServer, ContentCatalog, CoverageZone, TrafficRouter
from repro.core import MecCdnSite
from repro.dnswire import Name
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import StubResolver


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(83))
    nodes = [net.add_host(f"node-{i}", f"10.40.2.{10 + i}") for i in range(3)]
    net.add_link("node-0", "node-1", Constant(0.2))
    net.add_link("node-1", "node-2", Constant(0.2))
    net.add_host("ue", "10.45.0.2")
    net.add_link("ue", "node-0", Constant(5))
    catalog = ContentCatalog()
    catalog.add_object(Name("video.demo1.mycdn.ciab.test"), "/a.ts", 1000)
    site = MecCdnSite(net, "edge1", nodes, catalog)
    return sim, net, site


def onboard_second_customer(sim, net, site):
    """A second CDN brings its own router + cache onto the site."""
    catalog2 = ContentCatalog()
    catalog2.add_object(Name("img.othercdn.test"), "/b.png", 1000)
    cache_host = net.add_host("cdn2-cache", "10.40.5.10")
    net.add_link("cdn2-cache", "node-0", Constant(0.3))
    cache = CacheServer(net, cache_host, catalog2)
    cache.warm(catalog2.under_domain(Name("othercdn.test")))
    router_host = net.add_host("cdn2-router", "10.40.5.53")
    net.add_link("cdn2-router", "node-0", Constant(0.3))
    router = TrafficRouter(
        net, router_host, Name("othercdn.test"),
        zones=[CoverageZone("edge", ["10.0.0.0/8"], [cache])])
    site.publish_domain(Name("othercdn.test"), router.endpoint)
    return cache, router


class TestMultiCustomer:
    def query(self, sim, net, site, qname):
        stub = StubResolver(net, net.host("ue"), site.ldns_endpoint)
        return sim.run_until_resolved(sim.spawn(stub.query(Name(qname))))

    def test_both_customers_resolve_through_one_cluster_ip(self, world):
        sim, net, site = world
        cache2, router2 = onboard_second_customer(sim, net, site)
        first = self.query(sim, net, site, "video.demo1.mycdn.ciab.test")
        second = self.query(sim, net, site, "img.othercdn.test")
        assert first.status == "NOERROR"
        assert second.status == "NOERROR"
        assert second.addresses == [cache2.endpoint.ip]
        # Both went to the same MEC L-DNS cluster IP.
        assert first.server == second.server == site.ldns_endpoint

    def test_second_domain_blocked_until_published(self, world):
        sim, net, site = world
        result = self.query(sim, net, site, "img.othercdn.test")
        assert result.status == "REFUSED"  # not in the public namespace yet

    def test_unpublish_revokes_access(self, world):
        sim, net, site = world
        onboard_second_customer(sim, net, site)
        assert self.query(sim, net, site,
                          "img.othercdn.test").status == "NOERROR"
        site.split_namespace.unregister_public(Name("othercdn.test"))
        assert self.query(sim, net, site,
                          "img.othercdn.test").status == "REFUSED"

    def test_customers_isolated_by_stub_domain(self, world):
        sim, net, site = world
        cache2, router2 = onboard_second_customer(sim, net, site)
        # Customer 2's router never sees customer 1's queries.
        self.query(sim, net, site, "video.demo1.mycdn.ciab.test")
        assert router2.routed == 0
        self.query(sim, net, site, "img.othercdn.test")
        assert router2.routed == 1
