"""Metro-scale integration: edge site + mid tier + cloud, with referrals.

The full P2 story in one topology: content present at the edge resolves
and fetches locally; content only at the mid tier causes the edge C-DNS
to answer with the mid-tier C-DNS (marked as a referral), which a
tier-aware client follows; the latency gap between the two paths is the
paper's motivation in miniature.
"""

import pytest

from repro.cdn import (
    CacheServer,
    ContentCatalog,
    CoverageZone,
    HttpClient,
    TrafficRouter,
)
from repro.core import EdgeAwareClient, MecCdnSite
from repro.core.deployments import TESTBED_LTE
from repro.dnswire import Name
from repro.errors import ResolutionError
from repro.mobile import EvolvedPacketCore, UserEquipment
from repro.netsim import Constant, Network, RandomStreams, Simulator

CDN_DOMAIN = Name("mycdn.ciab.test")
EDGE_CONTENT = Name("video.demo1.mycdn.ciab.test")
LONGTAIL_CONTENT = Name("longtail.archive.mycdn.ciab.test")


class MetroWorld:
    """One edge MEC site, a mid tier at the core, a cloud origin."""

    def __init__(self, seed=73):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.epc = EvolvedPacketCore(
            self.net, "lte", TESTBED_LTE,
            sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
            public_ips=["198.51.100.1"])
        cell = self.epc.add_base_station("enb-1", "10.40.1.1")
        self.ue = UserEquipment(self.net, "ue-1", "10.45.0.2")
        cell.attach(self.ue)

        # Shared catalog: one popular object placed at the edge, one
        # long-tail object that lives only upstream.
        self.catalog = ContentCatalog()
        self.edge_item = self.catalog.add_object(EDGE_CONTENT, "/seg1.ts",
                                                 200_000)
        self.longtail_item = self.catalog.add_object(
            LONGTAIL_CONTENT, "/old.mp4", 300_000)

        # Cloud origin + far C-DNS.
        self.net.add_host("origin", "203.0.113.80")
        self.net.add_link(self.epc.pgw.name, "origin", Constant(25))
        self.origin = CacheServer(self.net, self.net.host("origin"),
                                  self.catalog, is_origin=True)

        # Mid tier beside the core: cache + C-DNS.
        self.net.add_host("mid-cache", "172.20.0.10")
        self.net.add_host("mid-cdns", "172.20.0.53")
        for name in ("mid-cache", "mid-cdns"):
            self.net.add_link(self.epc.pgw.name, name, Constant(8))
        self.net.add_link("mid-cache", "origin", Constant(20))
        self.mid_cache = CacheServer(self.net, self.net.host("mid-cache"),
                                     self.catalog,
                                     parent=self.origin.endpoint)
        self.mid_cache.warm([self.longtail_item])
        self.mid_cdns = TrafficRouter(
            self.net, self.net.host("mid-cdns"), CDN_DOMAIN,
            zones=[CoverageZone("core", ["0.0.0.0/0"], [self.mid_cache])])

        # The edge MEC site: serves only the popular delivery service.
        nodes = []
        for index in range(2):
            node = self.net.add_host(f"mec-node-{index}",
                                     f"10.40.2.{10 + index}")
            self.net.add_link(node.name, self.epc.pgw.name, Constant(0.25))
            nodes.append(node)
        self.net.add_link(nodes[0].name, nodes[1].name, Constant(0.2))
        self.site = MecCdnSite(
            self.net, "edge1", nodes, self.catalog,
            cdn_domain=CDN_DOMAIN,
            client_networks=["10.45.0.0/16", "10.40.0.0/16",
                             "10.233.64.0/18"],
            next_tier_cdns=self.mid_cdns.endpoint.ip)
        # Edge policy: only the popular service is edge-hosted.
        self.site.cdns.content_available = \
            lambda qname: qname.is_subdomain_of(Name("demo1.mycdn.ciab.test"))
        self.client = EdgeAwareClient(self.net, self.ue.host,
                                      self.site.ldns_endpoint)

    def resolve(self, name):
        return self.sim.run_until_resolved(
            self.sim.spawn(self.client.resolve(name)))

    def fetch(self, url, address):
        http = HttpClient(self.net, self.ue.host)
        return self.sim.run_until_resolved(
            self.sim.spawn(http.fetch(url, address)))


@pytest.fixture
def metro():
    return MetroWorld()


class TestEdgePath:
    def test_edge_content_resolves_locally(self, metro):
        result = metro.resolve(EDGE_CONTENT)
        assert result.resolved_at_edge
        assert result.addresses[0] in [cache.endpoint.ip
                                       for cache in metro.site.caches]
        assert len(result.servers_queried) == 1
        assert result.latency_ms < 20

    def test_edge_fetch_is_a_local_hit(self, metro):
        result = metro.resolve(EDGE_CONTENT)
        fetch = metro.fetch(metro.edge_item.url, result.addresses[0])
        assert fetch.status == 200
        assert fetch.cache_hit


class TestReferralPath:
    def test_longtail_follows_referral_to_mid_tier(self, metro):
        result = metro.resolve(LONGTAIL_CONTENT)
        assert not result.resolved_at_edge
        assert result.referrals_followed == 1
        assert result.addresses == [metro.mid_cache.endpoint.ip]
        # First the L-DNS (edge), then the mid-tier C-DNS directly.
        assert result.servers_queried[0] == metro.site.ldns_endpoint
        assert result.servers_queried[1] == metro.mid_cdns.endpoint

    def test_longtail_fetch_served_by_mid_cache(self, metro):
        result = metro.resolve(LONGTAIL_CONTENT)
        fetch = metro.fetch(metro.longtail_item.url, result.addresses[0])
        assert fetch.status == 200
        assert fetch.served_by == "mid-cache"

    def test_referral_costs_latency(self, metro):
        edge = metro.resolve(EDGE_CONTENT)
        longtail = metro.resolve(LONGTAIL_CONTENT)
        # The extra C-DNS round trip through the core is visible.
        assert longtail.latency_ms > edge.latency_ms + 10

    def test_edge_router_counted_the_referral(self, metro):
        metro.resolve(LONGTAIL_CONTENT)
        assert metro.site.cdns.referred_to_next_tier == 1
        assert metro.mid_cdns.routed == 1

    def test_plain_client_still_gets_an_address(self, metro):
        # A legacy stub ignores the marker: it receives the mid C-DNS
        # address as the answer (degraded, not broken).
        metro.ue.switch_dns(metro.site.ldns_endpoint)
        stub = metro.ue.stub()
        result = metro.sim.run_until_resolved(
            metro.sim.spawn(stub.query(LONGTAIL_CONTENT)))
        assert result.addresses == [metro.mid_cdns.endpoint.ip]


class TestReferralLoopGuard:
    def test_referral_loop_detected(self, metro):
        # Misconfigure the mid tier to refer everything back to itself.
        metro.mid_cdns.content_available = lambda qname: False
        metro.mid_cdns.next_tier = metro.mid_cdns.endpoint.ip
        from repro.netsim.engine import ProcessFailed
        with pytest.raises(ProcessFailed) as excinfo:
            metro.resolve(LONGTAIL_CONTENT)
        assert isinstance(excinfo.value.__cause__, ResolutionError)
