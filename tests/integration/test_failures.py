"""Failure injection: the MEC-CDN under component loss and lossy links.

The paper claims best-effort behaviour ("end users will observe only a
degradation but not unavailability"); these tests kill pods, cut caches,
and drop radio frames mid-run and assert service continues.
"""


from repro.cdn import ContentCatalog, HttpClient
from repro.core import FallbackClient, MecCdnSite
from repro.dnswire import Name
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import StubResolver


class SiteUnderTest:
    def __init__(self, seed=51, radio_loss=0.0):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        nodes = [self.net.add_host(f"node-{i}", f"10.40.2.{10 + i}")
                 for i in range(2)]
        self.net.add_link("node-0", "node-1", Constant(0.2))
        self.net.add_host("ue", "10.45.0.2")
        self.net.add_link("ue", "node-0", Constant(5), loss=radio_loss)
        self.net.add_host("provider", "203.0.113.10")
        self.net.add_link("node-0", "provider", Constant(30))
        self.net.add_link("ue", "provider", Constant(35))
        self.catalog = ContentCatalog()
        self.item = self.catalog.add_object(
            Name("video.demo1.mycdn.ciab.test"), "/seg1.ts", 100_000)
        self.site = MecCdnSite(self.net, "edge1", nodes, self.catalog,
                               upstream_ldns=Endpoint("203.0.113.10", 53))

    def query(self, timeout=3000, retries=2):
        stub = StubResolver(self.net, self.net.host("ue"),
                            self.site.ldns_endpoint, timeout=timeout,
                            retries=retries)
        future = self.sim.spawn(
            stub.query(Name("video.demo1.mycdn.ciab.test")))
        return self.sim.run_until_resolved(future)

    def fetch(self, cache_ip):
        client = HttpClient(self.net, self.net.host("ue"))
        future = self.sim.spawn(client.fetch(self.item.url, cache_ip))
        return self.sim.run_until_resolved(future)


class TestCacheFailure:
    def test_router_skips_dead_cache(self):
        scenario = SiteUnderTest()
        first_ip = scenario.query().addresses[0]
        victim = next(cache for cache in scenario.site.caches
                      if cache.endpoint.ip == first_ip)
        victim.online = False
        rerouted = scenario.query().addresses[0]
        assert rerouted != first_ip
        result = scenario.fetch(rerouted)
        assert result.status == 200

    def test_all_caches_dead_is_servfail_not_hang(self):
        scenario = SiteUnderTest()
        for cache in scenario.site.caches:
            cache.online = False
        result = scenario.query()
        assert result.status == "SERVFAIL"

    def test_dead_cache_recovers(self):
        scenario = SiteUnderTest()
        first_ip = scenario.query().addresses[0]
        victim = next(cache for cache in scenario.site.caches
                      if cache.endpoint.ip == first_ip)
        victim.online = False
        scenario.query()
        victim.online = True
        # Consistent hashing sends the content back to its home cache.
        assert scenario.query().addresses[0] == first_ip


class TestPodFailure:
    def test_cdns_pod_killed_and_replaced(self):
        scenario = SiteUnderTest()
        site = scenario.site
        baseline = scenario.query()
        assert baseline.status == "NOERROR"
        old_pod = site.cdns_pod
        site.orchestrator.deploy_pod(site.cdns_service,
                                     starter=site._start_cdns)
        site.orchestrator.kill_pod(old_pod)
        old_pod.app.sock.close()
        after = scenario.query()
        assert after.status == "NOERROR"
        assert after.addresses[0] in [c.endpoint.ip for c in site.caches]

    def test_ldns_pod_killed_then_fallback_client_survives(self):
        scenario = SiteUnderTest()
        site = scenario.site
        # Kill the CoreDNS pod without a replacement: the MEC DNS is gone.
        site.orchestrator.kill_pod(site.ldns_pod)
        site.ldns.sock.close()
        client = FallbackClient(
            scenario.net, scenario.net.host("ue"),
            mec_dns=site.ldns_endpoint,
            provider_ldns=Endpoint("203.0.113.10", 53),
            mec_timeout=50)
        # The provider cannot answer the MEC-CDN domain (it is not
        # authoritative for it) — but a generic name still resolves, so
        # the user keeps DNS service, degraded, as the paper promises.
        from repro.dnswire import RecordType, ResourceRecord, Zone
        from repro.dnswire.rdata import A, NS, SOA
        zone = Zone(Name("example.com"))
        zone.add(ResourceRecord(Name("example.com"), RecordType.SOA, 300,
                                SOA(Name("ns.example.com"),
                                    Name("a.example.com"), 1, 2, 3, 4, 60)))
        zone.add(ResourceRecord(Name("example.com"), RecordType.NS, 300,
                                NS(Name("ns.example.com"))))
        zone.add(ResourceRecord(Name("www.example.com"), RecordType.A, 300,
                                A("198.18.0.9")))
        from repro.resolver import AuthoritativeServer
        AuthoritativeServer(scenario.net, scenario.net.host("provider"),
                            [zone])
        future = scenario.sim.spawn(
            client.timeout_fallback(Name("www.example.com")))
        result = scenario.sim.run_until_resolved(future)
        assert result.addresses == ["198.18.0.9"]
        assert result.used_fallback


class TestLossyRadio:
    def test_stub_retries_through_loss(self):
        scenario = SiteUnderTest(seed=52, radio_loss=0.25)
        successes = 0
        for _ in range(10):
            result = scenario.query(timeout=200, retries=4)
            if result.status == "NOERROR":
                successes += 1
        assert successes == 10  # retries absorb 25% loss

    def test_loss_costs_latency_not_availability(self):
        clean = SiteUnderTest(seed=53, radio_loss=0.0)
        lossy = SiteUnderTest(seed=53, radio_loss=0.35)
        clean_times = [clean.query(timeout=100, retries=6).query_time_ms
                       for _ in range(8)]
        lossy_times = [lossy.query(timeout=100, retries=6).query_time_ms
                       for _ in range(8)]
        assert max(lossy_times) > max(clean_times)


class TestFillPathFailure:
    def test_unwarmed_cache_with_dead_parent_returns_error(self):
        scenario = SiteUnderTest()
        cache = scenario.site.caches[0]
        # Cold cache pointing at a black-hole parent.
        cache._stored.clear()
        cache._used_bytes = 0
        cache.parent = Endpoint("10.99.99.99", 80)
        from repro.cdn.cache_server import FILL_TIMEOUT_MS
        client = HttpClient(scenario.net, scenario.net.host("ue"),
                            timeout=FILL_TIMEOUT_MS * 2)
        future = scenario.sim.spawn(
            client.fetch(scenario.item.url, cache.endpoint.ip))
        result = scenario.sim.run_until_resolved(future)
        assert result.status == 504  # upstream fill timed out
