"""Smoke tests: every example script runs to completion.

Examples are executable documentation; this keeps them from rotting.
Each runs in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_all_scripts():
    assert {"quickstart.py", "arvr_latency_budget.py",
            "mobility_handoff.py", "dos_fallback.py",
            "public_cdn_measurement.py", "figure1_walkthrough.py",
            "cache_policy_study.py"} <= set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # Slim the heavyweight measurement example so the smoke test stays fast.
    if script == "public_cdn_measurement.py":
        import repro.experiments.figure2 as figure2
        import repro.experiments.figure3 as figure3
        real_run2, real_run3 = figure2.run, figure3.run
        monkeypatch.setattr(
            figure2, "run",
            lambda trials=25, seed=1: real_run2(trials=12, seed=seed))
        monkeypatch.setattr(
            figure3, "run",
            lambda trials=40, seed=1: real_run3(trials=20, seed=seed))
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates what it did
    assert "Traceback" not in out
