"""Unit tests for the dynamic control plane (``repro.control``).

Registry versioning, NOTIFY/IXFR propagation over a real testbed,
router-view application, the staleness monitor's accounting, and the
determinism of the whole assembly under faults.
"""

import pytest

from repro.control import (ChurnDriver, ChurnEvent, ControlPlane,
                           StalenessMonitor, ZoneRegistry,
                           default_schedule)
from repro.control.churn import ROLLOUT, SCALE
from repro.core.deployments import build_testbed
from repro.faults import FaultPlan, inject
from repro.netsim import Network, RandomStreams, Simulator


def build_plane(seed=7, journal_depth=16):
    testbed = build_testbed("mec-ldns-mec-cdns", seed=seed)
    plane = ControlPlane(testbed, journal_depth=journal_depth)
    return testbed, plane


class TestZoneRegistry:
    def make_registry(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(5))
        from repro.dnswire import Name
        registry = ZoneRegistry(net, Name("mycdn.ciab.test"),
                                ["10.233.64.1", "10.233.64.2"])
        return sim, registry

    def test_initial_version_is_serial_one(self):
        _, registry = self.make_registry()
        assert registry.serial == 1
        assert registry.addresses == ("10.233.64.1", "10.233.64.2")
        assert registry.updates == []
        assert ZoneRegistry.addresses_in(
            registry.zone, registry.owner) == registry.addresses

    def test_update_bumps_serial_and_diffs(self):
        sim, registry = self.make_registry()
        sim.run(until=250.0)
        update = registry.update(["10.233.64.2", "10.233.64.3"])
        assert update is not None
        assert update.serial == registry.serial == 2
        assert update.time == 250.0
        assert update.added == ("10.233.64.3",)
        assert update.removed == ("10.233.64.1",)
        assert registry.journal.deltas_since(registry.origin, 1)

    def test_noop_update_publishes_nothing(self):
        _, registry = self.make_registry()
        seen = []
        registry.subscribe(lambda update, zone: seen.append(update))
        assert registry.update(["10.233.64.2", "10.233.64.1"]) is None
        assert registry.serial == 1 and seen == []

    def test_subscribers_fire_synchronously_with_the_new_zone(self):
        _, registry = self.make_registry()
        seen = []
        registry.subscribe(lambda update, zone: seen.append(
            (update.serial, ZoneRegistry.addresses_in(zone,
                                                      registry.owner))))
        registry.update(["10.233.64.9"])
        assert seen == [(2, ("10.233.64.9",))]


class TestPropagation:
    def test_clean_update_reaches_the_router_quickly(self):
        testbed, plane = build_plane()
        driver = plane.add_churn((ChurnEvent(1000.0, SCALE, 3),))
        testbed.sim.run(until=3000.0)
        record = plane.coordinator.records[2]
        assert record.applied_at is not None
        assert record.delay_ms < 500.0
        assert not plane.coordinator.in_flight()
        assert plane.router_applies == 1
        # The router's edge zone now routes over the propagated set.
        ring_caches = {cache.endpoint.ip
                       for cache in plane.site.cdns.zones[0].caches}
        assert ring_caches == set(driver.live)

    def test_router_routes_on_propagated_view_not_ground_truth(self):
        testbed, plane = build_plane()
        plane.add_churn((ChurnEvent(1000.0, SCALE, 3),))
        # Stop just after the churn event but before NOTIFY lands.
        testbed.sim.run(until=1010.0)
        assert plane.coordinator.in_flight()
        assert len(set(plane.driver.live)) == 3  # ground truth moved on
        # ... but the routing ring is still the one built pre-churn: no
        # apply has happened, so the router has not been rebuilt.
        assert plane.site.cdns.zone_updates == 0
        zone_name = f"{plane.site.name}-edge"
        ring_caches = {cache.endpoint.ip for cache
                       in plane.site.cdns._rings[zone_name].members()}
        assert ring_caches != set(plane.driver.live)

    def test_partition_delays_apply_until_heal(self):
        testbed, plane = build_plane(journal_depth=1)
        plane.add_churn((ChurnEvent(1000.0, SCALE, 3),
                         ChurnEvent(1400.0, ROLLOUT)))
        group = [plane.secondary_host_name]
        for node in testbed.mec_site.orchestrator.nodes:
            group.append(node.host.name)
            group.extend(pod.host.name for pod in node.pods)
        plan = FaultPlan().partition(sorted(group), 900.0, 4000.0)
        inject(testbed.network, plan)
        testbed.sim.run(until=10000.0)
        records = plane.coordinator.records
        assert all(r.applied_at is not None for r in records.values())
        assert max(r.delay_ms for r in records.values()) > 2000.0
        # Two updates through a depth-1 journal: recovery is a full AXFR.
        assert plane.primary.ixfr_axfr_fallbacks >= 1


class TestChurnDriver:
    def test_scale_and_rollout_update_live_set(self):
        testbed, plane = build_plane()
        driver = plane.add_churn(default_schedule())
        before = set(driver.live)
        testbed.sim.run(until=7000.0)
        assert driver.events_applied == 3
        assert len(driver.live) == 2          # final scale-down target
        assert not (set(driver.live) & before)  # rollout replaced all
        assert plane.registry.serial == 4     # one bump per event
        assert len(driver.timeline) == 3

    def test_rolled_pods_stay_online(self):
        testbed, plane = build_plane()
        driver = plane.add_churn((ChurnEvent(500.0, ROLLOUT),))
        originals = list(plane.site.caches[:2])
        testbed.sim.run(until=1000.0)
        # The rolled caches are deregistered but never crashed: only the
        # control plane can tell clients to stop using them.
        for cache in originals:
            assert cache.online
            assert cache.endpoint.ip not in driver.live

    def test_second_schedule_rejected(self):
        _, plane = build_plane()
        plane.add_churn(default_schedule())
        with pytest.raises(ValueError):
            plane.add_churn(default_schedule())


class TestStalenessMonitor:
    def make_monitor(self, live, in_window=False):
        sim = Simulator()
        net = Network(sim, RandomStreams(3))
        monitor = StalenessMonitor(net, live=lambda: live,
                                   in_window=lambda: in_window)
        return sim, monitor

    def test_mislocalization_against_live_set(self):
        _, monitor = self.make_monitor(["10.0.0.1"])
        assert not monitor.note_answer(10.0, ["10.0.0.1"])
        assert monitor.note_answer(20.0, ["10.0.0.9"])
        assert not monitor.note_answer(30.0, [])  # empty never mislocates
        assert monitor.lookups == 3
        assert monitor.answered == 2
        assert monitor.mislocalization_rate == 0.5

    def test_staleness_window_tracks_last_stale_answer(self):
        from repro.control.registry import ZoneUpdate
        _, monitor = self.make_monitor(["10.0.0.2"])
        monitor.note_update(ZoneUpdate(100.0, 2, ("10.0.0.2",),
                                       ("10.0.0.2",), ("10.0.0.1",)))
        monitor.note_answer(150.0, ["10.0.0.1"])   # stale: removed addr
        monitor.note_answer(400.0, ["10.0.0.1"])   # still stale, later
        monitor.note_answer(900.0, ["10.0.0.2"])   # fresh
        assert monitor.windows_ms() == [(2, 300.0)]
        assert monitor.max_staleness_ms == 300.0

    def test_in_window_accounting(self):
        _, monitor = self.make_monitor(["10.0.0.1"], in_window=True)
        monitor.note_answer(10.0, ["10.0.0.9"])
        assert monitor.lookups_in_window == 1
        assert monitor.mislocalized_in_window == 1
        assert monitor.window_mislocalization_rate == 1.0


class TestDeterminism:
    def run_once(self, seed=11):
        testbed, plane = build_plane(seed=seed, journal_depth=1)
        plane.add_churn(default_schedule())
        plan = FaultPlan().brownout_host("cdn-origin", 800.0, 1200.0,
                                         5000.0)
        injector = inject(testbed.network, plan)
        testbed.sim.run(until=12000.0)
        return injector.timeline + plane.log()

    def test_same_seed_replays_byte_identical_logs(self):
        assert self.run_once(seed=11) == self.run_once(seed=11)

    def test_control_plane_requires_a_mec_site(self):
        testbed = build_testbed("lan-ldns", seed=3)
        with pytest.raises(ValueError):
            ControlPlane(testbed._replace(mec_site=None))
