"""Tests for the streaming latency histogram (repro.measure.histogram).

The population workload engine's aggregates ride on this class: exact
count/sum/min/max, quantile error bounded by the bin width, and merges
that reproduce a single-pass run — the properties the serial-vs-sharded
digest equality of the ``population`` artifact rests on.
"""

import math
import pickle
import random

import pytest

from repro.measure.histogram import (BINS_PER_DECADE, HistogramSummary,
                                     LatencyHistogram)

#: Half-bin relative quantile error bound: one bin spans a factor of
#: 10^(1/32) ~ 7.5%, and quantile() answers the geometric midpoint.
BIN_RATIO = 10.0 ** (1.0 / BINS_PER_DECADE)


class TestExactFields:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert len(hist) == 0
        assert hist.mean == 0.0
        assert hist.summary() == HistogramSummary(
            0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_count_sum_min_max_are_exact(self):
        hist = LatencyHistogram()
        values = [0.07, 1.5, 1.5, 42.0, 999.25]
        for value in values:
            hist.add(value)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values), abs=1e-12)
        assert hist.minimum == min(values)
        assert hist.maximum == max(values)
        assert hist.mean == pytest.approx(sum(values) / len(values))

    def test_extreme_values_clamp_to_edge_bins(self):
        hist = LatencyHistogram()
        hist.add(1e-9)       # below the grid -> bin 0
        hist.add(1e12)       # above the grid -> last bin
        assert hist.count == 2
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1
        # The exact extremes survive regardless of bin clamping.
        assert hist.minimum == 1e-9
        assert hist.maximum == 1e12


class TestQuantiles:
    def test_quantile_error_is_bounded_by_bin_width(self):
        rng = random.Random(7)
        hist = LatencyHistogram()
        samples = sorted(rng.lognormvariate(3.0, 0.8) for _ in range(20_000))
        for value in samples:
            hist.add(value)
        for q in (0.5, 0.9, 0.99):
            exact = samples[min(len(samples) - 1,
                                int(q * len(samples)))]
            approx = hist.quantile(q)
            assert approx / exact == pytest.approx(1.0, abs=BIN_RATIO - 1.0)

    def test_extreme_quantiles_are_exact(self):
        hist = LatencyHistogram()
        for value in (3.0, 5.0, 8.0):
            hist.add(value)
        assert hist.quantile(0.0) == 3.0
        assert hist.quantile(1.0) == 8.0

    def test_quantiles_clamp_into_min_max(self):
        hist = LatencyHistogram()
        hist.add(5.0)
        for q in (0.1, 0.5, 0.999):
            assert hist.quantile(q) == 5.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_summary_is_monotone(self):
        rng = random.Random(11)
        hist = LatencyHistogram()
        for _ in range(5_000):
            hist.add(rng.expovariate(1 / 20.0))
        summary = hist.summary()
        assert (summary.minimum <= summary.p50 <= summary.p90
                <= summary.p99 <= summary.p999 <= summary.maximum)


class TestMerge:
    def test_merge_equals_single_pass(self):
        rng = random.Random(3)
        values = [rng.lognormvariate(2.0, 1.0) for _ in range(4_000)]
        single = LatencyHistogram()
        for value in values:
            single.add(value)
        parts = [LatencyHistogram() for _ in range(4)]
        for index, value in enumerate(values):
            parts[index % 4].add(value)
        merged = LatencyHistogram()
        for part in parts:
            merged.merge(part)
        assert merged.counts == single.counts
        assert merged.count == single.count
        assert merged.minimum == single.minimum
        assert merged.maximum == single.maximum
        # The sum is exact per histogram but float addition order
        # differs between the two routes; allow rounding noise only.
        assert merged.total == pytest.approx(single.total, rel=1e-12)

    def test_merge_empty_is_identity(self):
        hist = LatencyHistogram()
        hist.add(9.0)
        before = hist.to_dict()
        hist.merge(LatencyHistogram())
        assert hist.to_dict() == before

    def test_merge_rejects_mismatched_binning(self):
        narrow = LatencyHistogram()
        narrow.counts = narrow.counts[:-1]
        with pytest.raises(ValueError):
            LatencyHistogram().merge(narrow)


class TestPickling:
    def test_round_trip_preserves_state(self):
        hist = LatencyHistogram()
        for value in (0.2, 7.0, 7.0, 130.0):
            hist.add(value)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.minimum == hist.minimum
        assert clone.maximum == hist.maximum
        # The clone keeps ingesting after the round trip.
        clone.add(1.0)
        assert clone.count == hist.count + 1

    def test_empty_round_trip(self):
        clone = pickle.loads(pickle.dumps(LatencyHistogram()))
        assert clone.count == 0
        assert clone.minimum == math.inf


class TestDocument:
    def test_to_dict_is_sparse_and_exact(self):
        hist = LatencyHistogram()
        for value in (1.0, 1.0, 50.0):
            hist.add(value)
        document = hist.to_dict()
        assert document["count"] == 3
        assert document["sum_ms"] == pytest.approx(52.0)
        assert document["min_ms"] == 1.0
        assert document["max_ms"] == 50.0
        assert sum(document["nonzero_bins"].values()) == 3
        assert len(document["nonzero_bins"]) == 2
