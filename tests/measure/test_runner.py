"""Tests for the measurement driver's retry accounting.

The TIMEOUT path must report the transmissions the stub *actually*
issued for that lookup, not the policy's configured ceiling — with
hedging enabled the two differ, and under fault injection the real
count is the datum the resilience experiment publishes.
"""

from repro.core.deployments import build_testbed
from repro.measure.runner import measure_deployment_run
from repro.resolver.retry import RetryPolicy


def _blackholed_testbed():
    """An all-MEC testbed whose UE is partitioned from everything."""
    testbed = build_testbed("mec-ldns-mec-cdns", seed=0)
    testbed.network.partition([testbed.ue.host.name])
    return testbed


class TestTimeoutAttempts:
    def test_attempts_count_real_transmissions_including_hedges(self):
        testbed = _blackholed_testbed()
        policy = RetryPolicy(retries=2, timeout_ms=100.0,
                             hedge_after_ms=10.0)
        run = measure_deployment_run(testbed, 1, warmup=0, policy=policy)
        assert len(run.measurements) == 1
        measurement = run.measurements[0]
        assert measurement.status == "TIMEOUT"
        assert measurement.addresses == []
        # 3 attempts (retries=2) plus the first attempt's hedge: the
        # policy ceiling alone would claim 3.
        assert measurement.attempts == 4
        assert run.retries.attempts == 4
        assert run.retries.answered == 0

    def test_attempts_are_per_lookup_not_cumulative(self):
        testbed = _blackholed_testbed()
        policy = RetryPolicy(retries=1, timeout_ms=50.0)
        run = measure_deployment_run(testbed, 2, warmup=0, policy=policy)
        assert [m.attempts for m in run.measurements] == [2, 2]
        assert run.retries.attempts == 4
        assert run.retries.mean_attempts == 2.0

    def test_timeouts_seen_matches_transmissions(self):
        testbed = _blackholed_testbed()
        policy = RetryPolicy(retries=2, timeout_ms=100.0,
                             hedge_after_ms=10.0)
        run = measure_deployment_run(testbed, 1, warmup=0, policy=policy)
        # Every transmission burned a timeout (hedge included).
        assert run.retries.timeouts_seen >= run.measurements[0].attempts - 1
