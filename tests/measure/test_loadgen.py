"""Tests for the open-loop load generator's loss accounting."""

import math

import pytest

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import A, NS, SOA
from repro.dnswire.types import RecordType
from repro.dnswire.zone import Zone
from repro.measure.loadgen import LoadGenerator, run_load
from repro.netsim.engine import Simulator
from repro.netsim.latency import Constant
from repro.netsim.network import Network
from repro.netsim.packet import Endpoint
from repro.netsim.rand import RandomStreams
from repro.resolver.authoritative import AuthoritativeServer

DOMAIN = "cap.test"
CONTENT = Name(f"video.{DOMAIN}")


def _zone():
    zone = Zone(Name(DOMAIN))
    zone.add(ResourceRecord(Name(DOMAIN), RecordType.SOA, 300,
                            SOA(Name(f"ns.{DOMAIN}"), Name(f"admin.{DOMAIN}"),
                                1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(DOMAIN), RecordType.NS, 300,
                            NS(Name(f"ns.{DOMAIN}"))))
    zone.add(ResourceRecord(CONTENT, RecordType.A, 0, A("10.9.9.9")))
    return zone


def loaded_server(workers=1, service_ms=1.0, max_queue=16, seed=0):
    """A single DNS server topology with a bounded service capacity."""
    sim = Simulator()
    net = Network(sim, RandomStreams(seed))
    net.add_host("dns", "10.0.0.53")
    net.add_host("clients", "10.0.0.1")
    net.add_link("clients", "dns", Constant(1.0))
    AuthoritativeServer(net, net.host("dns"), [_zone()],
                        processing_delay=Constant(service_ms),
                        workers=workers, max_queue=max_queue)
    return net


class TestSaturation:
    def test_overload_shows_loss(self):
        # 1 worker x 1 ms service = ~1000 qps capacity; offer 4x that.
        net = loaded_server()
        result = run_load(net, net.host("clients"), Endpoint("10.0.0.53", 53),
                          CONTENT, offered_qps=4000.0, duration_ms=500.0,
                          reply_timeout_ms=500.0)
        assert result.answered < result.sent
        assert result.loss_rate > 0.0
        assert result.loss_rate == pytest.approx(
            1.0 - result.answered / result.sent)

    def test_latencies_come_only_from_answered_queries(self):
        net = loaded_server()
        result = run_load(net, net.host("clients"), Endpoint("10.0.0.53", 53),
                          CONTENT, offered_qps=4000.0, duration_ms=500.0,
                          reply_timeout_ms=500.0)
        # Lost queries never produce a latency sample, so even at heavy
        # loss the distribution stays finite and below the reply timeout.
        assert result.answered > 0
        assert math.isfinite(result.mean_latency_ms)
        assert result.p99_ms <= 500.0
        assert result.goodput_qps < result.offered_qps

    def test_below_capacity_is_lossless(self):
        net = loaded_server()
        result = run_load(net, net.host("clients"), Endpoint("10.0.0.53", 53),
                          CONTENT, offered_qps=200.0, duration_ms=500.0,
                          reply_timeout_ms=500.0)
        assert result.answered == result.sent
        assert result.loss_rate == 0.0

    def test_all_lost_run_has_infinite_latency(self):
        net = loaded_server()
        net.host("dns").down = True
        result = run_load(net, net.host("clients"), Endpoint("10.0.0.53", 53),
                          CONTENT, offered_qps=100.0, duration_ms=100.0,
                          reply_timeout_ms=100.0)
        assert result.answered == 0
        assert result.loss_rate == 1.0
        assert result.mean_latency_ms == math.inf


class TestValidation:
    def test_nonpositive_rate_rejected(self):
        net = loaded_server()
        generator = LoadGenerator(net, net.host("clients"),
                                  Endpoint("10.0.0.53", 53), CONTENT)
        with pytest.raises(ValueError):
            next(generator.run(0.0, 100.0))

    def test_sent_matches_offered_window(self):
        net = loaded_server()
        result = run_load(net, net.host("clients"), Endpoint("10.0.0.53", 53),
                          CONTENT, offered_qps=100.0, duration_ms=500.0,
                          reply_timeout_ms=200.0)
        # 100 qps for 500 ms -> one injection per 10 ms window.
        assert result.sent == 50
