"""Tests for the paper-style statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.measure.stats import SummaryStats, percentile, summarize, trimmed


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)


class TestTrimmed:
    def test_8_92_window_drops_extremes(self):
        values = list(range(100))  # 0..99
        window = trimmed(values)
        assert min(window) >= 7
        assert max(window) <= 92
        assert len(window) >= 80

    def test_small_sample_keeps_most(self):
        # 12 tests, the paper's minimum.
        values = [10.0] * 10 + [100.0, 0.1]
        window = trimmed(values)
        assert 100.0 not in window
        assert 0.1 not in window

    def test_empty_input(self):
        assert trimmed([]) == []

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=100))
    def test_trimmed_is_subset(self, values):
        window = trimmed(values)
        assert all(value in values for value in window)
        # With very small spread-out samples the interpolated window can
        # be empty (summarize() falls back to the full sample then).
        if len(values) >= 12:
            assert window


class TestSummarize:
    def test_extremes_are_untrimmed(self):
        values = [10.0] * 20 + [500.0, 0.5]
        stats = summarize(values)
        assert stats.minimum == 0.5
        assert stats.maximum == 500.0
        # ... but the mean excludes them.
        assert stats.mean == pytest.approx(10.0)

    def test_count_is_total_samples(self):
        assert summarize([1.0, 2.0, 3.0]).count == 3

    def test_untrimmed_mode(self):
        values = [10.0] * 9 + [110.0]
        assert summarize(values, trim=False).mean == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_stdev_zero_for_constant(self):
        assert summarize([5.0] * 10).stdev == 0.0

    def test_str_rendering(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "mean=" in text and "n=3" in text
        assert "p99=" in text

    def test_p99_is_untrimmed(self):
        # One enormous outlier: trimming drops it from the mean, but the
        # p99 tail (like p95 and the extremes) must still see it.
        values = [10.0] * 9 + [1000.0]
        stats = summarize(values)
        assert stats.p99 > 900.0
        assert stats.mean == pytest.approx(10.0)

    def test_p99_between_p95_and_max(self):
        values = [float(v) for v in range(1, 201)]
        stats = summarize(values)
        assert stats.p95 <= stats.p99 <= stats.maximum

    def test_p99_shares_percentile_implementation(self):
        values = [float(v) for v in range(1, 101)]
        assert summarize(values).p99 == percentile(values, 99)

    def test_returns_namedtuple(self):
        assert isinstance(summarize([1.0]), SummaryStats)
