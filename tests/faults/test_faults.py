"""Tests for the fault-injection subsystem (plans, injector, burst loss)."""

import random

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.errors import SimulationError
from repro.faults import FaultInjector, FaultPlan, GilbertElliott, inject
from repro.faults.plan import FaultEvent
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.netsim.engine import ProcessFailed
from repro.resolver import AuthoritativeServer, StubResolver


def build_zone():
    zone = Zone(Name("example.com"))
    zone.add(ResourceRecord(Name("example.com"), RecordType.SOA, 300,
                            SOA(Name("ns.example.com"),
                                Name("a.example.com"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("example.com"), RecordType.NS, 300,
                            NS(Name("ns.example.com"))))
    zone.add(ResourceRecord(Name("www.example.com"), RecordType.A, 300,
                            A("198.18.0.9")))
    return zone


class World:
    """Client -- server over one 2 ms link, with a fault plan installed."""

    def __init__(self, plan=None, seed=11):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.net.add_host("client", "10.0.0.2")
        self.net.add_host("server", "10.0.0.53")
        self.net.add_link("client", "server", Constant(2))
        server = AuthoritativeServer(self.net, self.net.host("server"),
                                     [build_zone()])
        self.stub = StubResolver(self.net, self.net.host("client"),
                                 server.endpoint, timeout=100, retries=0)
        self.injector = inject(self.net, plan) if plan is not None else None

    def ask(self):
        return self.sim.run_until_resolved(self.sim.spawn(
            self.stub.query(Name("www.example.com"))))

    def ask_fails(self):
        with pytest.raises(ProcessFailed):
            self.ask()


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(0.0, 0.5)
        with pytest.raises(ValueError):
            GilbertElliott(0.5, 1.5)
        with pytest.raises(ValueError):
            GilbertElliott(0.5, 0.5, bad_loss=1.2)
        with pytest.raises(ValueError):
            GilbertElliott(0.5, 0.5, good_loss=-0.1)

    def test_stationary_loss_formula(self):
        model = GilbertElliott(0.1, 0.4, bad_loss=0.8, good_loss=0.0)
        assert model.stationary_loss == pytest.approx(0.2 * 0.8)
        assert model.mean_burst_traversals == pytest.approx(2.5)

    def test_good_state_with_zero_loss_never_drops(self):
        model = GilbertElliott(1e-9, 1.0, bad_loss=1.0, good_loss=0.0)
        rng = random.Random(3)
        assert not any(model.lost(rng) for _ in range(200))
        assert model.losses == 0

    def test_losses_cluster_into_bursts(self):
        model = GilbertElliott(0.05, 0.25, bad_loss=1.0, good_loss=0.0)
        rng = random.Random(7)
        outcomes = [model.lost(rng) for _ in range(5000)]
        assert model.bursts_entered > 10
        # Every loss happened in the bad state, so losses per burst must
        # roughly match the 1/p_exit mean burst length.
        per_burst = outcomes.count(True) / model.bursts_entered
        assert 2.0 < per_burst < 8.0  # mean is 4 traversals

    def test_deterministic_under_same_seed(self):
        runs = []
        for _ in range(2):
            model = GilbertElliott(0.1, 0.3, bad_loss=0.9)
            rng = random.Random(42)
            runs.append([model.lost(rng) for _ in range(500)])
        assert runs[0] == runs[1]


class TestFaultPlan:
    def test_events_sorted_and_paired(self):
        plan = (FaultPlan()
                .crash_host("b", 500, duration_ms=100)
                .link_down("x", "y", 10, duration_ms=50))
        kinds = [event.kind for event in plan.events]
        assert kinds == ["link-down", "link-up", "host-down", "host-up"]
        down, up = plan.events[2], plan.events[3]
        assert down.fault_id == up.fault_id
        assert up.at_ms == 600

    def test_flap_expands_to_cycles(self):
        plan = FaultPlan().flap_link("a", "b", 0, down_ms=10, up_ms=20,
                                     cycles=3)
        downs = [event.at_ms for event in plan.events
                 if event.kind == "link-down"]
        assert downs == [0, 30, 60]
        assert len(plan) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().crash_host("a", -1)
        with pytest.raises(ValueError):
            FaultPlan().brownout_host("a", 0, slow_ms=0)
        with pytest.raises(ValueError):
            FaultPlan().degrade_link("a", "b", 0, extra_loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan().flap_link("a", "b", 0, down_ms=1, up_ms=1, cycles=0)
        with pytest.raises(ValueError):
            FaultPlan().burst_loss("a", "b", 0, p_enter=0.0)

    def test_describe_is_stable(self):
        plan = FaultPlan().partition(["b", "a"], 5)
        assert plan.events[0].describe() == "partition-on partition {a,b}"


class TestFaultInjector:
    def test_crash_blacks_out_then_restarts(self):
        world = World(FaultPlan().crash_host("server", 0, duration_ms=500))
        world.ask_fails()
        world.sim.run(until=600)
        assert world.ask().status == "NOERROR"
        assert world.injector.events_fired == 2

    def test_brownout_delays_answers(self):
        healthy = World()
        baseline = healthy.ask().query_time_ms
        world = World(FaultPlan().brownout_host("server", 0, slow_ms=50))
        slowed = world.ask().query_time_ms
        assert slowed == pytest.approx(baseline + 50)

    def test_link_down_blacks_out_then_heals(self):
        world = World(FaultPlan().link_down("client", "server", 0,
                                            duration_ms=300))
        world.ask_fails()
        world.sim.run(until=400)
        assert world.ask().status == "NOERROR"

    def test_degrade_adds_loss_then_removes_it(self):
        world = World(FaultPlan().degrade_link("client", "server", 0,
                                               extra_loss=0.5,
                                               duration_ms=1000))
        link = world.net.link_between("client", "server")
        world.sim.run(until=1)
        assert link.extra_loss == 0.5
        world.sim.run(until=1100)
        assert link.extra_loss == 0.0

    def test_burst_installs_and_removes_model(self):
        plan = FaultPlan().burst_loss("client", "server", 0,
                                      duration_ms=1000,
                                      p_enter=0.9, p_exit=0.05,
                                      bad_loss=1.0)
        world = World(plan)
        link = world.net.link_between("client", "server")
        world.sim.run(until=1)
        model = world.injector.loss_model(plan.events[0].fault_id)
        assert link.loss_model is model
        world.ask_fails()  # near-certain loss swallows the query
        assert model.traversals > 0
        world.sim.run(until=1100)
        assert link.loss_model is None
        assert world.ask().status == "NOERROR"

    def test_partition_cuts_and_heals(self):
        world = World(FaultPlan().partition(["server"], 0, duration_ms=400))
        world.ask_fails()
        assert world.net.is_partitioned("client", "server")
        world.sim.run(until=500)
        assert not world.net.is_partitioned("client", "server")
        assert world.ask().status == "NOERROR"

    def test_timeline_replays_byte_for_byte(self):
        def one_run():
            plan = (FaultPlan()
                    .crash_host("server", 50, duration_ms=100)
                    .degrade_link("client", "server", 200, extra_loss=0.3,
                                  duration_ms=100))
            world = World(plan, seed=23)
            world.sim.run(until=1000)
            return list(world.injector.timeline)

        assert one_run() == one_run()
        assert len(one_run()) == 4

    def test_double_install_rejected(self):
        world = World()
        injector = inject(world.net, FaultPlan().crash_host("server", 0))
        with pytest.raises(SimulationError):
            injector.install()

    def test_unmatched_partition_off_rejected(self):
        world = World()
        injector = FaultInjector(world.net, FaultPlan())
        event = FaultEvent(0, "partition-off", "partition {x}", 9, {})
        with pytest.raises(SimulationError):
            injector._apply_partition_off(event)

    def test_idle_network_untouched(self):
        # No plan: the hooks stay at their no-fault defaults and a run
        # draws exactly the same randomness as before the subsystem
        # existed (zero-cost-when-idle).
        world = World()
        link = world.net.link_between("client", "server")
        assert not link.down and link.extra_loss == 0.0
        assert link.loss_model is None
        assert not world.net.host("server").down
        assert world.net.host("server").brownout_ms == 0.0
        assert world.ask().status == "NOERROR"
