"""Tests for the deterministic simulated-time profiler."""

from fractions import Fraction

from repro.profile import (analyze_trace, collapsed_stacks, render_collapsed,
                           render_profile, simulated_profile)
from repro.telemetry.trace import Tracer


def _trace_totals(session):
    """Exact summed duration across every trace of the run."""
    total = Fraction(0)
    for trace_id in session.tracer.trace_ids():
        spans = session.tracer.spans_for(trace_id)
        total += analyze_trace(spans, trace_id).total_exact
    return total


class TestSimulatedProfile:
    def test_exclusive_sums_to_total_trace_time(self, figure5_session):
        session, _ = figure5_session
        entries = simulated_profile(session.tracer.finished)
        exclusive = sum((entry.exclusive for entry in entries), Fraction(0))
        # Every simulated instant is owned exactly once — the profile's
        # exclusive column telescopes to the exact total, no slack.
        assert exclusive == _trace_totals(session)

    def test_exclusive_never_exceeds_inclusive(self, figure5_session):
        session, _ = figure5_session
        for entry in simulated_profile(session.tracer.finished):
            assert entry.exclusive <= entry.inclusive
            assert entry.count > 0

    def test_rows_sorted_by_exclusive_desc(self, figure5_session):
        session, _ = figure5_session
        entries = simulated_profile(session.tracer.finished)
        keys = [(entry.category, entry.name) for entry in entries]
        assert len(keys) == len(set(keys))
        exclusives = [entry.exclusive for entry in entries]
        assert exclusives == sorted(exclusives, reverse=True)
        # Transit hops dominate a network simulation's timeline.
        assert entries[0].name == "transit"

    def test_profile_is_deterministic(self, figure5_session):
        session, _ = figure5_session
        once = simulated_profile(session.tracer.finished)
        twice = simulated_profile(session.tracer.finished)
        assert once == twice

    def test_render_profile_table(self, figure5_session):
        session, _ = figure5_session
        entries = simulated_profile(session.tracer.finished)
        text = render_profile(entries)
        assert "component" in text and "excl ms" in text
        assert "net/transit" in text
        assert "total (exclusive)" in text
        limited = render_profile(entries, limit=2)
        assert f"... {len(entries) - 2} more rows" in limited


class TestCollapsedStacks:
    def test_stacks_conserve_total_time(self, figure5_session):
        session, _ = figure5_session
        stacks = collapsed_stacks(session.tracer.finished)
        assert sum(stacks.values(), Fraction(0)) == _trace_totals(session)
        # Real ancestry shows up, root first.
        assert any(key.startswith("lookup;stub.query") for key in stacks)

    def test_render_collapsed_format(self, figure5_session):
        session, _ = figure5_session
        text = render_collapsed(collapsed_stacks(session.tracer.finished))
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            assert int(value) >= 1

    def test_zero_width_stack_rounds_up_to_one(self):
        tracer = Tracer()
        root = tracer.add("lookup", "measure", "measure-driver", 0.0, 1.0)
        tracer.add("dns.serve", "resolver", "host-1", 0.0, 1.0 - 1e-9,
                   parent=root)
        text = render_collapsed(collapsed_stacks(tracer.finished))
        # The sliver the root owns outright is far below 1 us but must
        # not vanish from the flamegraph.
        assert "lookup 1\n" in text
