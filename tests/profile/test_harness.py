"""Tests for the ``repro profile`` wall-clock harness.

The load-bearing claim: profiling only observes the interpreter — the
trial results digest byte-identically with the profiler on or off.
"""

import json

from repro import telemetry
from repro.experiments.registry import builtin_registry
from repro.profile.harness import run_profile, render_summary
from repro.runtime import TrialExecutor, result_digest


class TestRunProfile:
    def test_artifacts_and_bench_document(self, tmp_path):
        result = run_profile("figure5", {"queries": 2},
                             out_dir=str(tmp_path), top=5)
        assert result.run.ok
        assert result.run.profile_stats

        budget = json.loads((tmp_path / "figure5-budget.json").read_text())
        assert budget["format"] == "repro-budget-v1"
        assert len(budget["rows"]) == 6  # every deployment option
        for row in budget["rows"]:
            assert row["resolve_ms"]["samples"]

        folded = (tmp_path / "figure5-profile.folded").read_text()
        assert folded.splitlines()
        for line in folded.splitlines():
            stack, _, value = line.rpartition(" ")
            assert stack and int(value) >= 1

        bench = json.loads((tmp_path / "BENCH_profile.json").read_text())
        assert bench == result.bench
        assert bench["format"] == "repro-bench-profile-v1"
        assert bench["experiment"] == "figure5" and bench["ok"]
        assert bench["simulators"] == 6
        assert bench["events"] > 0 and bench["spans"] > 0
        assert bench["max_heap_depth"] > 0
        assert bench["wall_s"] > 0 and bench["events_per_s"] > 0
        assert bench["top_functions"]
        hottest = bench["top_functions"][0]
        assert set(hottest) == {"function", "calls", "tottime_s", "cumtime_s"}

    def test_profiling_does_not_perturb_results(self, tmp_path):
        experiment = builtin_registry().get("figure5")
        plain = TrialExecutor(jobs=1).run(experiment, {"queries": 2})
        assert plain.profile_stats is None
        result = run_profile("figure5", {"queries": 2},
                             out_dir=str(tmp_path))
        assert result_digest(result.run.result) == \
            result_digest(plain.result)

    def test_ambient_telemetry_restored(self, tmp_path):
        mine = telemetry.Telemetry()
        telemetry.set_default(mine)
        run_profile("figure5", {"queries": 2}, out_dir=str(tmp_path))
        # The harness installed its own session and put mine back —
        # without collecting the profiled run into it.
        assert telemetry.get_default() is mine
        assert len(mine.tracer.finished) == 0

    def test_render_summary_sections(self, tmp_path):
        result = run_profile("figure5", {"queries": 2},
                             out_dir=str(tmp_path), top=3)
        text = render_summary(result, top=3)
        assert "latency budget" in text
        assert "simulated-time profile" in text
        assert "wall clock" in text
        assert "hottest functions" in text
        assert str(tmp_path / "figure5-budget.json") in text


class TestProfileCli:
    def test_cli_runs_and_prints_summary(self, tmp_path, capsys):
        from repro.cli import main
        bench = tmp_path / "bench.json"
        assert main(["profile", "figure5", "--queries", "2",
                     "--out-dir", str(tmp_path),
                     "--bench-out", str(bench), "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "latency budget" in out and "wall clock" in out
        assert bench.exists()
        assert (tmp_path / "figure5-budget.json").exists()
        assert (tmp_path / "figure5-profile.folded").exists()
