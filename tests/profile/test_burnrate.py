"""Tests for the windowed SLO grammar: window rules and burn-rate
alerts over ``repro-timeseries-v1`` documents."""

import pytest

from repro.profile.slo import (
    BurnRateRule,
    SloParseError,
    WindowRule,
    evaluate_slo,
    parse_slo_text,
)


def timeseries_doc(answers, mislocalized, window_ms=1000.0,
                   deployment="mec-ldns-mec-cdns", latency=None):
    """A minimal repro-timeseries-v1 document from per-window values.

    ``answers``/``mislocalized`` map window index -> count; ``latency``
    maps window index -> (count, sum, {bound: count}) cells.
    """
    series = [
        {"name": "repro_control_answers", "kind": "counter",
         "labels": {"deployment": deployment},
         "windows": [{"index": i, "start_ms": i * window_ms, "value": v}
                     for i, v in sorted(answers.items())]},
        {"name": "repro_control_mislocalized", "kind": "counter",
         "labels": {"deployment": deployment},
         "windows": [{"index": i, "start_ms": i * window_ms, "value": v}
                     for i, v in sorted(mislocalized.items())]},
    ]
    if latency:
        series.append(
            {"name": "repro_workload_total_ms", "kind": "latency",
             "labels": {"deployment": deployment},
             "windows": [{"index": i, "start_ms": i * window_ms,
                          "count": count, "sum": total,
                          "buckets": [[bound, n]
                                      for bound, n in buckets.items()]}
                         for i, (count, total, buckets)
                         in sorted(latency.items())]})
    return {"format": "repro-timeseries-v1", "window_ms": window_ms,
            "series": series, "annotations": []}


class TestParsing:
    def test_window_rule(self):
        (rule,) = parse_slo_text("* window p95 total_ms < 150\n")
        assert isinstance(rule, WindowRule)
        assert (rule.scope, rule.agg, rule.metric) == ("*", "p95",
                                                       "total_ms")

    def test_window_rejects_min(self):
        with pytest.raises(SloParseError, match="min"):
            parse_slo_text("* window min total_ms < 150\n")

    def test_window_rejects_unknown_metric(self):
        with pytest.raises(SloParseError, match="unknown window metric"):
            parse_slo_text("* window p95 nonsense < 150\n")

    def test_burnrate_rule(self):
        (rule,) = parse_slo_text(
            "mec-ldns-mec-cdns burnrate mislocalized/answers fires "
            "budget=0.05 factor=2 fast=2 slow=4 clear=3\n")
        assert isinstance(rule, BurnRateRule)
        assert rule.bad == "mislocalized"
        assert rule.total == "answers"
        assert (rule.mode, rule.budget, rule.factor) == ("fires", 0.05, 2.0)
        assert (rule.fast, rule.slow, rule.clear) == (2, 4, 3)

    def test_burnrate_validates_options(self):
        for bad in (
            "x burnrate a/b fires budget=1.5 factor=2 fast=1 slow=2",
            "x burnrate a/b fires budget=0.1 factor=0 fast=1 slow=2",
            "x burnrate a/b fires budget=0.1 factor=2 fast=4 slow=2",
            "x burnrate a/b sometimes budget=0.1 factor=2 fast=1 slow=2",
            "x burnrate a/b fires budget=0.1 factor=2 fast=1 slow=2 k=1",
        ):
            with pytest.raises(SloParseError):
                parse_slo_text(bad + "\n")

    def test_point_rules_still_parse(self):
        (rule,) = parse_slo_text("mec-ldns-mec-cdns p99 resolve_ms < 20\n")
        assert not isinstance(rule, (WindowRule, BurnRateRule))


class TestWindowRule:
    def test_empty_window_in_covered_range_fails(self):
        # Samples in windows 0 and 2, nothing in window 1: strict
        # missing-data semantics make the gap a failure, not a skip.
        doc = timeseries_doc({}, {}, latency={
            0: (4, 40.0, {20: 4}), 2: (4, 44.0, {20: 4})})
        rules = parse_slo_text("mec-ldns-mec-cdns window p95 total_ms "
                               "< 100\n")
        (check,) = evaluate_slo(rules, [doc]).checks
        assert not check.ok
        assert "window 1 has no samples" in check.detail

    def test_contiguous_windows_pass(self):
        doc = timeseries_doc({}, {}, latency={
            0: (4, 40.0, {20: 4}), 1: (4, 44.0, {20: 4})})
        rules = parse_slo_text("mec-ldns-mec-cdns window p95 total_ms "
                               "< 100\n")
        (check,) = evaluate_slo(rules, [doc]).checks
        assert check.ok

    def test_worst_window_breaches(self):
        doc = timeseries_doc({}, {}, latency={
            0: (4, 40.0, {20: 4}),
            1: (4, 4000.0, {2000: 4})})   # the slow window
        rules = parse_slo_text("mec-ldns-mec-cdns window p95 total_ms "
                               "< 100\n")
        (check,) = evaluate_slo(rules, [doc]).checks
        assert not check.ok
        assert check.value is not None and check.value > 100

    def test_no_matching_scope_fails(self):
        doc = timeseries_doc({}, {}, latency={0: (1, 5.0, {20: 1})})
        rules = parse_slo_text("google-dns window p95 total_ms < 100\n")
        (check,) = evaluate_slo(rules, [doc]).checks
        assert not check.ok


class TestBurnRateRule:
    RULE = ("mec-ldns-mec-cdns burnrate mislocalized/answers {mode} "
            "budget=0.1 factor=2 fast=1 slow=2{extra}\n")

    def run_rule(self, doc, mode, extra=""):
        rules = parse_slo_text(self.RULE.format(mode=mode, extra=extra))
        (check,) = evaluate_slo(rules, [doc]).checks
        return check

    def test_quiet_passes_when_burn_stays_low(self):
        doc = timeseries_doc({i: 100.0 for i in range(6)},
                             {i: 1.0 for i in range(6)})
        check = self.run_rule(doc, "quiet")
        assert check.ok
        assert "quiet across" in check.detail

    def test_quiet_fails_on_a_burst(self):
        answers = {i: 100.0 for i in range(6)}
        bad = {i: 1.0 for i in range(6)}
        bad[3] = 50.0   # 50% bad vs a 10% budget: 5x burn
        check = self.run_rule(timeseries_doc(answers, bad), "quiet")
        assert not check.ok

    def test_fires_requires_the_alert(self):
        doc = timeseries_doc({i: 100.0 for i in range(6)},
                             {i: 1.0 for i in range(6)})
        check = self.run_rule(doc, "fires")
        assert not check.ok
        assert "never fired" in check.detail

    def test_fires_and_clears(self):
        answers = {i: 100.0 for i in range(8)}
        bad = {i: 0.0 for i in range(8)}
        bad[2] = bad[3] = 60.0   # burst windows 2-3, quiet afterwards
        check = self.run_rule(timeseries_doc(answers, bad), "fires",
                              extra=" clear=3")
        assert check.ok
        assert "fired in" in check.detail

    def test_fires_with_clear_fails_when_still_burning(self):
        answers = {i: 100.0 for i in range(6)}
        bad = {i: 60.0 for i in range(6)}   # never recovers
        check = self.run_rule(timeseries_doc(answers, bad), "fires",
                              extra=" clear=2")
        assert not check.ok
        assert "still firing" in check.detail

    def test_zero_total_windows_burn_nothing(self):
        answers = {0: 100.0, 3: 100.0}      # gaps at 1-2
        bad = {0: 1.0, 3: 1.0}
        check = self.run_rule(timeseries_doc(answers, bad), "quiet")
        assert check.ok

    def test_missing_series_fails(self):
        doc = timeseries_doc({}, {})
        check = self.run_rule(doc, "fires")
        assert not check.ok

    def test_counter_family_resolution_prefers_control(self):
        # Both a control and a workload series called "answers" exist;
        # the bare token must resolve to the control one (10% bad), not
        # the workload one (0% bad).
        doc = timeseries_doc({i: 100.0 for i in range(4)},
                             {i: 10.0 for i in range(4)})
        doc["series"].append(
            {"name": "repro_workload_answers", "kind": "counter",
             "labels": {"deployment": "mec-ldns-mec-cdns"},
             "windows": [{"index": i, "start_ms": i * 1000.0,
                          "value": 10 ** 6} for i in range(4)]})
        rules = parse_slo_text(
            "mec-ldns-mec-cdns burnrate mislocalized/answers quiet "
            "budget=0.01 factor=2 fast=1 slow=2\n")
        (check,) = evaluate_slo(rules, [doc]).checks
        assert not check.ok   # 10% bad vs 1% budget using control series

    def test_embedded_timeseries_document(self):
        # The time-series may ride inside a repro-telemetry-v1 artifact.
        inner = timeseries_doc({i: 100.0 for i in range(4)},
                               {i: 1.0 for i in range(4)})
        outer = {"format": "repro-telemetry-v1", "metrics": [],
                 "timeseries": inner}
        check_direct = self.run_rule(inner, "quiet")
        rules = parse_slo_text(self.RULE.format(mode="quiet", extra=""))
        (check_embedded,) = evaluate_slo(rules, [outer]).checks
        assert check_embedded.ok == check_direct.ok is True
