"""Tests for critical-path stage attribution.

The headline acceptance criterion lives here: for **every** trace of a
real figure5 run, the per-stage attribution sums *float-identically* to
``trace_duration`` — exact equality, not ``approx``.
"""

from fractions import Fraction

from repro.profile import (STAGE_BACKHAUL, STAGE_CDNS, STAGE_CLIENT,
                           STAGE_LDNS_CACHE, STAGE_OTHER, STAGE_RADIO,
                           STAGE_TCP_FALLBACK, STAGE_UPSTREAM, STAGES,
                           analyze_trace, trace_segments)
from repro.telemetry.analysis import trace_duration
from repro.telemetry.trace import Tracer


class TestFloatIdentity:
    def test_every_figure5_trace_sums_exactly(self, figure5_session):
        session, _ = figure5_session
        trace_ids = session.tracer.trace_ids()
        assert len(trace_ids) >= 36  # six deployments, six queries + warmup
        for trace_id in trace_ids:
            spans = session.tracer.spans_for(trace_id)
            path = analyze_trace(spans, trace_id)
            # Exact identities — no approx, no tolerance.
            assert sum(path.stages.values(), Fraction(0)) == path.total_exact
            assert float(path.total_exact) == trace_duration(spans, trace_id)

    def test_segments_partition_the_trace(self, figure5_session):
        session, _ = figure5_session
        for trace_id in session.tracer.trace_ids():
            spans = session.tracer.spans_for(trace_id)
            segments = trace_segments(spans, trace_id)
            starts = [span.start_ms for span in spans]
            ends = [span.end_ms for span in spans]
            assert segments[0].start_ms == min(starts)
            assert segments[-1].end_ms == max(ends)
            for left, right in zip(segments, segments[1:]):
                assert left.end_ms == right.start_ms
            assert all(segment.width > 0 for segment in segments)
            assert all(segment.stage in STAGES for segment in segments)


class TestFigure5Attribution:
    def test_mec_deployments_show_radio_and_upstream(self, figure5_session):
        session, _ = figure5_session
        from repro.profile import budget_report
        report = budget_report(session.tracer.finished)
        keys = [row.deployment for row in report.rows]
        assert "mec-ldns-mec-cdns" in keys and "google-dns" in keys
        mec = report.row("mec-ldns-mec-cdns")
        # The UE's air interface and the on-site recursion both show up.
        assert STAGE_RADIO in mec.stages
        assert STAGE_UPSTREAM in mec.stages
        assert mec.stages[STAGE_RADIO].mean_ms > 0

    def test_wan_resolvers_are_backhaul_dominated(self, figure5_session):
        session, _ = figure5_session
        from repro.profile import budget_report
        report = budget_report(session.tracer.finished)
        google = report.row("google-dns")
        backhaul = google.stages[STAGE_BACKHAUL].mean_ms
        assert backhaul > google.mean_ms / 2
        # And the cloud resolver is far over the MEC one.
        assert google.mean_ms > report.row("mec-ldns-mec-cdns").mean_ms

    def test_counts_match_non_warmup_queries(self, figure5_session):
        session, _ = figure5_session
        from repro.profile import budget_report
        report = budget_report(session.tracer.finished)
        assert [row.count for row in report.rows] == [6] * len(report.rows)


def _synthetic_lookup(tracer):
    """A hand-built lookup trace covering [0, 10] ms.

    lookup/stub.query own the edges; one radio hop, one serve with an
    upstream exchange that itself rides a transit.
    """
    lookup = tracer.add("lookup", "measure", "measure-driver", 0.0, 10.0)
    stub = tracer.add("stub.query", "resolver", "ue-1", 0.0, 10.0,
                      parent=lookup)
    tracer.add("transit", "net", "air-1", 1.0, 3.0, parent=stub,
               **{"from": "ue-1", "to": "enb-1"})
    serve = tracer.add("dns.serve", "resolver", "mec-node-1", 3.0, 9.0,
                       parent=stub)
    upstream = tracer.add("upstream.exchange", "resolver", "mec-node-1",
                          4.0, 8.0, parent=serve)
    tracer.add("transit", "net", "core-1", 5.0, 7.0, parent=upstream,
               **{"from": "mec-node-1", "to": "auth-1"})
    return lookup.trace_id


class TestSyntheticClassification:
    def test_stage_arithmetic_on_known_tree(self):
        tracer = Tracer()
        trace_id = _synthetic_lookup(tracer)
        path = analyze_trace(tracer.finished, trace_id)
        assert path.total_exact == Fraction(10)
        assert path.stages[STAGE_RADIO] == Fraction(2)       # [1, 3]
        assert path.stages[STAGE_CLIENT] == Fraction(2)      # [0, 1] + [9, 10]
        assert path.stages[STAGE_LDNS_CACHE] == Fraction(2)  # [3, 4] + [8, 9]
        # upstream.exchange's own slices plus its transit inherit its stage.
        assert path.stages[STAGE_UPSTREAM] == Fraction(4)    # [4, 8]
        assert sum(path.stages.values(), Fraction(0)) == path.total_exact

    def test_tcp_fallback_ancestry_wins(self):
        tracer = Tracer()
        lookup = tracer.add("lookup", "measure", "measure-driver", 0.0, 6.0)
        fallback = tracer.add("stub.tcp-fallback", "resolver", "ue-1",
                              1.0, 5.0, parent=lookup)
        tracer.add("transit", "net", "core-1", 2.0, 4.0, parent=fallback,
                   **{"from": "gw-1", "to": "ldns-1"})
        path = analyze_trace(tracer.finished, lookup.trace_id)
        # The transit under the fallback is charged to the fallback, not
        # to backhaul — the retry caused the hop.
        assert path.stages[STAGE_TCP_FALLBACK] == Fraction(4)

    def test_transit_without_client_endpoint_is_backhaul(self):
        tracer = Tracer()
        lookup = tracer.add("lookup", "measure", "measure-driver", 0.0, 4.0)
        tracer.add("transit", "net", "wan-1", 1.0, 3.0, parent=lookup,
                   **{"from": "gw-1", "to": "resolver-1"})
        path = analyze_trace(tracer.finished, lookup.trace_id)
        assert path.stages[STAGE_BACKHAUL] == Fraction(2)

    def test_cdns_track_classification(self):
        tracer = Tracer()
        lookup = tracer.add("lookup", "measure", "measure-driver", 0.0, 4.0)
        tracer.event("cdns.route", "cdn", "cdns-1", parent=lookup)
        tracer.add("cache.serve", "cdn", "cdns-1", 1.0, 3.0, parent=lookup)
        path = analyze_trace(tracer.finished, lookup.trace_id)
        assert path.stages[STAGE_CDNS] == Fraction(2)

    def test_uncovered_gap_is_other(self):
        tracer = Tracer()
        first = tracer.add("dns.serve", "resolver", "host-1", 0.0, 2.0)
        tracer.add("dns.serve", "resolver", "host-1", 5.0, 8.0,
                   parent=first)
        segments = trace_segments(tracer.finished, first.trace_id)
        gap = [segment for segment in segments if segment.owner is None]
        assert len(gap) == 1
        assert gap[0].stage == STAGE_OTHER
        assert (gap[0].start_ms, gap[0].end_ms) == (2.0, 5.0)
        path = analyze_trace(tracer.finished, first.trace_id)
        assert path.total_exact == Fraction(8)
        assert any(step.what == "(gap)" for step in path.steps)

    def test_equal_depth_tie_breaks_to_later_span(self):
        tracer = Tracer()
        root = tracer.add("lookup", "measure", "measure-driver", 0.0, 4.0)
        tracer.add("dns.serve", "resolver", "host-1", 1.0, 3.0, parent=root)
        late = tracer.add("upstream.exchange", "resolver", "host-1",
                          1.0, 3.0, parent=root)
        segments = trace_segments(tracer.finished, root.trace_id)
        owners = {segment.owner.span_id for segment in segments
                  if segment.start_ms >= 1.0 and segment.end_ms <= 3.0}
        assert owners == {late.span_id}

    def test_empty_trace_analyzes_to_zero(self):
        path = analyze_trace([], trace_id=1)
        assert path.total_exact == Fraction(0)
        assert path.stages == {} and path.steps == []
