"""Tests for SLO parsing, evaluation, and the ``repro slo`` gate."""

import json
import pathlib

import pytest

from repro.profile import (SloParseError, evaluate_slo, parse_slo_text)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

BUDGET_DOC = {
    "format": "repro-budget-v1",
    "rows": [
        {"deployment": "a", "count": 4,
         "resolve_ms": {"samples": [10.0, 20.0, 30.0, 40.0]},
         "stages": {"radio": {"mean_ms": 2.5,
                              "samples": [1.0, 2.0, 3.0, 4.0]}}},
        {"deployment": "b", "count": 4,
         "resolve_ms": {"samples": [5.0, 5.0, 5.0, 5.0]},
         "stages": {}},
    ],
}

HISTOGRAM_DOC = {
    "format": "repro-telemetry-v1",
    "metrics": [
        {"name": "repro_lookup_latency_ms", "kind": "histogram",
         "samples": [{"labels": {}, "count": 4, "sum": 40.0,
                      "buckets": [{"le": 10.0, "count": 2},
                                  {"le": 20.0, "count": 4},
                                  {"le": "+Inf", "count": 4}]}]},
    ],
}


class TestParse:
    def test_rules_comments_and_blanks(self):
        rules = parse_slo_text(
            "# full-line comment\n"
            "\n"
            "a p99 resolve_ms < 20   # trailing comment\n"
            "* mean stage.radio_ms >= 1.5\n")
        assert len(rules) == 2
        assert rules[0].describe() == "a p99 resolve_ms < 20"
        assert rules[1] == rules[1]._replace(scope="*", agg="mean",
                                             metric="stage.radio_ms",
                                             op=">=", threshold=1.5)

    @pytest.mark.parametrize("line,fragment", [
        ("a p99 resolve_ms <", "expected"),            # wrong arity
        ("a p42 resolve_ms < 20", "aggregation"),      # unknown agg
        ("a p99 resolve_ms != 20", "operator"),        # unknown op
        ("a p99 latency < 20", "metric"),              # unknown metric
        ("a p99 stage.radio < 20", "metric"),          # missing _ms suffix
        ("a p99 resolve_ms < fast", "threshold"),      # non-numeric bound
    ])
    def test_malformed_lines_raise(self, line, fragment):
        with pytest.raises(SloParseError, match=fragment):
            parse_slo_text(line)

    def test_error_carries_line_number(self):
        with pytest.raises(SloParseError, match="line 3"):
            parse_slo_text("# ok\na p99 resolve_ms < 20\nbroken line\n")


class TestEvaluate:
    def run(self, text, documents=(BUDGET_DOC,)):
        return evaluate_slo(parse_slo_text(text), list(documents))

    def test_budget_samples_pass_and_fail(self):
        verdict = self.run("a mean resolve_ms < 30\n"
                           "a mean resolve_ms < 20\n")
        assert [check.ok for check in verdict.checks] == [True, False]
        assert verdict.checks[0].value == 25.0
        assert verdict.checks[0].detail == "4 samples"
        assert not verdict.ok

    def test_quantiles_interpolate_over_raw_samples(self):
        verdict = self.run("a p50 resolve_ms <= 25\n")
        assert verdict.ok and verdict.checks[0].value == 25.0

    def test_star_scope_pools_every_deployment(self):
        verdict = self.run("* min resolve_ms >= 5\n")
        assert verdict.ok
        assert verdict.checks[0].detail == "8 samples"

    def test_stage_metric(self):
        verdict = self.run("a mean stage.radio_ms < 2\n")
        assert not verdict.ok and verdict.checks[0].value == 2.5

    def test_greater_than_asserts_reproduction_claims(self):
        # "> threshold" lets the suite pin that the slow deployment
        # really is slow — the paper's claim, not a perf wish.
        verdict = self.run("a max resolve_ms > 35\n")
        assert verdict.ok and verdict.checks[0].value == 40.0

    def test_missing_data_fails_not_passes(self):
        verdict = self.run("nowhere p50 resolve_ms < 10\n")
        check = verdict.checks[0]
        assert not check.ok and check.value is None
        assert check.detail == "no matching data"

    def test_histogram_fallback_for_star_scope(self):
        verdict = self.run("* mean resolve_ms < 11\n"
                           "* p50 resolve_ms <= 10\n",
                           documents=(HISTOGRAM_DOC,))
        assert verdict.ok
        assert [check.value for check in verdict.checks] == [10.0, 10.0]
        assert verdict.checks[0].detail == "histogram estimate"

    def test_histogram_cannot_answer_min_or_scoped_rules(self):
        verdict = self.run("* min resolve_ms > 0\n"
                           "a p50 resolve_ms < 10\n",
                           documents=(HISTOGRAM_DOC,))
        assert [check.ok for check in verdict.checks] == [False, False]
        assert all(check.detail == "no matching data"
                   for check in verdict.checks)

    def test_raw_samples_beat_histogram_estimate(self):
        verdict = self.run("* mean resolve_ms < 30\n",
                           documents=(BUDGET_DOC, HISTOGRAM_DOC))
        assert verdict.checks[0].detail == "8 samples"

    def test_verdict_document_shape(self):
        document = self.run("a mean resolve_ms < 30\n").to_dict()
        assert document["format"] == "repro-slo-v1"
        assert document["ok"] is True
        assert document["checks"][0]["rule"] == "a mean resolve_ms < 30"
        text = self.run("a mean resolve_ms < 1\n").render_text()
        assert "[FAIL]" in text and "BREACH" in text


class TestCommittedRules:
    def test_figure5_slo_parses(self):
        text = (REPO_ROOT / "slo" / "figure5.slo").read_text()
        rules = parse_slo_text(text)
        assert len(rules) >= 6
        scoped = {rule.scope for rule in rules}
        assert "mec-ldns-mec-cdns" in scoped
        # The paper's headline budget is pinned: MEC resolution under
        # the ~20 ms an MEC application can spend end to end.
        assert any(rule.scope == "mec-ldns-mec-cdns"
                   and rule.metric == "resolve_ms"
                   and rule.op in ("<", "<=") and rule.threshold <= 20.0
                   for rule in rules)


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        if isinstance(payload, str):
            path.write_text(payload)
        else:
            path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_pass_and_one_on_breach(self, tmp_path, capsys):
        from repro.cli import main
        budget = self.write(tmp_path, "budget.json", BUDGET_DOC)
        passing = self.write(tmp_path, "pass.slo", "a mean resolve_ms < 30\n")
        assert main(["slo", passing, "--input", budget]) == 0
        assert "slo: OK" in capsys.readouterr().out

        # The injected breach: a 20 ms budget the 40 ms tail busts.
        breach = self.write(tmp_path, "breach.slo", "a p99 resolve_ms < 20\n")
        assert main(["slo", breach, "--input", budget]) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        from repro.profile.runner import main
        budget = self.write(tmp_path, "budget.json", BUDGET_DOC)
        bad = self.write(tmp_path, "bad.slo", "not a rule\n")
        assert main([bad, "--input", budget]) == 2
        empty = self.write(tmp_path, "empty.slo", "# nothing\n")
        assert main([empty, "--input", budget]) == 2
        good = self.write(tmp_path, "good.slo", "a mean resolve_ms < 30\n")
        assert main([good, "--input", str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()

    def test_json_output_and_verdict_file(self, tmp_path, capsys):
        from repro.cli import main
        budget = self.write(tmp_path, "budget.json", BUDGET_DOC)
        rules = self.write(tmp_path, "rules.slo", "a mean resolve_ms < 30\n")
        out = tmp_path / "verdict.json"
        assert main(["slo", rules, "--input", budget,
                     "--format", "json", "--out", str(out)]) == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out.read_text())
        assert printed == written
        assert written["format"] == "repro-slo-v1" and written["ok"]
