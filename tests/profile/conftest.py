"""Shared fixtures for the profile-analysis tests.

The float-identity and attribution tests all want the same thing: one
real figure5 run's spans.  The run is deterministic, so a module-scoped
fixture per test file would re-run it needlessly — a session-scoped
fixture executes it exactly once for the whole test package.
"""

import pytest

from repro import telemetry
from repro.experiments.registry import builtin_registry
from repro.runtime import TrialExecutor


@pytest.fixture(autouse=True)
def no_leaked_default():
    """Every test starts and ends without an ambient default telemetry."""
    telemetry.clear_default()
    yield
    telemetry.clear_default()


@pytest.fixture(scope="session")
def figure5_session():
    """One traced figure5 run (all six deployments, 6 queries each)."""
    session = telemetry.Telemetry()
    telemetry.set_default(session)
    try:
        run = TrialExecutor(jobs=1).run(builtin_registry().get("figure5"),
                                        {"queries": 6})
    finally:
        telemetry.clear_default()
    assert run.ok
    return session, run
