"""Tests for the district engine (repro.workload.engine) and the
deployment calibration bridge (repro.workload.deployment)."""

import random

import pytest

from repro.workload.deployment import calibrate, is_localized
from repro.workload.engine import (DistrictConfig, district_seed,
                                   merge_stats, run_district)

#: A district small enough for unit tests, big enough to exercise every
#: path: mobility, handover, cache eviction, and all four caches.
CONFIG = DistrictConfig(
    ues=40, sites=2, caches_per_site=2, cache_capacity=30,
    catalog_size=500, zipf_exponent=0.9, duration_s=3600.0,
    sessions_per_ue_hour=2.0, mean_requests=6.0, mean_think_s=4.0,
    move_probability=0.3, handover_probability=0.3,
    allocation="content", start_s=18 * 3600.0)


@pytest.fixture(scope="module")
def localized_model():
    return calibrate("mec-ldns-mec-cdns", seed=42)


@pytest.fixture(scope="module")
def blind_model():
    return calibrate("google-dns", seed=42)


def stats_fields(stats):
    """Comparable view (histograms don't define value equality)."""
    return (stats.queries, stats.sessions, stats.active_ues, stats.hits,
            stats.localized, stats.handovers, stats.cache_load,
            stats.dns.to_dict(), stats.total.to_dict())


class TestCalibration:
    def test_localization_flags(self):
        assert is_localized("mec-ldns-mec-cdns")
        assert is_localized("mec-ldns-wan-cdns")
        assert not is_localized("google-dns")
        assert not is_localized("lan-ldns")

    def test_calibration_is_seed_deterministic(self, localized_model):
        again = calibrate("mec-ldns-mec-cdns", seed=42)
        assert again.key == localized_model.key
        assert again.localized == localized_model.localized
        rng_a, rng_b = random.Random(1), random.Random(1)
        assert [again.dns_ms(rng_a) for _ in range(5)] == \
            [localized_model.dns_ms(rng_b) for _ in range(5)]


class TestRunDistrict:
    def test_is_deterministic(self, localized_model):
        first = run_district(CONFIG, localized_model, seed=7)
        second = run_district(CONFIG, localized_model, seed=7)
        assert stats_fields(first) == stats_fields(second)
        assert first.queries > 0
        assert first.handovers > 0

    def test_seed_changes_the_run(self, localized_model):
        first = run_district(CONFIG, localized_model, seed=7)
        second = run_district(CONFIG, localized_model, seed=8)
        assert stats_fields(first) != stats_fields(second)

    def test_localized_deployment_serves_locally(self, localized_model):
        stats = run_district(CONFIG, localized_model, seed=7)
        # The per-site ring only ever selects a cache at the UE's
        # current site, so localization is exact.
        assert stats.localization == 1.0
        assert sum(stats.cache_load) == stats.queries
        assert all(load > 0 for load in stats.cache_load)

    def test_client_blind_deployment_pins_the_anchor(self, blind_model):
        stats = run_district(CONFIG, blind_model, seed=7)
        # Everything lands on site 0, cache 0 (the paper's
        # mislocalization): only requests from UEs at site 0 are local.
        assert stats.cache_load[0] == stats.queries
        assert all(load == 0 for load in stats.cache_load[1:])
        assert 0.0 < stats.localization < 1.0

    def test_accounting_invariants(self, localized_model):
        stats = run_district(CONFIG, localized_model, seed=11)
        assert stats.dns.count == stats.queries
        assert stats.total.count == stats.queries
        assert 0 < stats.hits < stats.queries
        assert 0 < stats.active_ues <= CONFIG.ues
        assert stats.sessions >= stats.active_ues
        # DNS is one leg of the total; totals dominate everywhere.
        assert stats.total.minimum > stats.dns.minimum

    @pytest.mark.parametrize("allocation",
                             ["content", "client", "client-bounded"])
    def test_every_allocation_policy_runs(self, localized_model, allocation):
        config = CONFIG._replace(allocation=allocation)
        stats = run_district(config, localized_model, seed=3)
        assert stats.queries > 0
        assert sum(stats.cache_load) == stats.queries
        assert stats.localization == 1.0

    def test_unknown_allocation_rejected(self, localized_model):
        config = CONFIG._replace(allocation="round-robin")
        with pytest.raises(ValueError):
            run_district(config, localized_model, seed=3)


class TestMergeStats:
    def test_counters_and_histograms_fold(self, localized_model):
        parts = [run_district(CONFIG, localized_model, seed=seed)
                 for seed in (1, 2, 3)]
        merged = merge_stats(parts)
        assert merged.queries == sum(part.queries for part in parts)
        assert merged.hits == sum(part.hits for part in parts)
        assert merged.handovers == sum(part.handovers for part in parts)
        assert merged.dns.count == merged.queries
        assert merged.cache_load == [
            sum(loads) for loads in zip(*(part.cache_load for part in parts))]
        assert merged.total.maximum == max(part.total.maximum
                                           for part in parts)

    def test_empty_merge(self):
        merged = merge_stats([])
        assert merged.queries == 0
        assert merged.hit_rate == 0.0
        assert merged.load_imbalance() == 0.0

    def test_mismatched_grids_rejected(self, localized_model):
        narrow = CONFIG._replace(caches_per_site=1)
        with pytest.raises(ValueError):
            merge_stats([run_district(CONFIG, localized_model, seed=1),
                         run_district(narrow, localized_model, seed=1)])


class TestDistrictSeed:
    def test_distinct_across_shards_and_deployments(self):
        seeds = {district_seed(42, deployment, shard)
                 for deployment in ("google-dns", "mec-ldns-mec-cdns")
                 for shard in range(4)}
        assert len(seeds) == 8

    def test_stable(self):
        assert district_seed(42, "google-dns", 0) == \
            district_seed(42, "google-dns", 0)
