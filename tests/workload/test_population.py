"""Tests for populations, sessions, mobility, and mesoscale caches.

The determinism contract under the ``population`` artifact's digests:
every UE is a pure function of ``(population seed, index)``, its RNG
stream is private, and none of it depends on population size or which
process computes it.
"""

import random
from collections import Counter

import pytest

from repro.workload.caches import RankLru
from repro.workload.mobility import MobilityModel, SessionPlacement
from repro.workload.population import Population, UserProfile
from repro.workload.sessions import SessionModel


class TestPopulation:
    def test_ues_are_pure_functions_of_seed_and_index(self):
        small = Population(10, 4, seed=42)
        large = Population(10_000, 4, seed=42)
        for index in range(10):
            assert small.user(index) == large.user(index)

    def test_per_ue_seeds_are_independent(self):
        population = Population(500, 4, seed=42)
        seeds = [population.user(index).seed for index in range(500)]
        assert len(set(seeds)) == 500
        # Distinct seeds must give distinct streams — adjacent UEs
        # sharing a prefix would correlate the whole district.
        first = population.user_rng(population.user(0))
        second = population.user_rng(population.user(1))
        assert [first.random() for _ in range(8)] != \
            [second.random() for _ in range(8)]

    def test_consuming_one_stream_leaves_others_untouched(self):
        population = Population(3, 2, seed=7)
        probe = population.user_rng(population.user(1)).random()
        burner = population.user_rng(population.user(0))
        for _ in range(1_000):
            burner.random()
        assert population.user_rng(population.user(1)).random() == probe

    def test_different_base_seeds_move_everything(self):
        a = Population(50, 4, seed=1)
        b = Population(50, 4, seed=2)
        assert [u.seed for u in a.users()] != [u.seed for u in b.users()]

    def test_home_sites_cover_all_sites(self):
        population = Population(400, 4, seed=42)
        census = population.site_census()
        assert len(census) == 4
        assert sum(census) == 400
        assert all(count > 0 for count in census)
        # census agrees with the per-UE derivation
        direct = Counter(user.home_site for user in population.users())
        assert census == [direct[site] for site in range(4)]

    def test_client_ips_are_stable_and_distinct(self):
        population = Population(300, 2, seed=9)
        ips = [user.client_ip() for user in population.users()]
        assert len(set(ips)) == 300
        assert UserProfile(index=0, home_site=0, seed=0).client_ip() \
            == "10.64.0.0"

    def test_bounds(self):
        population = Population(5, 2, seed=0)
        assert len(population) == 5
        with pytest.raises(IndexError):
            population.user(5)
        with pytest.raises(ValueError):
            Population(0, 2, seed=0)
        with pytest.raises(ValueError):
            Population(2, 0, seed=0)


class TestSessionModel:
    def test_request_count_mean_and_floor(self):
        model = SessionModel(mean_requests=8.0, mean_think_s=4.0)
        rng = random.Random(13)
        counts = [model.request_count(rng) for _ in range(20_000)]
        assert min(counts) >= 1
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(8.0, rel=0.05)

    def test_think_time_mean(self):
        model = SessionModel(mean_requests=8.0, mean_think_s=4.0)
        rng = random.Random(17)
        draws = [model.think_time(rng) for _ in range(20_000)]
        assert all(draw >= 0 for draw in draws)
        assert sum(draws) / len(draws) == pytest.approx(4.0, rel=0.05)

    def test_degenerate_mean_pins_the_floor(self):
        model = SessionModel(mean_requests=1.0, min_requests=1,
                             mean_think_s=1.0)
        rng = random.Random(3)
        assert all(model.request_count(rng) == 1 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionModel(mean_requests=0.5)
        with pytest.raises(ValueError):
            SessionModel(mean_think_s=0.0)
        with pytest.raises(ValueError):
            SessionModel(min_requests=0)


class TestMobilityModel:
    def test_single_site_consumes_no_rng(self):
        model = MobilityModel(1, move_probability=1.0,
                              handover_probability=1.0)
        rng = random.Random(5)
        probe = random.Random(5).random()
        placement = model.place_session(rng, 0, requests=10)
        assert placement == SessionPlacement(site=0, handover_site=0,
                                             handover_at=-1)
        assert rng.random() == probe

    def test_other_site_never_returns_current(self):
        model = MobilityModel(4, move_probability=1.0,
                              handover_probability=0.0)
        rng = random.Random(21)
        for _ in range(200):
            placement = model.place_session(rng, 2, requests=5)
            assert placement.site != 2
            assert 0 <= placement.site < 4

    def test_move_probability_is_respected(self):
        model = MobilityModel(4, move_probability=0.25,
                              handover_probability=0.0)
        rng = random.Random(8)
        away = sum(model.place_session(rng, 1, 5).site != 1
                   for _ in range(20_000))
        assert away / 20_000 == pytest.approx(0.25, abs=0.02)

    def test_handover_lands_mid_session(self):
        model = MobilityModel(3, move_probability=0.0,
                              handover_probability=1.0)
        rng = random.Random(2)
        for _ in range(200):
            placement = model.place_session(rng, 0, requests=6)
            assert 1 <= placement.handover_at < 6
            assert placement.handover_site != placement.site

    def test_single_request_sessions_never_hand_over(self):
        model = MobilityModel(3, move_probability=0.0,
                              handover_probability=1.0)
        rng = random.Random(4)
        placement = model.place_session(rng, 0, requests=1)
        assert placement.handover_at == -1
        assert placement.handover_site == placement.site

    def test_validation(self):
        with pytest.raises(ValueError):
            MobilityModel(0)
        with pytest.raises(ValueError):
            MobilityModel(2, move_probability=1.5)
        with pytest.raises(ValueError):
            MobilityModel(2, handover_probability=-0.1)


class TestRankLru:
    def test_hit_miss_and_eviction(self):
        cache = RankLru(2)
        assert not cache.lookup(1)   # miss, admit
        assert not cache.lookup(2)   # miss, admit
        assert cache.lookup(1)       # hit, refreshes 1
        assert not cache.lookup(3)   # miss, evicts 2 (LRU)
        assert not cache.lookup(2)   # 2 was evicted
        assert cache.hits == 1
        assert cache.misses == 4
        assert cache.requests == 5
        assert len(cache) == 2

    def test_recency_refresh_protects_hot_ranks(self):
        cache = RankLru(2)
        cache.lookup(1)
        cache.lookup(2)
        cache.lookup(1)              # 1 is now most recent
        cache.lookup(3)              # evicts 2, not 1
        assert cache.lookup(1)
        assert not cache.lookup(2)

    def test_hit_rate(self):
        cache = RankLru(10)
        assert cache.hit_rate == 0.0
        cache.lookup(1)
        cache.lookup(1)
        assert cache.hit_rate == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RankLru(0)
