"""Tests for diurnal NHPP arrivals (repro.workload.arrivals).

The load-bearing claim: Lewis-Shedler thinning produces, per diurnal
hour bucket, an empirical arrival rate matching the profile — so the
population engine's "evening window" really is evening traffic.
"""

import math
import random

import pytest

from repro.workload.arrivals import (DEFAULT_DIURNAL, SECONDS_PER_DAY,
                                     SECONDS_PER_HOUR, DiurnalProfile,
                                     NhppArrivals)


class TestDiurnalProfile:
    def test_default_shape(self):
        profile = DiurnalProfile()
        assert len(profile.hourly) == 24
        assert profile.peak == max(DEFAULT_DIURNAL) == 1.0
        assert profile.mean == pytest.approx(sum(DEFAULT_DIURNAL) / 24)
        # Overnight trough vs evening peak: the profile must actually
        # be diurnal, not flat.
        assert profile.multiplier(4 * SECONDS_PER_HOUR) < 0.2
        assert profile.multiplier(20 * SECONDS_PER_HOUR) == 1.0

    def test_multiplier_is_day_periodic(self):
        profile = DiurnalProfile()
        t = 13.5 * SECONDS_PER_HOUR
        assert profile.multiplier(t) == profile.multiplier(t + SECONDS_PER_DAY)
        assert profile.hour_of(t) == 13

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile([1.0] * 23)
        with pytest.raises(ValueError):
            DiurnalProfile([1.0] * 23 + [-0.1])
        with pytest.raises(ValueError):
            DiurnalProfile([0.0] * 24)


class TestNhppArrivals:
    def test_rate_normalization(self):
        # mean_rate_per_s is the *day-average* rate: the instantaneous
        # rate integrates back to it over a full day.
        profile = DiurnalProfile()
        arrivals = NhppArrivals(2.0, profile)
        day_integral = sum(
            arrivals.rate_at(hour * SECONDS_PER_HOUR) * SECONDS_PER_HOUR
            for hour in range(24))
        assert day_integral == pytest.approx(2.0 * SECONDS_PER_DAY)
        assert arrivals.rate_max == pytest.approx(2.0 / profile.mean)

    def test_per_bucket_empirical_rate_matches_the_profile(self):
        # One full simulated day; every hour bucket's arrival count must
        # sit within 5 sigma of its NHPP expectation.  Deterministic
        # seed keeps this a regression test, not a flaky one.
        profile = DiurnalProfile()
        arrivals = NhppArrivals(2.0, profile)
        rng = random.Random(2024)
        buckets = [0] * 24
        for t in arrivals.times(rng, SECONDS_PER_DAY):
            buckets[profile.hour_of(t)] += 1
        for hour, observed in enumerate(buckets):
            expected = arrivals.rate_at(hour * SECONDS_PER_HOUR) \
                * SECONDS_PER_HOUR
            sigma = math.sqrt(expected)
            assert abs(observed - expected) < 5.0 * sigma, (
                f"hour {hour}: {observed} arrivals vs expected "
                f"{expected:.0f} +/- {sigma:.0f}")

    def test_flat_profile_degrades_to_homogeneous_poisson(self):
        arrivals = NhppArrivals(0.5, DiurnalProfile([1.0] * 24))
        rng = random.Random(11)
        count = sum(1 for _ in arrivals.times(rng, 40_000.0))
        expected = 0.5 * 40_000.0
        assert abs(count - expected) < 5.0 * math.sqrt(expected)

    def test_window_respects_start_and_duration(self):
        arrivals = NhppArrivals(1.0, DiurnalProfile())
        rng = random.Random(5)
        start = 18 * SECONDS_PER_HOUR
        times = list(arrivals.times(rng, SECONDS_PER_HOUR, start_s=start))
        assert times, "the evening window must produce arrivals"
        assert all(start <= t < start + SECONDS_PER_HOUR for t in times)
        assert times == sorted(times)

    def test_zero_duration_yields_nothing(self):
        arrivals = NhppArrivals(1.0, DiurnalProfile())
        assert list(arrivals.times(random.Random(1), 0.0)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            NhppArrivals(0.0, DiurnalProfile())
        with pytest.raises(ValueError):
            list(NhppArrivals(1.0, DiurnalProfile())
                 .times(random.Random(1), -1.0))
