"""End-to-end observability determinism.

The tentpole contract, test-asserted: telemetry capture must never
perturb experiment results (zero-perturbation), sharded runs must
reproduce serial runs' telemetry byte for byte (artifact identity),
and the churn run's mislocalization burn-rate alert must fire during
the propagation gap and clear afterwards.
"""

import json

import pytest

from repro import telemetry as telemetry_mod
from repro.experiments.registry import builtin_registry
from repro.profile.slo import evaluate_slo, parse_slo_text
from repro.runtime.executor import TrialExecutor
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.exporters import to_json_artifact

POPULATION_OVERRIDES = {"districts": 2, "target_queries": 6000}
POPULATION_CONFIG = TelemetryConfig(trace_sample=0.05, window_ms=60000.0,
                                    tail_capacity=16)
CHURN_CONFIG = TelemetryConfig(trace_sample=1.0, window_ms=500.0,
                               tail_capacity=8)


def run_experiment(name, overrides, jobs, config=None):
    """Run one artifact, optionally under a telemetry facade."""
    tel = None
    if config is not None:
        tel = Telemetry.from_config(config)
        telemetry_mod.set_default(tel)
    try:
        run = TrialExecutor(jobs=jobs).run(builtin_registry().get(name),
                                           overrides)
    finally:
        telemetry_mod.clear_default()
    assert not run.failures
    return run, tel


def span_tuples(tel):
    return [(span.trace_id, span.span_id, span.parent_id, span.name,
             span.category, span.track, span.start_ms, span.end_ms,
             tuple(sorted(span.attrs.items())))
            for span in tel.tracer.finished]


def artifact_bytes(run, tel):
    """The byte-compared artifact view: everything except wall-clock meta."""
    document = to_json_artifact(
        tel.metrics, spans=tel.tracer.finished,
        meta={"executor": run.executor_stats.to_dict()},
        timeseries=tel.timeseries, tail=tel.tail)
    document.pop("meta")   # wall-clock chunk stats are allowed to differ
    return json.dumps(document, sort_keys=True)


@pytest.fixture(scope="module")
def population_runs():
    bare, _ = run_experiment("population", POPULATION_OVERRIDES, jobs=1)
    serial = run_experiment("population", POPULATION_OVERRIDES, jobs=1,
                            config=POPULATION_CONFIG)
    sharded = run_experiment("population", POPULATION_OVERRIDES, jobs=2,
                             config=POPULATION_CONFIG)
    return bare, serial, sharded


@pytest.fixture(scope="module")
def churn_runs():
    bare, _ = run_experiment("churn", {}, jobs=1)
    serial = run_experiment("churn", {}, jobs=1, config=CHURN_CONFIG)
    sharded = run_experiment("churn", {}, jobs=2, config=CHURN_CONFIG)
    return bare, serial, sharded


class TestZeroPerturbation:
    def test_population_digest_identical_with_telemetry_on(
            self, population_runs):
        bare, (serial, _), (sharded, _) = population_runs
        assert serial.result == bare.result
        assert sharded.result == bare.result

    def test_churn_result_identical_with_telemetry_on(self, churn_runs):
        bare, (serial, _), (sharded, _) = churn_runs
        assert serial.result == bare.result
        assert sharded.result == bare.result


class TestShardedByteIdentity:
    def test_population_artifact_identical(self, population_runs):
        _, (serial_run, serial_tel), (sharded_run, sharded_tel) = \
            population_runs
        assert span_tuples(sharded_tel) == span_tuples(serial_tel)
        assert sharded_tel.tracer.sampled_out == serial_tel.tracer.sampled_out
        assert sharded_tel.tail.items() == serial_tel.tail.items()
        assert artifact_bytes(sharded_run, sharded_tel) == \
            artifact_bytes(serial_run, serial_tel)

    def test_churn_artifact_identical(self, churn_runs):
        _, (serial_run, serial_tel), (sharded_run, sharded_tel) = churn_runs
        assert span_tuples(sharded_tel) == span_tuples(serial_tel)
        assert artifact_bytes(sharded_run, sharded_tel) == \
            artifact_bytes(serial_run, serial_tel)


class TestCapturedShape:
    def test_population_sampling_captured_sessions(self, population_runs):
        _, (run, tel), _ = population_runs
        # Calibration lookups ride the measure path; the engine's
        # session trees are the category="workload" spans.
        spans = [span for span in tel.tracer.finished
                 if span.category == "workload"]
        assert spans, "0.05 head sampling should still capture sessions"
        roots = [span for span in spans if span.parent_id is None]
        kids = [span for span in spans if span.parent_id is not None]
        assert all(span.name == "session" for span in roots)
        assert all(span.name == "query" for span in kids)
        root_ids = {span.span_id for span in roots}
        assert all(span.parent_id in root_ids for span in kids)
        # Head sampling kept a strict subset, and every dropped query
        # is accounted for in sampled_out (the engine counts queries it
        # pre-filtered; the measure path adds its own drops on top).
        queries = sum(row.queries for row in run.result.rows)
        assert 0 < len(kids) < queries
        assert len(kids) + tel.tracer.sampled_out >= queries

    def test_population_timeseries_accounts_every_query(
            self, population_runs):
        _, (run, tel), _ = population_runs
        document = tel.timeseries.to_dict()
        queries = sum(
            window["value"]
            for series in document["series"]
            if series["name"] == "repro_workload_queries"
            for window in series["windows"])
        latency_counts = sum(
            window["count"]
            for series in document["series"]
            if series["name"] == "repro_workload_total_ms"
            for window in series["windows"])
        assert queries == latency_counts
        assert queries == sum(row.queries for row in run.result.rows)

    def test_tail_exemplars_have_stage_attribution(self, population_runs):
        _, (_, tel), _ = population_runs
        exemplars = tel.tail.items()
        assert exemplars
        for exemplar in exemplars:
            stage_sum = sum(ms for _, ms in exemplar.stages)
            assert stage_sum == pytest.approx(exemplar.total_ms, abs=1e-6)
            assert dict(exemplar.attrs).get("deployment")

    def test_executor_stats_cover_every_trial(self, population_runs):
        _, (serial_run, _), (sharded_run, _) = population_runs
        for run in (serial_run, sharded_run):
            stats = run.executor_stats
            assert stats is not None
            assert sum(chunk.trials for chunk in stats.chunks) == \
                len(run.outcomes)
        assert serial_run.executor_stats.backend == "serial"
        assert sharded_run.executor_stats.backend == "pool"


class TestChurnBurnRate:
    RULES = (
        # The rollout at t=2600 ms invalidates every endpoint; until the
        # zone propagates, mislocalized answers burn the 5% budget at
        # >2x over both the 1 s and 2 s trailing windows — and the alert
        # must be quiet again for the final 3 windows (recovered).
        "mec-ldns-mec-cdns burnrate mislocalized/answers fires "
        "budget=0.05 factor=2 fast=2 slow=4 clear=3\n"
        # Sanity bound: the burn never reaches absurd levels for long
        # enough to trip a 20x factor over an 8-window fast view.
        "mec-ldns-mec-cdns burnrate mislocalized/answers quiet "
        "budget=0.05 factor=20 fast=8 slow=16\n")

    def test_alert_fires_during_propagation_gap_and_clears(
            self, churn_runs):
        _, (_, tel), _ = churn_runs
        verdict = evaluate_slo(parse_slo_text(self.RULES),
                               [tel.timeseries.to_dict()])
        assert verdict.ok, verdict.render_text()
        fires_check = verdict.checks[0]
        assert "fired in" in fires_check.detail
        assert fires_check.value is not None and fires_check.value >= 2.0

    def test_annotations_mark_the_churn_timeline(self, churn_runs):
        _, (_, tel), _ = churn_runs
        names = {annotation[1] for annotation in tel.timeseries.annotations()}
        assert {"churn", "zone_update", "zone_applied"} <= names
