"""Tests for the mobile network substrate."""

import statistics

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, SOA, NS
from repro.mobile import (
    CELLULAR_5G,
    CELLULAR_LTE,
    EvolvedPacketCore,
    HandoffController,
    NatMiddlebox,
    PROFILES,
    UserEquipment,
    WIFI_HOME,
    WIRED_CAMPUS,
)
from repro.mobile.nat import is_private
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.netsim.packet import Datagram
from repro.resolver import AuthoritativeServer


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def make_zone():
    zone = Zone(Name("cdn.test"))
    zone.add(rr("cdn.test", RecordType.SOA,
                SOA(Name("ns.cdn.test"), Name("admin.cdn.test"),
                    1, 2, 3, 4, 60)))
    zone.add(rr("cdn.test", RecordType.NS, NS(Name("ns.cdn.test"))))
    zone.add(rr("video.cdn.test", RecordType.A, A("203.0.113.99")))
    return zone


class MobileScenario:
    """UE -> eNB -> S-GW -> P-GW(NAT) -> internet DNS server."""

    def __init__(self, profile=CELLULAR_LTE, seed=3):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.epc = EvolvedPacketCore(
            self.net, "lte", profile,
            sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
            public_ips=["198.51.100.1", "198.51.100.2"])
        self.cell_a = self.epc.add_base_station("enb-a", "10.40.1.1")
        self.cell_b = self.epc.add_base_station(
            "enb-b", "10.40.1.2", mec_dns=Endpoint("10.96.0.10", 53))
        self.net.add_host("dns", "203.0.113.53")
        self.net.add_link(self.epc.pgw.name, "dns", Constant(15))
        self.dns = AuthoritativeServer(self.net, self.net.host("dns"),
                                       [make_zone()])
        self.ue = UserEquipment(self.net, "ue1", "10.45.0.2",
                                default_dns=Endpoint("203.0.113.53", 53))
        self.cell_a.attach(self.ue)

    def query(self, name="video.cdn.test"):
        stub = self.ue.stub()
        future = self.sim.spawn(stub.query(Name(name)))
        return self.sim.run_until_resolved(future)


class TestProfiles:
    def test_profile_registry(self):
        assert set(PROFILES) == {"wired-campus", "wifi-home",
                                 "cellular-mobile", "cellular-5g"}

    def test_latency_ordering(self):
        assert WIRED_CAMPUS.mean_one_way < WIFI_HOME.mean_one_way
        assert WIFI_HOME.mean_one_way < CELLULAR_LTE.mean_one_way
        assert CELLULAR_5G.mean_one_way < CELLULAR_LTE.mean_one_way

    def test_lte_radio_near_10ms_one_way(self):
        import random
        rng = random.Random(0)
        samples = [CELLULAR_LTE.radio.sample(rng) for _ in range(4000)]
        assert 9 <= statistics.median(samples) <= 16

    def test_cellular_variance_exceeds_wired(self):
        import random
        rng = random.Random(0)
        lte = [CELLULAR_LTE.radio.sample(rng) for _ in range(2000)]
        wired = [WIRED_CAMPUS.radio.sample(rng) for _ in range(2000)]
        assert statistics.pstdev(lte) > 10 * (statistics.pstdev(wired) + 0.01)


class TestNat:
    def test_is_private(self):
        assert is_private("10.1.2.3")
        assert is_private("192.168.0.5")
        assert is_private("172.16.9.9")
        assert not is_private("8.8.8.8")

    def test_dns_server_sees_public_gateway_ip(self):
        scenario = MobileScenario()
        seen = []
        original = scenario.dns.handle_query

        def spy(query, client):
            seen.append(client.ip)
            return original(query, client)

        scenario.dns.handle_query = spy
        result = scenario.query()
        assert result.addresses == ["203.0.113.99"]
        assert seen[0].startswith("198.51.100.")
        assert seen[0] != "10.45.0.2"

    def test_flows_spread_across_public_pool(self):
        scenario = MobileScenario()
        nat = scenario.epc.nat
        for index in range(4):
            private = Endpoint("10.45.0.2", 50000 + index)
            datagram = Datagram(private, Endpoint("203.0.113.53", 53), b"x")
            processed = nat.process(datagram, scenario.epc.pgw)
            assert processed.src.ip in nat.public_ips
        used_ips = {nat.mapping_for(Endpoint("10.45.0.2", 50000 + i)).ip
                    for i in range(4)}
        assert used_ips == {"198.51.100.1", "198.51.100.2"}

    def test_same_flow_keeps_mapping(self):
        nat = NatMiddlebox(["198.51.100.1"])
        host = type("H", (), {"owns": lambda self, ip: False})()
        private = Endpoint("10.45.0.2", 50000)
        first = nat.process(Datagram(private, Endpoint("1.2.3.4", 53), b"a"), host)
        second = nat.process(Datagram(private, Endpoint("1.2.3.4", 53), b"b"), host)
        assert first.src == second.src
        assert nat.active_flows == 1

    def test_intra_network_traffic_not_translated(self):
        nat = NatMiddlebox(["198.51.100.1"])
        host = type("H", (), {"owns": lambda self, ip: False})()
        datagram = Datagram(Endpoint("10.45.0.2", 50000),
                            Endpoint("10.96.0.10", 53), b"q")
        processed = nat.process(datagram, host)
        assert processed.src.ip == "10.45.0.2"  # MEC DNS sees the real client

    def test_empty_pool_rejected(self):
        from repro.errors import AddressError
        with pytest.raises(AddressError):
            NatMiddlebox([])


class TestEndToEnd:
    def test_query_roundtrip_over_lte(self):
        scenario = MobileScenario()
        result = scenario.query()
        assert result.addresses == ["203.0.113.99"]
        # Two radio legs (~10ms each) + backhaul + 2*15ms WAN: well over 40ms.
        assert result.query_time_ms > 40

    def test_5g_much_faster_than_lte(self):
        lte_times = [MobileScenario(CELLULAR_LTE, seed=s).query().query_time_ms
                     for s in range(5)]
        nr_times = [MobileScenario(CELLULAR_5G, seed=s).query().query_time_ms
                    for s in range(5)]
        assert statistics.fmean(nr_times) < statistics.fmean(lte_times) - 15


class TestHandoff:
    def test_handoff_moves_radio_link(self):
        scenario = MobileScenario()
        controller = HandoffController(scenario.net)
        record = controller.handoff(scenario.ue, scenario.cell_b)
        assert record.source == "enb-a"
        assert record.target == "enb-b"
        assert scenario.ue.base_station is scenario.cell_b
        # Old radio link is gone.
        from repro.errors import RoutingError
        with pytest.raises(RoutingError):
            scenario.net.link_between("ue1", "enb-a")

    def test_handoff_switches_dns_to_mec(self):
        scenario = MobileScenario()
        assert scenario.ue.dns == Endpoint("203.0.113.53", 53)
        controller = HandoffController(scenario.net)
        record = controller.handoff(scenario.ue, scenario.cell_b)
        assert record.dns_switched
        assert scenario.ue.dns == Endpoint("10.96.0.10", 53)
        assert scenario.ue.dns_switches == 1

    def test_restore_default_dns(self):
        scenario = MobileScenario()
        HandoffController(scenario.net).handoff(scenario.ue, scenario.cell_b)
        scenario.ue.restore_default_dns()
        assert scenario.ue.dns == Endpoint("203.0.113.53", 53)

    def test_handoff_requires_attachment(self):
        scenario = MobileScenario()
        other = UserEquipment(scenario.net, "ue2", "10.45.0.3")
        controller = HandoffController(scenario.net)
        with pytest.raises(ValueError):
            controller.handoff(other, scenario.cell_b)

    def test_handoff_to_same_cell_rejected(self):
        scenario = MobileScenario()
        controller = HandoffController(scenario.net)
        with pytest.raises(ValueError):
            controller.handoff(scenario.ue, scenario.cell_a)

    def test_queries_work_after_handoff(self):
        scenario = MobileScenario()
        # Give the MEC DNS endpoint a real server: place it on the S-GW LAN.
        scenario.net.add_host("mec-dns", "10.96.0.10")
        scenario.net.add_link("mec-dns", scenario.epc.sgw.name, Constant(0.5))
        AuthoritativeServer(scenario.net, scenario.net.host("mec-dns"),
                            [make_zone()])
        HandoffController(scenario.net).handoff(scenario.ue, scenario.cell_b)
        result = scenario.query()
        assert result.addresses == ["203.0.113.99"]
        assert result.server == Endpoint("10.96.0.10", 53)
