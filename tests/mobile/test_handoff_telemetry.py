"""HandoffController telemetry: counters, events, and lookup attribution.

The churn experiment splits post-churn failures between "the UE moved"
and "the zone data was stale"; that attribution rests on the controller
emitting a handoff event/counter pair and keeping faithful counts of
lookups reported after the handoff.
"""

from repro import telemetry
from repro.mobile import (CELLULAR_LTE, EvolvedPacketCore,
                          HandoffController, UserEquipment)
from repro.netsim import Endpoint, Network, RandomStreams, Simulator


class HandoffScenario:
    """UE attached to one of two cells, with telemetry observing."""

    def __init__(self):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(11))
        self.tel = telemetry.Telemetry().attach(self.net)
        epc = EvolvedPacketCore(
            self.net, "lte", CELLULAR_LTE,
            sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
            public_ips=["198.51.100.1"])
        self.cell_a = epc.add_base_station("enb-a", "10.40.1.1")
        self.cell_b = epc.add_base_station(
            "enb-b", "10.40.1.2", mec_dns=Endpoint("10.96.0.10", 53))
        self.ue = UserEquipment(self.net, "ue1", "10.45.0.2",
                                default_dns=Endpoint("203.0.113.53", 53))
        self.cell_a.attach(self.ue)
        self.controller = HandoffController(self.net)


class TestHandoffTelemetry:
    def test_handoff_counter_carries_target_and_dns_labels(self):
        scenario = HandoffScenario()
        scenario.controller.handoff(scenario.ue, scenario.cell_b)
        counter = scenario.tel.metrics.counter("repro_handoffs_total")
        assert counter.value(target="enb-b", dns_switched="True") == 1.0
        assert counter.total() == 1.0

    def test_handoff_emits_instant_event(self):
        scenario = HandoffScenario()
        scenario.controller.handoff(scenario.ue, scenario.cell_b)
        events = [span for span in scenario.tel.tracer.finished
                  if span.name == "handoff"]
        assert len(events) == 1
        event = events[0]
        assert event.start_ms == event.end_ms  # an instant, not a span
        assert event.attrs["ue"] == "ue1"
        assert event.attrs["source"] == "enb-a"
        assert event.attrs["target"] == "enb-b"
        assert event.attrs["dns_switched"] is True

    def test_post_handoff_lookup_attribution(self):
        scenario = HandoffScenario()
        scenario.controller.handoff(scenario.ue, scenario.cell_b)
        for mislocalized in (False, True, True):
            scenario.controller.note_post_handoff_lookup(
                scenario.ue, mislocalized)
        assert scenario.controller.post_handoff_lookups == 3
        assert scenario.controller.mislocalized_after_handoff == 2
        counter = scenario.tel.metrics.counter(
            "repro_post_handoff_lookups_total")
        assert counter.value(ue="ue1", mislocalized="True") == 2.0
        assert counter.value(ue="ue1", mislocalized="False") == 1.0

    def test_unobserved_controller_still_counts(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(12))  # no telemetry attached
        epc = EvolvedPacketCore(
            net, "lte", CELLULAR_LTE, sgw_ip="10.40.0.2",
            pgw_ip="10.40.0.1", public_ips=["198.51.100.1"])
        cell_a = epc.add_base_station("enb-a", "10.40.1.1")
        cell_b = epc.add_base_station("enb-b", "10.40.1.2")
        ue = UserEquipment(net, "ue1", "10.45.0.2")
        cell_a.attach(ue)
        controller = HandoffController(net)
        controller.handoff(ue, cell_b)
        controller.note_post_handoff_lookup(ue, True)
        assert controller.handoffs == 1
        assert controller.mislocalized_after_handoff == 1
