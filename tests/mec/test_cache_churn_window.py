"""CachePlugin: RFC 8767 stale answers inside a control-plane window.

Serve-stale during churn is the dangerous case the churn experiment
measures — a stale answer handed out *while a zone update is still
propagating* may point at an endpoint the orchestrator already removed.
The plugin counts those separately (``stale_served_during_churn``) via
its ``churn_window`` hook, and every stale answer must carry the
RFC 8914 "Stale Answer" extended error so clients can tell.
"""

from repro import telemetry
from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.mec import CoreDnsServer, Orchestrator
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, StubResolver

CDN_DOMAIN = "mycdn.ciab.test"
QNAME = f"video.{CDN_DOMAIN}"


def build_zone(address, ttl=30):
    zone = Zone(Name(CDN_DOMAIN))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.SOA, 300,
                            SOA(Name(f"ns.{CDN_DOMAIN}"),
                                Name(f"admin.{CDN_DOMAIN}"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.NS, 300,
                            NS(Name(f"ns.{CDN_DOMAIN}"))))
    zone.add(ResourceRecord(Name(QNAME), RecordType.A, ttl, A(address)))
    return zone


class ChurnWindowScenario:
    """client -- CoreDNS(cache, serve-stale) -- C-DNS that can die."""

    def __init__(self, with_telemetry=False):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(23))
        self.tel = (telemetry.Telemetry().attach(self.net)
                    if with_telemetry else None)
        node = self.net.add_host("node-a", "10.40.2.10")
        self.net.add_host("client", "10.40.3.7")
        self.net.add_host("cdns", "10.40.4.4")
        self.net.add_link("client", "node-a", Constant(0.2))
        self.net.add_link("node-a", "cdns", Constant(0.5))
        AuthoritativeServer(self.net, self.net.host("cdns"),
                            [build_zone("10.233.1.10")])
        orch = Orchestrator(self.net, "edge1")
        orch.register_node(node)
        self.coredns = CoreDnsServer(
            self.net, node, orch,
            stub_domains={Name(CDN_DOMAIN): Endpoint("10.40.4.4", 53)},
            serve_stale=True)
        self.cache_plugin = self.coredns.cache_plugin
        assert self.cache_plugin is not None

    def query(self):
        stub = StubResolver(self.net, self.net.host("client"),
                            self.coredns.endpoint, timeout=8000, retries=0)
        return self.sim.run_until_resolved(
            self.sim.spawn(stub.query(Name(QNAME))))

    def warm_expire_and_kill_cdns(self):
        fresh = self.query()
        assert fresh.addresses == ["10.233.1.10"] and not fresh.stale
        self.sim.run(until=self.sim.now + 60 * 1000)  # past the 30 s TTL
        self.net.host("cdns").down = True


class TestStaleDuringChurnWindow:
    def test_stale_inside_window_is_counted_and_marked(self):
        scenario = ChurnWindowScenario()
        scenario.warm_expire_and_kill_cdns()
        scenario.cache_plugin.churn_window = lambda: True
        result = scenario.query()
        assert result.status == "NOERROR"
        assert result.addresses == ["10.233.1.10"]
        assert result.stale
        ede = result.response.edns.extended_error
        assert ede is not None and ede.is_stale_answer
        assert scenario.cache_plugin.stale_served == 1
        assert scenario.cache_plugin.stale_served_during_churn == 1

    def test_stale_outside_window_is_not_churn_tainted(self):
        scenario = ChurnWindowScenario()
        scenario.warm_expire_and_kill_cdns()
        scenario.cache_plugin.churn_window = lambda: False
        result = scenario.query()
        assert result.stale
        assert scenario.cache_plugin.stale_served == 1
        assert scenario.cache_plugin.stale_served_during_churn == 0

    def test_no_hook_means_no_churn_accounting(self):
        scenario = ChurnWindowScenario()
        scenario.warm_expire_and_kill_cdns()
        assert scenario.cache_plugin.churn_window is None
        result = scenario.query()
        assert result.stale
        assert scenario.cache_plugin.stale_served_during_churn == 0

    def test_churn_stale_metric_emitted(self):
        scenario = ChurnWindowScenario(with_telemetry=True)
        scenario.warm_expire_and_kill_cdns()
        scenario.cache_plugin.churn_window = lambda: True
        assert scenario.query().stale
        counter = scenario.tel.metrics.counter(
            "repro_coredns_serve_stale_during_churn_total")
        assert counter.total() == 1.0
