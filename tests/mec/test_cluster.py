"""Tests for the orchestrator: nodes, pods, services, cluster IPs."""

import pytest

from repro.errors import CapacityError, MecError, ServiceNotFound
from repro.mec import Orchestrator
from repro.netsim import Constant, Network, RandomStreams, Simulator


@pytest.fixture
def cluster():
    sim = Simulator()
    net = Network(sim, RandomStreams(1))
    node_a = net.add_host("node-a", "10.40.2.10")
    node_b = net.add_host("node-b", "10.40.2.11")
    net.add_link("node-a", "node-b", Constant(0.1))
    orch = Orchestrator(net, "edge1")
    orch.register_node(node_a, capacity=2)
    orch.register_node(node_b, capacity=2)
    return net, orch


class TestServices:
    def test_cluster_ip_allocated_from_service_cidr(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns", namespace="kube-system")
        assert service.cluster_ip.startswith("10.96.")
        assert service.fqdn == "dns.kube-system.svc.cluster.local."

    def test_distinct_cluster_ips(self, cluster):
        _, orch = cluster
        a = orch.create_service("a")
        b = orch.create_service("b")
        assert a.cluster_ip != b.cluster_ip

    def test_duplicate_service_rejected(self, cluster):
        _, orch = cluster
        orch.create_service("dns")
        with pytest.raises(MecError):
            orch.create_service("dns")

    def test_service_lookup(self, cluster):
        _, orch = cluster
        created = orch.create_service("dns", namespace="kube-system")
        assert orch.service("dns", "kube-system") is created
        with pytest.raises(ServiceNotFound):
            orch.service("ghost")

    def test_resolve_service_name(self, cluster):
        _, orch = cluster
        service = orch.create_service("tr", namespace="cdn")
        assert orch.resolve_service_name("tr.cdn.svc.cluster.local.") is service
        assert orch.resolve_service_name("tr.cdn.svc.cluster.local") is service
        assert orch.resolve_service_name("no.cdn.svc.cluster.local.") is None


class TestPods:
    def test_deploy_binds_cluster_ip_to_first_pod(self, cluster):
        net, orch = cluster
        service = orch.create_service("dns")
        pod = orch.deploy_pod(service)
        assert service.active_pod is pod
        assert net.host_for_ip(service.cluster_ip) is pod.host
        assert pod.ip.startswith("10.233.")

    def test_pod_host_reachable_over_fabric(self, cluster):
        net, orch = cluster
        service = orch.create_service("dns")
        pod = orch.deploy_pod(service)
        assert net.path("node-b", pod.host.name)

    def test_starter_callback_runs(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns")
        pod = orch.deploy_pod(service, starter=lambda p: f"app@{p.name}")
        assert pod.app == f"app@{pod.name}"

    def test_capacity_enforced(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns")
        for _ in range(4):
            orch.deploy_pod(service)
        with pytest.raises(CapacityError):
            orch.deploy_pod(service)

    def test_kill_rebinds_cluster_ip(self, cluster):
        net, orch = cluster
        service = orch.create_service("dns")
        first = orch.deploy_pod(service)
        second = orch.deploy_pod(service)
        orch.kill_pod(first)
        assert not first.running
        assert service.active_pod is second
        assert net.host_for_ip(service.cluster_ip) is second.host

    def test_kill_last_pod_leaves_ip_unbound(self, cluster):
        net, orch = cluster
        service = orch.create_service("dns")
        pod = orch.deploy_pod(service)
        orch.kill_pod(pod)
        from repro.errors import AddressError
        with pytest.raises(AddressError):
            net.host_for_ip(service.cluster_ip)

    def test_kill_is_idempotent(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns")
        pod = orch.deploy_pod(service)
        orch.kill_pod(pod)
        orch.kill_pod(pod)  # no error

    def test_scale_up_and_down(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns")
        orch.scale(service, 3)
        assert len(service.ready_pods()) == 3
        orch.scale(service, 1)
        assert len(service.ready_pods()) == 1
        # Cluster IP still bound to a live pod after the scaling event.
        assert service.active_pod is not None
        assert service.active_pod.running

    def test_scale_negative_rejected(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns")
        with pytest.raises(ValueError):
            orch.scale(service, -1)

    def test_node_free_slots(self, cluster):
        _, orch = cluster
        service = orch.create_service("dns")
        orch.deploy_pod(service)
        assert orch.nodes[0].free_slots == 1

    def test_invalid_node_capacity(self, cluster):
        net, orch = cluster
        host = net.add_host("node-c", "10.40.2.12")
        with pytest.raises(ValueError):
            orch.register_node(host, capacity=0)
