"""Tests for the ReplicaController."""

import pytest

from repro.mec import Orchestrator, ReplicaController
from repro.netsim import Constant, Network, RandomStreams, Simulator


@pytest.fixture
def cluster():
    sim = Simulator()
    net = Network(sim, RandomStreams(3))
    node_a = net.add_host("node-a", "10.40.2.10")
    node_b = net.add_host("node-b", "10.40.2.11")
    net.add_link("node-a", "node-b", Constant(0.1))
    orch = Orchestrator(net, "edge1")
    orch.register_node(node_a, capacity=3)
    orch.register_node(node_b, capacity=3)
    service = orch.create_service("dns")
    return sim, net, orch, service


def starter(pod):
    return f"app@{pod.name}"


class TestReplicaController:
    def test_initial_reconcile_reaches_count(self, cluster):
        sim, net, orch, service = cluster
        controller = ReplicaController(orch, service, starter, replicas=2)
        assert controller.reconcile_once() == 2
        assert len(service.ready_pods()) == 2
        assert controller.reconcile_once() == 0  # converged

    def test_pod_death_triggers_restart(self, cluster):
        sim, net, orch, service = cluster
        controller = ReplicaController(orch, service, starter, replicas=2)
        controller.reconcile_once()
        victim = service.ready_pods()[0]
        orch.kill_pod(victim)
        assert controller.reconcile_once() == 1
        assert len(service.ready_pods()) == 2
        assert controller.restarts == 3

    def test_cluster_ip_survives_controller_restarts(self, cluster):
        sim, net, orch, service = cluster
        controller = ReplicaController(orch, service, starter, replicas=1)
        controller.reconcile_once()
        orch.kill_pod(service.ready_pods()[0])
        controller.reconcile_once()
        assert service.active_pod is not None
        assert net.host_for_ip(service.cluster_ip) is service.active_pod.host

    def test_capacity_exhaustion_not_fatal(self, cluster):
        sim, net, orch, service = cluster
        controller = ReplicaController(orch, service, starter, replicas=10)
        controller.reconcile_once()
        assert len(service.ready_pods()) == 6  # both nodes full
        assert controller.placement_failures == 1
        controller.reconcile_once()  # keeps running, keeps trying
        assert controller.placement_failures == 2

    def test_scale_down(self, cluster):
        sim, net, orch, service = cluster
        controller = ReplicaController(orch, service, starter, replicas=3)
        controller.reconcile_once()
        controller.scale_to(1)
        assert len(service.ready_pods()) == 1
        assert controller.reconcile_once() == 0

    def test_control_loop_runs_on_clock(self, cluster):
        sim, net, orch, service = cluster
        controller = ReplicaController(orch, service, starter, replicas=2,
                                       check_interval_ms=500)
        controller.start()
        sim.run(until=600)
        assert len(service.ready_pods()) == 2
        orch.kill_pod(service.ready_pods()[0])
        sim.run(until=1600)
        assert len(service.ready_pods()) == 2
        controller.stop()

    def test_invalid_replica_counts_rejected(self, cluster):
        sim, net, orch, service = cluster
        with pytest.raises(ValueError):
            ReplicaController(orch, service, starter, replicas=0)
        controller = ReplicaController(orch, service, starter, replicas=1)
        with pytest.raises(ValueError):
            controller.scale_to(0)
