"""Tests for the rewrite and loadbalance CoreDNS plugins."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.mec import CoreDnsServer, LoadBalancePlugin, Orchestrator, RewritePlugin
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import StubResolver


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(59))
    node = net.add_host("node", "10.40.2.10")
    net.add_host("ue", "10.45.0.2")
    net.add_link("ue", "node", Constant(2))
    orch = Orchestrator(net, "edge1")
    orch.register_node(node)
    # An internal service the rewrite target resolves to.
    service = orch.create_service("cdn-frontend", namespace="cdn")
    orch.deploy_pod(service)
    return sim, net, node, orch, service


def make_coredns(net, node, orch, front_plugins):
    return CoreDnsServer(net, node, orch, enable_cache=False,
                         front_plugins=front_plugins)


def ask(sim, net, server, name):
    stub = StubResolver(net, net.host("ue"), server.endpoint)
    return sim.run_until_resolved(sim.spawn(stub.query(Name(name))))


class TestRewritePlugin:
    def test_external_name_maps_to_cluster_service(self, world):
        sim, net, node, orch, service = world
        rewrite = RewritePlugin(
            from_suffix=Name("cdn.customer.example"),
            to_suffix=Name("cdn.svc.cluster.local"))
        coredns = make_coredns(net, node, orch, [rewrite])
        result = ask(sim, net, coredns,
                     "cdn-frontend.cdn.customer.example")
        assert result.status == "NOERROR"
        assert result.addresses == [service.cluster_ip]
        # The client-visible owner name is the *external* one.
        assert result.response.answers[0].name == \
            Name("cdn-frontend.cdn.customer.example")
        assert rewrite.rewritten == 1

    def test_uncovered_names_pass_through(self, world):
        sim, net, node, orch, service = world
        rewrite = RewritePlugin(Name("cdn.customer.example"),
                                Name("cdn.svc.cluster.local"))
        coredns = make_coredns(net, node, orch, [rewrite])
        result = ask(sim, net, coredns,
                     "cdn-frontend.cdn.svc.cluster.local")
        assert result.addresses == [service.cluster_ip]
        assert rewrite.rewritten == 0

    def test_map_and_unmap_are_inverse(self):
        rewrite = RewritePlugin(Name("a.example"), Name("b.internal"))
        mapped = rewrite.map_name(Name("www.x.a.example"))
        assert mapped == Name("www.x.b.internal")
        assert rewrite.unmap_name(mapped) == Name("www.x.a.example")
        assert rewrite.map_name(Name("other.test")) is None


class TestLoadBalancePlugin:
    def test_rotation_spreads_first_answers(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(3))
        net.add_host("dns", "10.0.0.53")
        net.add_host("ue", "10.0.0.2")
        net.add_link("ue", "dns", Constant(1))
        zone = Zone(Name("svc.test"))
        zone.add(ResourceRecord(Name("svc.test"), RecordType.SOA, 300,
                                SOA(Name("ns.svc.test"), Name("a.svc.test"),
                                    1, 2, 3, 4, 60)))
        zone.add(ResourceRecord(Name("svc.test"), RecordType.NS, 300,
                                NS(Name("ns.svc.test"))))
        for index in range(3):
            zone.add(ResourceRecord(Name("app.svc.test"), RecordType.A, 300,
                                    A(f"10.0.1.{index + 1}")))

        # Wrap an authoritative answer path with the loadbalance plugin
        # via a minimal chain-based server.
        from repro.resolver import AuthoritativeServer
        from repro.resolver.chain import Plugin, PluginChain, QueryContext

        class AuthPlugin(Plugin):
            name = "auth"

            def __init__(self, server):
                self.server = server

            def handle(self, ctx, next_plugin):
                return self.server.handle_query(ctx.query, ctx.client)
                yield  # pragma: no cover

        backend = AuthoritativeServer(net, net.add_host("backend",
                                                        "10.0.0.80"),
                                      [zone])
        lb = LoadBalancePlugin()
        chain = PluginChain([lb, AuthPlugin(backend)])

        firsts = []
        for _ in range(6):
            from repro.dnswire import make_query
            ctx = QueryContext(make_query(Name("app.svc.test"), msg_id=1),
                               Endpoint("10.0.0.2", 40000))
            response = sim.run_until_resolved(sim.spawn(chain.run(ctx)))
            firsts.append(response.answer_addresses()[0])
        assert set(firsts) == {"10.0.1.1", "10.0.1.2", "10.0.1.3"}

    def test_single_answer_untouched(self):
        from repro.dnswire import make_query, make_response
        from repro.resolver.chain import Plugin, PluginChain, QueryContext

        class OneAnswer(Plugin):
            name = "one"

            def handle(self, ctx, next_plugin):
                answer = ResourceRecord(ctx.qname, RecordType.A, 30,
                                        A("10.0.1.1"))
                return make_response(ctx.query, answers=[answer])
                yield  # pragma: no cover

        sim = Simulator()
        chain = PluginChain([LoadBalancePlugin(), OneAnswer()])
        ctx = QueryContext(make_query(Name("x.test"), msg_id=1),
                           Endpoint("10.0.0.2", 40000))
        response = sim.run_until_resolved(sim.spawn(chain.run(ctx)))
        assert response.answer_addresses() == ["10.0.1.1"]
