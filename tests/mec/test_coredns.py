"""Tests for the CoreDNS analog, split namespaces, ingress, and IP reuse."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.errors import QueryTimeout
from repro.mec import (
    CoreDnsServer,
    DosMitigation,
    IngressMonitor,
    Orchestrator,
    SplitNamespacePlugin,
)
from repro.mec.ipreuse import IpPlanResult, PublicIpPlan, SiteInventory
from repro.mec.namespaces import NamespacePolicy
from repro.mobile import UserEquipment
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.netsim.engine import ProcessFailed
from repro.resolver import AuthoritativeServer, StubResolver


def build_zone(domain, address):
    zone = Zone(Name(domain))
    zone.add(ResourceRecord(Name(domain), RecordType.SOA,
                            300, SOA(Name(f"ns.{domain}"),
                                     Name(f"admin.{domain}"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(domain), RecordType.NS, 300,
                            NS(Name(f"ns.{domain}"))))
    zone.add(ResourceRecord(Name(f"video.{domain}"), RecordType.A, 300,
                            A(address)))
    return zone


class MecDnsScenario:
    """UE + internal VNF querying a MEC CoreDNS with stub/forward plugins."""

    def __init__(self, split=None, enable_cache=True):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(17))
        # Cluster node + clients.
        node = self.net.add_host("node-a", "10.40.2.10")
        self.net.add_host("ue", "10.45.0.2")
        self.net.add_host("vnf", "10.40.3.7")
        self.net.add_link("ue", "node-a", Constant(5))
        self.net.add_link("vnf", "node-a", Constant(0.2))
        # Upstream provider L-DNS and the C-DNS (traffic router stand-in).
        self.net.add_host("provider-ldns", "203.0.113.10")
        self.net.add_host("cdns", "10.40.4.4")
        self.net.add_link("node-a", "provider-ldns", Constant(25))
        self.net.add_link("node-a", "cdns", Constant(0.5))
        AuthoritativeServer(self.net, self.net.host("provider-ldns"),
                            [build_zone("example.com", "198.18.1.1")])
        AuthoritativeServer(self.net, self.net.host("cdns"),
                            [build_zone("mycdn.ciab.test", "10.233.1.10")])
        # Orchestrator with one registered service for discovery tests.
        self.orch = Orchestrator(self.net, "edge1")
        self.orch.register_node(node)
        self.tr_service = self.orch.create_service("tr", namespace="cdn")
        self.orch.deploy_pod(self.tr_service)
        # CoreDNS runs on the node itself.
        self.split = split
        self.coredns = CoreDnsServer(
            self.net, node, self.orch,
            stub_domains={Name("mycdn.ciab.test"):
                          Endpoint("10.40.4.4", 53)},
            upstream=Endpoint("203.0.113.10", 53),
            enable_cache=enable_cache,
            front_plugins=[split] if split else None)

    def query_from(self, host_name, qname, timeout=3000, retries=0):
        stub = StubResolver(self.net, self.net.host(host_name),
                            self.coredns.endpoint, timeout=timeout,
                            retries=retries)
        future = self.sim.spawn(stub.query(Name(qname)))
        return self.sim.run_until_resolved(future)


class TestCoreDns:
    def test_kubernetes_plugin_resolves_service(self):
        scenario = MecDnsScenario()
        result = scenario.query_from("vnf", "tr.cdn.svc.cluster.local")
        assert result.addresses == [scenario.tr_service.cluster_ip]

    def test_unknown_service_nxdomain(self):
        scenario = MecDnsScenario()
        result = scenario.query_from("vnf", "ghost.cdn.svc.cluster.local")
        assert result.status == "NXDOMAIN"

    def test_service_with_no_ready_pods_nxdomain(self):
        scenario = MecDnsScenario()
        empty = scenario.orch.create_service("idle", namespace="cdn")
        result = scenario.query_from("vnf", "idle.cdn.svc.cluster.local")
        assert result.status == "NXDOMAIN"

    def test_stub_domain_forwards_to_cdns(self):
        scenario = MecDnsScenario()
        result = scenario.query_from("ue", "video.mycdn.ciab.test")
        assert result.addresses == ["10.233.1.10"]
        assert scenario.coredns.stub.forwarded == 1
        assert scenario.coredns.forward_plugin.forwarded == 0

    def test_default_forward_for_other_names(self):
        scenario = MecDnsScenario()
        result = scenario.query_from("ue", "video.example.com")
        assert result.addresses == ["198.18.1.1"]
        assert scenario.coredns.forward_plugin.forwarded == 1

    def test_cache_avoids_repeat_forwarding(self):
        scenario = MecDnsScenario()
        first = scenario.query_from("ue", "video.example.com")
        second = scenario.query_from("ue", "video.example.com")
        assert second.addresses == first.addresses
        assert scenario.coredns.forward_plugin.forwarded == 1
        assert second.query_time_ms < first.query_time_ms

    def test_cache_disabled_forwards_every_time(self):
        scenario = MecDnsScenario(enable_cache=False)
        scenario.query_from("ue", "video.example.com")
        scenario.query_from("ue", "video.example.com")
        assert scenario.coredns.forward_plugin.forwarded == 2

    def test_add_stub_domain_at_runtime(self):
        scenario = MecDnsScenario()
        scenario.coredns.add_stub_domain(Name("example.com"),
                                         Endpoint("10.40.4.4", 53))
        result = scenario.query_from("ue", "video.example.com")
        # example.com now routes to the cdns host, which refuses it.
        assert result.status == "REFUSED"

    def test_dead_upstream_servfail(self):
        scenario = MecDnsScenario(enable_cache=False)
        scenario.coredns.forward_plugin.upstream = Endpoint("10.99.9.9", 53)
        scenario.coredns.forward_plugin.timeout = 50
        result = scenario.query_from("ue", "video.example.com")
        assert result.status == "SERVFAIL"


class TestSplitNamespace:
    def make_split(self, policy=NamespacePolicy.REFUSE):
        split = SplitNamespacePlugin(internal_networks=["10.40.0.0/16"],
                                     policy=policy)
        split.register_public(Name("mycdn.ciab.test"))
        return split

    def test_internal_client_sees_cluster_names(self):
        split = self.make_split()
        scenario = MecDnsScenario(split=split)
        result = scenario.query_from("vnf", "tr.cdn.svc.cluster.local")
        assert result.status == "NOERROR"

    def test_public_client_resolves_public_namespace(self):
        split = self.make_split()
        scenario = MecDnsScenario(split=split)
        result = scenario.query_from("ue", "video.mycdn.ciab.test")
        assert result.addresses == ["10.233.1.10"]

    def test_public_client_refused_for_internal_names(self):
        split = self.make_split()
        scenario = MecDnsScenario(split=split)
        result = scenario.query_from("ue", "tr.cdn.svc.cluster.local")
        assert result.status == "REFUSED"
        assert split.refused == 1

    def test_ignore_policy_stays_silent(self):
        split = self.make_split(NamespacePolicy.IGNORE)
        scenario = MecDnsScenario(split=split)
        with pytest.raises(ProcessFailed) as excinfo:
            scenario.query_from("ue", "tr.cdn.svc.cluster.local",
                                timeout=100)
        assert isinstance(excinfo.value.__cause__, QueryTimeout)
        assert split.ignored == 1

    def test_unregister_public(self):
        split = self.make_split()
        split.unregister_public(Name("mycdn.ciab.test"))
        scenario = MecDnsScenario(split=split)
        result = scenario.query_from("ue", "video.mycdn.ciab.test")
        assert result.status == "REFUSED"

    def test_is_public_respects_suffixes(self):
        split = self.make_split()
        assert split.is_public(Name("a.b.mycdn.ciab.test"))
        assert not split.is_public(Name("mycdn.ciab.test.evil.com"))


class TestIngress:
    def test_rate_estimation(self):
        monitor = IngressMonitor(window_ms=1000, threshold_qps=10)
        for ms in range(0, 500, 100):
            monitor.record(float(ms))
        assert monitor.rate_qps(500.0) == pytest.approx(5.0)

    def test_events_expire_from_window(self):
        monitor = IngressMonitor(window_ms=1000, threshold_qps=10)
        monitor.record(0.0)
        assert monitor.rate_qps(2000.0) == 0.0

    def test_overload_detection(self):
        monitor = IngressMonitor(window_ms=1000, threshold_qps=5)
        for ms in range(10):
            monitor.record(float(ms))
        assert monitor.overloaded(10.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            IngressMonitor(window_ms=0)

    def test_mitigation_switches_and_restores(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(2))
        ue = UserEquipment(net, "ue9", "10.45.0.9",
                           default_dns=Endpoint("10.96.0.10", 53))
        monitor = IngressMonitor(window_ms=1000, threshold_qps=5)
        mitigation = DosMitigation(monitor,
                                   mec_dns=Endpoint("10.96.0.10", 53),
                                   provider_ldns=Endpoint("203.0.113.10", 53))
        mitigation.manage(ue)
        for ms in range(10):
            monitor.record(float(ms))
        assert mitigation.evaluate(10.0)
        assert ue.dns == Endpoint("203.0.113.10", 53)
        # Load subsides: restored to the MEC DNS.
        assert not mitigation.evaluate(5000.0)
        assert ue.dns == Endpoint("10.96.0.10", 53)
        assert mitigation.activations == 1


class TestIpReuse:
    def test_dedicated_counts_every_component(self):
        site = SiteInventory("atl1", cdn_domains=20, cache_servers=8,
                             routers=1, ldns_instances=1)
        assert PublicIpPlan.dedicated_ips(site) == 30

    def test_shared_plan_is_one_ip_per_site(self):
        sites = [SiteInventory(f"site{i}", 20, 8, 1, 1) for i in range(10)]
        result = PublicIpPlan(sites).evaluate()
        assert result.shared_total == 10
        assert result.dedicated_total == 300
        assert result.savings_factor == pytest.approx(30.0)

    def test_result_type(self):
        result = PublicIpPlan([]).evaluate()
        assert isinstance(result, IpPlanResult)
        assert result.savings_factor == float("inf")
