"""Edge cases in the CoreDNS analog: negative caching, dead stubs, TTLs."""

import pytest

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.mec import CoreDnsServer, Orchestrator
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, StubResolver


def build_zone():
    zone = Zone(Name("example.com"))
    zone.add(ResourceRecord(Name("example.com"), RecordType.SOA, 300,
                            SOA(Name("ns.example.com"),
                                Name("a.example.com"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("example.com"), RecordType.NS, 300,
                            NS(Name("ns.example.com"))))
    zone.add(ResourceRecord(Name("www.example.com"), RecordType.A, 300,
                            A("198.18.0.9")))
    zone.add(ResourceRecord(Name("zero.example.com"), RecordType.A, 0,
                            A("198.18.0.10")))
    return zone


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, RandomStreams(19))
    node = net.add_host("node", "10.40.2.10")
    net.add_host("ue", "10.45.0.2")
    net.add_host("upstream", "203.0.113.10")
    net.add_link("ue", "node", Constant(2))
    net.add_link("node", "upstream", Constant(20))
    AuthoritativeServer(net, net.host("upstream"), [build_zone()])
    orch = Orchestrator(net, "edge1")
    orch.register_node(node)
    coredns = CoreDnsServer(net, node, orch,
                            upstream=Endpoint("203.0.113.10", 53))
    stub = StubResolver(net, net.host("ue"), coredns.endpoint)
    return sim, net, coredns, stub


def ask(sim, stub, name):
    return sim.run_until_resolved(sim.spawn(stub.query(Name(name))))


class TestCoreDnsEdgeCases:
    def test_nxdomain_negatively_cached(self, world):
        sim, net, coredns, stub = world
        first = ask(sim, stub, "ghost.example.com")
        assert first.status == "NXDOMAIN"
        forwarded = coredns.forward_plugin.forwarded
        second = ask(sim, stub, "ghost.example.com")
        assert second.status == "NXDOMAIN"
        assert coredns.forward_plugin.forwarded == forwarded
        assert second.query_time_ms < first.query_time_ms

    def test_zero_ttl_answers_never_cached(self, world):
        sim, net, coredns, stub = world
        ask(sim, stub, "zero.example.com")
        ask(sim, stub, "zero.example.com")
        assert coredns.forward_plugin.forwarded == 2

    def test_positive_cache_expires(self, world):
        sim, net, coredns, stub = world
        ask(sim, stub, "www.example.com")
        sim.run(until=sim.now + 400 * 1000)  # beyond the 300s TTL
        ask(sim, stub, "www.example.com")
        assert coredns.forward_plugin.forwarded == 2

    def test_dead_stub_domain_upstream_servfails(self, world):
        sim, net, coredns, stub = world
        coredns.add_stub_domain(Name("dead.test"),
                                Endpoint("10.99.9.9", 53))
        coredns.stub.timeout = 50
        result = ask(sim, stub, "x.dead.test")
        assert result.status == "SERVFAIL"
        # The client retries SERVFAIL like a transport failure, so the
        # stub-domain plugin forwards once per client attempt.
        assert result.attempts == stub.retries + 1
        assert coredns.stub.forwarded == stub.retries + 1

    def test_stub_domain_beats_default_forward(self, world):
        sim, net, coredns, stub = world
        # example.com now has a dedicated (dead) upstream: the default
        # forward path must NOT be used as a silent fallback.
        coredns.add_stub_domain(Name("example.com"),
                                Endpoint("10.99.9.9", 53))
        coredns.stub.timeout = 50
        result = ask(sim, stub, "www.example.com")
        assert result.status == "SERVFAIL"
        assert coredns.forward_plugin.forwarded == 0
