"""Tests for the client fallback strategies (multicast, timeout)."""

import pytest

from repro.core import FallbackClient
from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.mec.namespaces import NamespacePolicy, SplitNamespacePlugin
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.netsim.engine import ProcessFailed
from repro.resolver import AuthoritativeServer


def build_zone(domain, address):
    zone = Zone(Name(domain))
    zone.add(ResourceRecord(Name(domain), RecordType.SOA, 300,
                            SOA(Name(f"ns.{domain}"), Name(f"a.{domain}"),
                                1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(domain), RecordType.NS, 300,
                            NS(Name(f"ns.{domain}"))))
    zone.add(ResourceRecord(Name(f"video.{domain}"), RecordType.A, 300,
                            A(address)))
    return zone


class FallbackScenario:
    """UE with a fast MEC DNS (CDN domain only) and a slow provider L-DNS."""

    def __init__(self, mec_silent_for_other=False):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(8))
        self.net.add_host("ue", "10.45.0.2")
        self.net.add_host("mec-dns", "10.96.0.10")
        self.net.add_host("provider", "203.0.113.10")
        self.net.add_link("ue", "mec-dns", Constant(3))
        self.net.add_link("ue", "provider", Constant(40))
        # The MEC DNS serves only the CDN domain; policy for the rest
        # depends on the experiment (REFUSE vs IGNORE).
        policy = (NamespacePolicy.IGNORE if mec_silent_for_other
                  else NamespacePolicy.REFUSE)
        split = SplitNamespacePlugin(internal_networks=["10.96.0.0/16"],
                                     policy=policy)
        split.register_public(Name("mycdn.ciab.test"))
        self.split = split

        class _FilteredAuthority(AuthoritativeServer):
            """An authoritative MEC DNS behind the namespace policy."""

            def handle_query(self, query, client):
                if not split.is_public(query.question.name):
                    if policy is NamespacePolicy.IGNORE:
                        split.ignored += 1
                        return None
                    split.refused += 1
                    from repro.dnswire.message import make_response
                    from repro.dnswire.types import Rcode
                    return make_response(query, rcode=Rcode.REFUSED)
                return super().handle_query(query, client)

        _FilteredAuthority(self.net, self.net.host("mec-dns"),
                           [build_zone("mycdn.ciab.test", "10.233.1.10")])
        AuthoritativeServer(self.net, self.net.host("provider"),
                            [build_zone("mycdn.ciab.test", "198.18.0.1"),
                             build_zone("example.com", "198.18.0.2")])
        self.client = FallbackClient(
            self.net, self.net.host("ue"),
            mec_dns=Endpoint("10.96.0.10", 53),
            provider_ldns=Endpoint("203.0.113.10", 53),
            mec_timeout=30)

    def run(self, strategy, name):
        method = getattr(self.client, strategy)
        future = self.sim.spawn(method(Name(name)))
        return self.sim.run_until_resolved(future)


class TestRace:
    def test_mec_wins_for_cdn_domain(self):
        scenario = FallbackScenario()
        result = scenario.run("race", "video.mycdn.ciab.test")
        assert result.addresses == ["10.233.1.10"]
        assert not result.used_fallback
        assert result.latency_ms < 10
        assert scenario.client.mec_wins == 1

    def test_provider_wins_for_non_mec_domain(self):
        scenario = FallbackScenario()
        result = scenario.run("race", "video.example.com")
        assert result.addresses == ["198.18.0.2"]
        assert result.used_fallback
        assert scenario.client.provider_wins == 1

    def test_race_overhead_small_for_non_mec_content(self):
        # The paper: fallback "adds only a small overhead" for non-MEC
        # names.  With multicast the overhead is zero extra round trips.
        scenario = FallbackScenario()
        result = scenario.run("race", "video.example.com")
        assert result.latency_ms == pytest.approx(80, abs=10)

    def test_race_when_mec_is_silent(self):
        scenario = FallbackScenario(mec_silent_for_other=True)
        result = scenario.run("race", "video.example.com")
        assert result.addresses == ["198.18.0.2"]


class TestTimeoutFallback:
    def test_mec_answers_directly(self):
        scenario = FallbackScenario()
        result = scenario.run("timeout_fallback", "video.mycdn.ciab.test")
        assert result.addresses == ["10.233.1.10"]
        assert not result.used_fallback

    def test_refused_triggers_fallback_immediately(self):
        scenario = FallbackScenario()
        result = scenario.run("timeout_fallback", "video.example.com")
        assert result.addresses == ["198.18.0.2"]
        assert result.used_fallback
        # REFUSED comes back in ~6ms, so total is ~6 + 80.
        assert result.latency_ms < 100

    def test_silent_mec_costs_the_timeout(self):
        scenario = FallbackScenario(mec_silent_for_other=True)
        result = scenario.run("timeout_fallback", "video.example.com")
        assert result.used_fallback
        assert result.latency_ms == pytest.approx(30 + 80, abs=12)

    def test_both_dead_raises(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(4))
        net.add_host("ue", "10.45.0.2")
        client = FallbackClient(net, net.host("ue"),
                                mec_dns=Endpoint("10.96.0.10", 53),
                                provider_ldns=Endpoint("203.0.113.10", 53),
                                mec_timeout=20, total_timeout=50)
        future = sim.spawn(client.timeout_fallback(Name("x.test")))
        with pytest.raises(ProcessFailed):
            sim.run_until_resolved(future)
