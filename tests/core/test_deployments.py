"""Tests for the Figure 5 testbed deployments and their shape claims."""

import pytest

from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    DEPLOYMENT_LABELS,
    TESTBED_5G,
    build_testbed,
)
from repro.measure import measure_deployment_queries, summarize


def mean_latency(key, seed=7, count=15, **kwargs):
    testbed = build_testbed(key, seed=seed, **kwargs)
    measurements = measure_deployment_queries(testbed, count)
    return summarize([m.latency_ms for m in measurements]).mean, measurements


class TestBuilders:
    def test_all_six_deployments_build_and_resolve(self):
        for key in DEPLOYMENT_KEYS:
            testbed = build_testbed(key, seed=1)
            measurements = measure_deployment_queries(testbed, 3)
            assert all(m.status == "NOERROR" for m in measurements), key
            assert all(m.addresses for m in measurements), key

    def test_unknown_deployment_rejected(self):
        with pytest.raises(ValueError):
            build_testbed("carrier-pigeon")

    def test_labels_cover_all_keys(self):
        assert set(DEPLOYMENT_LABELS) == set(DEPLOYMENT_KEYS)

    def test_answers_point_at_mec_caches(self):
        testbed = build_testbed("mec-ldns-mec-cdns", seed=2)
        measurements = measure_deployment_queries(testbed, 5)
        for measurement in measurements:
            assert measurement.addresses[0] in testbed.expected_cache_ips


class TestFigure5Shape:
    """The paper's headline relative claims, asserted with margins."""

    def test_ordering_of_the_six_bars(self):
        means = {key: mean_latency(key)[0] for key in DEPLOYMENT_KEYS}
        assert means["mec-ldns-mec-cdns"] < means["mec-ldns-lan-cdns"]
        assert means["mec-ldns-lan-cdns"] < means["mec-ldns-wan-cdns"]
        assert means["mec-ldns-wan-cdns"] < means["google-dns"]
        assert means["mec-ldns-wan-cdns"] < means["lan-ldns"]
        assert means["google-dns"] < means["cloudflare-dns"]

    def test_only_mec_options_fit_the_20ms_envelope(self):
        means = {key: mean_latency(key)[0] for key in DEPLOYMENT_KEYS}
        assert means["mec-ldns-mec-cdns"] < 20
        assert means["mec-ldns-lan-cdns"] < 20
        for key in ("mec-ldns-wan-cdns", "lan-ldns", "google-dns",
                    "cloudflare-dns"):
            assert means[key] > 20

    def test_mec_vs_lan_gap_is_about_5ms(self):
        mec, _ = mean_latency("mec-ldns-mec-cdns")
        lan, _ = mean_latency("mec-ldns-lan-cdns")
        assert 3 <= lan - mec <= 8

    def test_up_to_9x_faster_than_non_mec_resolvers(self):
        mec, _ = mean_latency("mec-ldns-mec-cdns")
        cloudflare, _ = mean_latency("cloudflare-dns")
        assert cloudflare / mec > 7.5

    def test_wireless_leg_dominates_the_mec_bar(self):
        _, measurements = mean_latency("mec-ldns-mec-cdns")
        wireless = summarize([m.wireless_ms for m in measurements]).mean
        total = summarize([m.latency_ms for m in measurements]).mean
        assert wireless / total > 0.6
        assert wireless == pytest.approx(10, abs=3)

    def test_5g_shrinks_the_wireless_component(self):
        lte, lte_ms = mean_latency("mec-ldns-mec-cdns")
        nr, nr_ms = mean_latency("mec-ldns-mec-cdns", profile=TESTBED_5G)
        lte_wireless = summarize([m.wireless_ms for m in lte_ms]).mean
        nr_wireless = summarize([m.wireless_ms for m in nr_ms]).mean
        assert nr_wireless < lte_wireless / 3
        assert nr < lte


class TestMeasurementHarness:
    def test_warmup_excluded(self):
        testbed = build_testbed("mec-ldns-mec-cdns", seed=3)
        measurements = measure_deployment_queries(testbed, 4, warmup=2)
        assert len(measurements) == 4

    def test_positive_count_required(self):
        testbed = build_testbed("mec-ldns-mec-cdns", seed=3)
        with pytest.raises(ValueError):
            measure_deployment_queries(testbed, 0)

    def test_wireless_plus_resolver_equals_total(self):
        testbed = build_testbed("mec-ldns-wan-cdns", seed=3)
        for m in measure_deployment_queries(testbed, 5):
            assert m.wireless_ms + m.resolver_ms == pytest.approx(
                m.latency_ms, abs=1e-6)
