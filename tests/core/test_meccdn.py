"""Tests for the MEC-CDN site assembly (Figure 4)."""

import pytest

from repro.cdn import ContentCatalog, HttpClient
from repro.core import MecCdnSite
from repro.dnswire import Name
from repro.mec.namespaces import NamespacePolicy
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import StubResolver


class SiteScenario:
    def __init__(self, **site_kwargs):
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(33))
        nodes = []
        for index in range(2):
            node = self.net.add_host(f"node-{index}", f"10.40.2.{10 + index}")
            nodes.append(node)
        self.net.add_link("node-0", "node-1", Constant(0.2))
        self.net.add_host("ue", "10.45.0.2")
        self.net.add_link("ue", "node-0", Constant(5))
        self.catalog = ContentCatalog()
        self.item = self.catalog.add_object(
            Name("video.demo1.mycdn.ciab.test"), "/seg1.ts", 200_000)
        self.site = MecCdnSite(self.net, "edge1", nodes, self.catalog,
                               **site_kwargs)

    def query(self, qname="video.demo1.mycdn.ciab.test", host="ue"):
        stub = StubResolver(self.net, self.net.host(host),
                            self.site.ldns_endpoint)
        future = self.sim.spawn(stub.query(Name(qname)))
        return self.sim.run_until_resolved(future)


class TestMecCdnSite:
    def test_single_hop_resolution_to_edge_cache(self):
        scenario = SiteScenario()
        result = scenario.query()
        assert result.status == "NOERROR"
        assert result.addresses[0] in [cache.endpoint.ip
                                       for cache in scenario.site.caches]
        # Resolution fully contained at MEC: one stub-domain forward.
        assert scenario.site.ldns.stub.forwarded == 1

    def test_end_to_end_dns_plus_fetch(self):
        scenario = SiteScenario()
        cache_ip = scenario.query().addresses[0]
        client = HttpClient(scenario.net, scenario.net.host("ue"))
        future = scenario.sim.spawn(client.fetch(scenario.item.url, cache_ip))
        fetched = scenario.sim.run_until_resolved(future)
        assert fetched.status == 200
        assert fetched.cache_hit  # warmed caches

    def test_cluster_ip_is_what_clients_use(self):
        scenario = SiteScenario()
        # The UE talks to the CoreDNS service cluster IP (10.96/16), not
        # a pod or node address — the paper's no-public-IPs point.
        assert scenario.site.ldns_endpoint.ip.startswith("10.96.")

    def test_public_namespace_blocks_cluster_names_for_ue(self):
        scenario = SiteScenario()
        result = scenario.query("trafficrouter.cdn.svc.cluster.local")
        assert result.status == "REFUSED"

    def test_internal_namespace_serves_cluster_names(self):
        scenario = SiteScenario()
        vnf = scenario.net.add_host("vnf", "10.40.3.3")
        scenario.net.add_link("vnf", "node-0", Constant(0.2))
        result = scenario.query("trafficrouter.cdn.svc.cluster.local",
                                host="vnf")
        assert result.status == "NOERROR"
        assert result.addresses == [scenario.site.cdns_service.cluster_ip]

    def test_warm_caches_hold_domain_content(self):
        scenario = SiteScenario()
        for cache in scenario.site.caches:
            assert cache.contains(scenario.item.url)

    def test_unwarmed_site(self):
        scenario = SiteScenario(warm_caches=False)
        for cache in scenario.site.caches:
            assert not cache.contains(scenario.item.url)

    def test_scaling_event_keeps_cdns_reachable(self):
        scenario = SiteScenario()
        first = scenario.query()
        # Kill the C-DNS pod and deploy a replacement (scaling event).
        site = scenario.site
        old_pod = site.cdns_pod
        new_pod = site.orchestrator.deploy_pod(site.cdns_service,
                                               starter=site._start_cdns)
        site.orchestrator.kill_pod(old_pod)
        old_pod.app.sock.close()
        # The stub domain still points at the same fixed cluster IP.
        second = scenario.query()
        assert second.status == "NOERROR"
        assert second.addresses[0] in [cache.endpoint.ip
                                       for cache in site.caches]

    def test_publish_additional_domain(self):
        scenario = SiteScenario()
        scenario.site.publish_domain(Name("othercdn.test"),
                                     scenario.site.cdns_endpoint)
        assert scenario.site.split_namespace.is_public(
            Name("x.othercdn.test"))

    def test_ignore_policy_configurable(self):
        scenario = SiteScenario(namespace_policy=NamespacePolicy.IGNORE)
        assert scenario.site.split_namespace.policy == NamespacePolicy.IGNORE

    def test_requires_nodes(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(1))
        with pytest.raises(ValueError):
            MecCdnSite(net, "edge1", [], ContentCatalog())

    def test_answer_not_pinned_with_ttl_zero(self):
        scenario = SiteScenario()
        # answer_ttl=0 (default): the L-DNS cache must not pin the answer,
        # so every query exercises the router.
        scenario.query()
        scenario.query()
        assert scenario.site.ldns.stub.forwarded == 2
