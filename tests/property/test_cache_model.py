"""Model-based test: DnsCache vs. a reference implementation.

Hypothesis drives random sequences of inserts, negative inserts, clock
advances, and probes against both the real cache (unbounded capacity) and
an obviously-correct dictionary model; any divergence in outcome is a
bug in the cache's TTL or keying logic.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dnswire import Name, RecordType, ResourceRecord
from repro.dnswire.rdata import A
from repro.resolver.cache import CacheOutcome, DnsCache

NAMES = [Name(f"host{i}.example.com") for i in range(5)]
ADDRESSES = [f"192.0.2.{i}" for i in range(1, 6)]


class CacheModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = DnsCache()
        self.now = 0.0
        # name -> ("pos", addresses, expiry) | ("neg", outcome, expiry)
        self.model = {}

    @rule(name=st.sampled_from(NAMES), address=st.sampled_from(ADDRESSES),
          ttl=st.integers(min_value=1, max_value=600))
    def insert_positive(self, name, address, ttl):
        record = ResourceRecord(name, RecordType.A, ttl, A(address))
        self.cache.put_records([record], self.now)
        self.model[name] = ("pos", [address], self.now + ttl * 1000.0)

    @rule(name=st.sampled_from(NAMES),
          ttl=st.integers(min_value=1, max_value=600))
    def insert_nxdomain(self, name, ttl):
        self.cache.put_negative(name, RecordType.A,
                                CacheOutcome.NEGATIVE_NXDOMAIN, ttl, self.now)
        self.model[name] = ("neg", CacheOutcome.NEGATIVE_NXDOMAIN,
                            self.now + ttl * 1000.0)

    @rule(delta=st.floats(min_value=0, max_value=400_000))
    def advance_clock(self, delta):
        self.now += delta

    @rule(name=st.sampled_from(NAMES))
    def probe(self, name):
        answer = self.cache.get(name, RecordType.A, self.now)
        expected = self.model.get(name)
        if expected is None or expected[2] <= self.now:
            assert answer.is_miss, f"{name}: expected miss, got {answer}"
            return
        kind, payload, expiry = expected
        if kind == "pos":
            assert answer.outcome == CacheOutcome.HIT
            assert [r.rdata.address for r in answer.records] == payload
            remaining_s = (expiry - self.now) / 1000.0
            for record in answer.records:
                assert 0 <= record.ttl <= remaining_s
        else:
            assert answer.outcome == payload

    @invariant()
    def size_bounded_by_model(self):
        # The cache may hold expired entries until probed, so it can only
        # be >= the live model entries, never out of sync on probes.
        live = sum(1 for _, _, expiry in self.model.values()
                   if expiry > self.now)
        assert len(self.cache) >= 0
        assert live <= len(NAMES)


TestCacheModel = CacheModel.TestCase
