"""Property tests on core routing/NAT/hashing invariants."""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.cdn import CacheServer, ContentCatalog
from repro.cdn.router import _HashRing
from repro.mobile.nat import NatMiddlebox
from repro.netsim import Network, RandomStreams, Simulator
from repro.netsim.packet import Datagram, Endpoint


def build_caches(count):
    sim = Simulator()
    net = Network(sim, RandomStreams(1))
    catalog = ContentCatalog()
    caches = []
    for index in range(count):
        host = net.add_host(f"c{index}", f"10.233.0.{index + 1}")
        caches.append(CacheServer(net, host, catalog))
    return caches


class TestHashRing:
    def test_balance_over_many_keys(self):
        caches = build_caches(8)
        ring = _HashRing(caches)
        counts = {cache.name: 0 for cache in caches}
        for index in range(4000):
            pick = ring.pick(f"object-{index}", lambda c: True)
            counts[pick.name] += 1
        shares = [count / 4000 for count in counts.values()]
        # With 64 vnodes per cache the split stays within ~3x of fair.
        assert min(shares) > 1 / (8 * 3)
        assert max(shares) < 3 / 8

    def test_minimal_disruption_on_cache_loss(self):
        caches = build_caches(8)
        ring = _HashRing(caches)
        keys = [f"object-{index}" for index in range(1500)]
        before = {key: ring.pick(key, lambda c: True) for key in keys}
        victim = caches[3]
        after = {key: ring.pick(key, lambda c: c is not victim)
                 for key in keys}
        moved = [key for key in keys if before[key] is not after[key]]
        # Only keys that lived on the victim may move.
        assert all(before[key] is victim for key in moved)
        assert moved  # the victim did own something

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_pick_is_deterministic(self, key):
        caches = build_caches(4)
        ring = _HashRing(caches)
        first = ring.pick(key, lambda c: True)
        assert all(ring.pick(key, lambda c: True) is first
                   for _ in range(3))

    def test_empty_ring_returns_none(self):
        ring = _HashRing([])
        assert ring.pick("anything", lambda c: True) is None


class _FakeHost:
    def owns(self, ip):
        return False


_flows = st.lists(
    st.tuples(st.integers(2, 250), st.integers(1024, 65000)),
    min_size=1, max_size=40, unique=True)


class TestNatProperties:
    @given(_flows)
    @settings(max_examples=60, deadline=None)
    def test_forward_reverse_bijection(self, flows):
        nat = NatMiddlebox(["198.51.100.1", "198.51.100.2"])
        host = _FakeHost()
        publics = {}
        for last_octet, port in flows:
            private = Endpoint(f"10.45.0.{last_octet}", port)
            out = nat.process(
                Datagram(private, Endpoint("203.0.113.9", 53), b"q"), host)
            publics[private] = out.src
        # Distinct privates map to distinct publics...
        assert len(set(publics.values())) == len(publics)
        # ...and every reply translates back to exactly its private.
        for private, public in publics.items():
            reply = nat.process(
                Datagram(Endpoint("203.0.113.9", 53), public, b"r"), host)
            assert reply.dst == private

    @given(_flows)
    @settings(max_examples=30, deadline=None)
    def test_repeat_packets_keep_mapping(self, flows):
        nat = NatMiddlebox(["198.51.100.1"])
        host = _FakeHost()
        for last_octet, port in flows:
            private = Endpoint(f"10.45.0.{last_octet}", port)
            first = nat.process(
                Datagram(private, Endpoint("203.0.113.9", 53), b"a"), host)
            second = nat.process(
                Datagram(private, Endpoint("203.0.113.9", 53), b"b"), host)
            assert first.src == second.src

    @given(st.integers(2, 250), st.integers(1024, 65000))
    @settings(max_examples=40, deadline=None)
    def test_public_addresses_come_from_pool(self, last_octet, port):
        pool = ["198.51.100.1", "198.51.100.2", "198.51.100.3"]
        nat = NatMiddlebox(pool)
        out = nat.process(
            Datagram(Endpoint(f"10.45.0.{last_octet}", port),
                     Endpoint("203.0.113.9", 53), b"q"), _FakeHost())
        assert out.src.ip in pool


class TestPoolAddressProperties:
    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_pool_addresses_always_inside_cidr(self, key):
        from repro.cdn.providers import PROVIDERS
        for provider in PROVIDERS.values():
            for pool in provider.pools:
                address = pool.address_for(key)
                assert ipaddress.IPv4Address(address) in \
                    ipaddress.IPv4Network(pool.cidr)
                # Never the network or broadcast address.
                network = ipaddress.IPv4Network(pool.cidr)
                assert address != str(network.network_address)
                assert address != str(network.broadcast_address)
