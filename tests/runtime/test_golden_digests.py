"""Golden-digest regression suite: the byte-identity contract.

The hot-path overhaul (calendar-queue scheduler, lazy wire views,
chunked dispatch over a persistent worker pool) is allowed to change
*speed* only.  This suite pins every registered experiment's
``result_digest`` to the value committed in ``golden_digests.json`` —
captured before the overhaul — and asserts it both serially and under
``--jobs 2``.  A drift here is a behaviour change, never noise: either
an optimisation broke byte-identity (a bug), or an experiment
deliberately changed and the goldens must be re-recorded with
``PYTHONPATH=src python scripts/make_goldens.py``.
"""

import json
import pathlib

import pytest

from repro.experiments.registry import builtin_registry
from repro.runtime import TrialExecutor, result_digest

GOLDENS_PATH = pathlib.Path(__file__).with_name("golden_digests.json")
GOLDENS_FORMAT = "repro-golden-digests-v1"


def _tuplify(value):
    """JSON has no tuples; sequence-valued overrides are tuples in code."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


def _load_goldens():
    document = json.loads(GOLDENS_PATH.read_text(encoding="utf-8"))
    assert document["format"] == GOLDENS_FORMAT
    return document["goldens"]


GOLDENS = _load_goldens()
REGISTRY = builtin_registry()


def test_every_registered_experiment_has_a_golden():
    assert sorted(GOLDENS) == sorted(REGISTRY.names())


@pytest.mark.parametrize("jobs", (1, 2), ids=("serial", "jobs2"))
@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_digest_matches_golden(name, jobs):
    golden = GOLDENS[name]
    run = TrialExecutor(jobs=jobs).run(REGISTRY.get(name),
                                       _tuplify(golden["overrides"]))
    assert run.ok, [failure.describe() for failure in run.failures]
    assert result_digest(run.result) == golden["digest"], (
        f"{name} drifted from its golden digest with jobs={jobs}; if the "
        f"behaviour change is deliberate, re-record with "
        f"scripts/make_goldens.py")
