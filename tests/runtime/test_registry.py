"""Tests for the experiment registry and its CLI flag generation."""

import argparse

import pytest

from repro.experiments.registry import builtin_registry
from repro.runtime import Experiment, ExperimentRegistry, Param


class _Toy(Experiment):
    name = "toy"
    params = (Param("queries", int, 40, "queries per cell"),
              Param("hidden", tuple, (), "programmatic only", cli=False))

    def trials(self, params):
        return []

    def run_trial(self, spec):
        return None

    def merge(self, params, payloads):
        return None


class _Conflicting(_Toy):
    name = "conflicting"
    params = (Param("queries", int, 99, "different default"),)


class _Nameless(_Toy):
    name = ""


class TestRegistry:
    def test_register_and_get(self):
        registry = ExperimentRegistry()
        toy = registry.register(_Toy())
        assert registry.get("toy") is toy
        assert "toy" in registry
        assert registry.names() == ["toy"]
        assert len(registry) == 1

    def test_collision_rejected(self):
        registry = ExperimentRegistry()
        registry.register(_Toy())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_Toy())

    def test_nameless_rejected(self):
        with pytest.raises(ValueError, match="declares no name"):
            ExperimentRegistry().register(_Nameless())

    def test_unknown_get_lists_registered(self):
        registry = ExperimentRegistry()
        registry.register(_Toy())
        with pytest.raises(KeyError, match="registered: toy"):
            registry.get("figure9")

    def test_cli_params_skip_programmatic(self):
        registry = ExperimentRegistry()
        registry.register(_Toy())
        assert [param.name for param in registry.cli_params()] == ["queries"]

    def test_conflicting_defaults_rejected(self):
        registry = ExperimentRegistry()
        registry.register(_Toy())
        registry.register(_Conflicting())
        with pytest.raises(ValueError, match="conflicting"):
            registry.cli_params()

    def test_add_cli_arguments(self):
        registry = ExperimentRegistry()
        registry.register(_Toy())
        parser = argparse.ArgumentParser()
        registry.add_cli_arguments(parser)
        args = parser.parse_args([])
        assert args.queries == 40
        assert not hasattr(args, "hidden")
        assert parser.parse_args(["--queries", "7"]).queries == 7


class TestBuiltinRegistry:
    def test_all_artifacts_registered_in_publication_order(self):
        names = builtin_registry().names()
        assert names == ["table1", "table2", "figure2", "figure3",
                         "figure5", "ecs", "mislocalization",
                         "disaggregation", "envelope-sweep", "overload",
                         "access-latency", "capacity", "resilience",
                         "churn", "population"]

    def test_union_flags_are_consistent(self):
        params = {param.name for param in builtin_registry().cli_params()}
        assert {"seed", "trials", "queries", "requests", "attack_qps",
                "rounds", "duration_ms"} <= params
