"""Serial vs. sharded equivalence for every registered experiment.

The runtime's core determinism claim: for each artifact, a ``--jobs 1``
run and a ``--jobs 2`` run produce byte-identical rendered text and
equal result digests.  Parameters are scaled down so the whole registry
stays affordable, but every experiment is exercised through both
backends — nothing is sampled out.
"""

import pytest

from repro import telemetry
from repro.experiments.registry import builtin_registry
from repro.runtime import TrialExecutor, result_digest
from repro.telemetry import exporters

#: Scaled-down overrides per artifact (empty = declared defaults are
#: already cheap).  Values chosen to keep every shape of trial plan —
#: multi-cell sweeps, single-cell tables — represented.
OVERRIDES = {
    "table1": {},
    "table2": {},
    "figure2": {"trials": 6},
    "figure3": {"trials": 6},
    "figure5": {"queries": 4},
    "ecs": {"queries": 4},
    "mislocalization": {"trials": 4},
    "disaggregation": {"requests": 120},
    "envelope-sweep": {"queries": 3, "distances": (1.0, 4.0, 12.0)},
    "overload": {"attack_qps": 800.0},
    "access-latency": {"rounds": 3},
    "capacity": {"duration_ms": 250.0, "rates": (500.0, 3000.0)},
    "resilience": {"queries": 3},
    "churn": {"queries": 3},
    "population": {"target_queries": 320, "catalog": 2000,
                   "cache_capacity": 50},
}

REGISTRY = builtin_registry()


def test_every_registered_experiment_is_covered():
    assert sorted(OVERRIDES) == sorted(REGISTRY.names())


@pytest.mark.parametrize("name", REGISTRY.names())
def test_sharded_run_matches_serial(name):
    experiment = REGISTRY.get(name)
    overrides = OVERRIDES[name]
    serial = TrialExecutor(jobs=1).run(experiment, overrides)
    sharded = TrialExecutor(jobs=2).run(experiment, overrides)
    assert serial.ok, [f.describe() for f in serial.failures]
    assert sharded.ok, [f.describe() for f in sharded.failures]
    assert experiment.render_result(sharded.result) == \
        experiment.render_result(serial.result)
    assert result_digest(sharded.result) == result_digest(serial.result)
    assert [o.spec for o in sharded.outcomes] == \
        [o.spec for o in serial.outcomes]


def _telemetry_artifact(tmp_path, jobs):
    session = telemetry.Telemetry()
    telemetry.set_default(session)
    try:
        run = TrialExecutor(jobs=jobs).run(REGISTRY.get("figure5"),
                                           {"queries": 3})
        assert run.ok
    finally:
        telemetry.clear_default()
    path = tmp_path / f"metrics-{jobs}.json"
    exporters.write_json_artifact(session.metrics, str(path),
                                  spans=session.tracer.finished)
    return path.read_bytes()


def test_telemetry_artifact_is_byte_identical_across_backends(tmp_path):
    assert _telemetry_artifact(tmp_path, 1) == _telemetry_artifact(tmp_path, 2)
