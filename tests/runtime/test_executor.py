"""Tests for the sharded trial executor and its isolation contract.

The toy experiments live at module level so worker processes can
unpickle them by qualified name (the tests package is importable).
"""

import pytest

from repro import telemetry
from repro.runtime import (Experiment, Param, TrialExecutor, derive_seed,
                           merge_profile_stats, result_digest)


class SquareExperiment(Experiment):
    """Cheap deterministic toy: square each cell's value."""

    name = "square"
    title = "toy squares"
    shape_checked = False
    params = (Param("count", int, 4, "number of cells"),
              Param("seed", int, 7, "base seed"))

    def trials(self, params):
        return [self.spec(index,
                          seed=derive_seed(int(params["seed"]),
                                           "square", index),
                          value=index)
                for index in range(int(params["count"]))]

    def run_trial(self, spec):
        value = int(spec.value("value"))
        tel = telemetry.get_default()
        if tel is not None:
            tel.metrics.counter("toy_trials_total", "trials run").inc()
            span = tel.tracer.begin("trial", "toy", "square", value=value)
            tel.tracer.end(span)
        return (value * value, spec.seed)

    def merge(self, params, payloads):
        return [payload[0] for payload in payloads]


class ExplodingExperiment(Experiment):
    """One poisoned cell; its siblings must survive it."""

    name = "exploding"
    title = "toy with one crashing trial"
    shape_checked = False
    params = (Param("count", int, 3, "number of cells"),)

    def trials(self, params):
        return [self.spec(index, seed=0, value=index)
                for index in range(int(params["count"]))]

    def run_trial(self, spec):
        if spec.value("value") == 1:
            raise RuntimeError("boom at 1")
        return spec.value("value")

    def merge(self, params, payloads):
        return list(payloads)


class TestExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            TrialExecutor(jobs=0)

    def test_serial_run(self):
        run = TrialExecutor(jobs=1).run(SquareExperiment())
        assert run.ok
        assert run.result == [0, 1, 4, 9]
        assert [outcome.spec.index for outcome in run.outcomes] == [0, 1, 2, 3]

    def test_overrides_resolve(self):
        run = TrialExecutor(jobs=1).run(SquareExperiment(), {"count": 2})
        assert run.result == [0, 1]
        assert dict(run.params)["count"] == 2

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            TrialExecutor(jobs=1).run(SquareExperiment(), {"bogus": 1})

    def test_pool_matches_serial(self):
        experiment = SquareExperiment()
        serial = TrialExecutor(jobs=1).run(experiment, {"count": 6})
        pooled = TrialExecutor(jobs=2).run(experiment, {"count": 6})
        assert pooled.result == serial.result
        assert result_digest(pooled.result) == result_digest(serial.result)
        # Payload seeds travelled through the pickle boundary unchanged.
        assert [o.payload for o in pooled.outcomes] == \
            [o.payload for o in serial.outcomes]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_trial_failure_is_isolated(self, jobs):
        run = TrialExecutor(jobs=jobs).run(ExplodingExperiment())
        assert not run.ok
        assert run.result is None
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.error == "RuntimeError"
        assert failure.message == "boom at 1"
        assert "boom at 1" in failure.traceback
        assert "exploding[1]" in failure.describe()
        # The siblings still produced their payloads.
        payloads = [outcome.payload for outcome in run.outcomes]
        assert payloads[0] == 0 and payloads[2] == 2


class TestTelemetryCapture:
    def teardown_method(self):
        telemetry.clear_default()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_session_telemetry_collects_across_trials(self, jobs):
        session = telemetry.Telemetry()
        telemetry.set_default(session)
        run = TrialExecutor(jobs=jobs).run(SquareExperiment(), {"count": 4})
        assert run.ok
        # The session facade is still installed after the run.
        assert telemetry.get_default() is session
        counter = session.metrics.counter("toy_trials_total", "trials run")
        assert counter.total() == 4.0
        assert len(session.tracer.finished) == 4

    def test_sharded_telemetry_merges_in_spec_order(self):
        serial = telemetry.Telemetry()
        telemetry.set_default(serial)
        TrialExecutor(jobs=1).run(SquareExperiment(), {"count": 5})
        telemetry.clear_default()

        pooled = telemetry.Telemetry()
        telemetry.set_default(pooled)
        TrialExecutor(jobs=2).run(SquareExperiment(), {"count": 5})
        telemetry.clear_default()

        serial_values = [span.attrs.get("value")
                         for span in serial.tracer.finished]
        pooled_values = [span.attrs.get("value")
                         for span in pooled.tracer.finished]
        assert pooled_values == serial_values == [0, 1, 2, 3, 4]

    def test_no_session_means_no_capture(self):
        run = TrialExecutor(jobs=1).run(SquareExperiment(), {"count": 2})
        assert run.ok
        assert telemetry.get_default() is None


def _run_trial_row(stats):
    """The merged cProfile row for the experiment's ``run_trial``."""
    rows = [row for (_, _, funcname), row in stats.items()
            if funcname == "run_trial"]
    assert len(rows) == 1
    return rows[0]


class TestProfileCapture:
    def test_profiling_off_by_default(self):
        run = TrialExecutor(jobs=1).run(SquareExperiment())
        assert run.ok
        assert run.profile_stats is None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_per_trial_profiles_merge_across_backends(self, jobs):
        run = TrialExecutor(jobs=jobs, profile=True).run(
            SquareExperiment(), {"count": 6})
        assert run.ok
        stats = run.profile_stats
        assert stats
        # Rows are (cc, nc, tt, ct, callers); run_trial is called once
        # per trial, so the merged table must account for all six —
        # regardless of which worker profiled which trial.
        cc, nc, _, ct, _ = _run_trial_row(stats)
        assert cc == nc == 6
        assert ct >= 0.0

    def test_profiling_does_not_change_results(self):
        experiment = SquareExperiment()
        plain = TrialExecutor(jobs=1).run(experiment, {"count": 5})
        profiled = TrialExecutor(jobs=1, profile=True).run(
            experiment, {"count": 5})
        assert profiled.result == plain.result
        assert result_digest(profiled.result) == result_digest(plain.result)

    def test_merge_profile_stats_adds_componentwise(self):
        func = ("toy.py", 1, "f")
        caller = ("toy.py", 9, "main")
        first = {func: (2, 2, 0.5, 1.0, {caller: (2, 2, 0.5, 1.0)})}
        second = {func: (3, 4, 0.25, 0.5, {caller: (3, 4, 0.25, 0.5)})}
        merged = merge_profile_stats([first, None, second])
        cc, nc, tt, ct, callers = merged[func]
        assert (cc, nc, tt, ct) == (5, 6, 0.75, 1.5)
        assert callers[caller] == (5, 6, 0.75, 1.5)
        assert merge_profile_stats([None, None]) is None
