"""Tests for trial specs and the seed-derivation rule."""

import pickle

import pytest

from repro.runtime import TrialSpec, derive_seed, freeze_cell


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "figure2", "site", "lte") == \
            derive_seed(42, "figure2", "site", "lte")

    def test_sensitive_to_every_part(self):
        base = derive_seed(42, "figure2", "site", "lte")
        assert derive_seed(43, "figure2", "site", "lte") != base
        assert derive_seed(42, "figure3", "site", "lte") != base
        assert derive_seed(42, "figure2", "site", "wifi") != base

    def test_fits_in_64_bits(self):
        seed = derive_seed(0, "x")
        assert 0 <= seed < 2 ** 64

    def test_known_value_is_pinned(self):
        # The derivation rule is part of the determinism contract: a
        # change here silently re-seeds every sharded experiment.
        assert derive_seed(42, "figure2") == 10283438437519553523


class TestFreezeCell:
    def test_sorts_by_key(self):
        assert freeze_cell(b=2, a=1) == (("a", 1), ("b", 2))

    def test_canonical_across_keyword_order(self):
        assert freeze_cell(x=1, y=2, z=3) == freeze_cell(z=3, y=2, x=1)

    def test_empty(self):
        assert freeze_cell() == ()


class TestTrialSpec:
    def spec(self):
        return TrialSpec(experiment="toy", index=3,
                         cell=freeze_cell(site="a0", connectivity="lte"),
                         seed=99)

    def test_pickle_round_trip(self):
        spec = self.spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_cell_dict(self):
        assert self.spec().cell_dict() == {"site": "a0",
                                           "connectivity": "lte"}

    def test_value(self):
        assert self.spec().value("site") == "a0"

    def test_missing_value_names_the_trial(self):
        with pytest.raises(KeyError, match="toy trial 3"):
            self.spec().value("rate")

    def test_label(self):
        assert self.spec().label() == \
            "toy[3](connectivity=lte,site=a0)"

    def test_hashable(self):
        assert len({self.spec(), self.spec()}) == 1
