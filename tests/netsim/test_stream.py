"""Tests for the stream transport and DNS truncation fallback."""

import pytest

from repro.dnswire import A, Name, RecordType, ResourceRecord, TXT, Zone
from repro.dnswire.rdata import NS, SOA
from repro.errors import SocketError
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.netsim.stream import StreamServer, open_channel
from repro.resolver import AuthoritativeServer, StubResolver


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, RandomStreams(77))
    network.add_host("client", "10.0.0.2")
    network.add_host("server", "10.0.0.80")
    network.add_link("client", "server", Constant(5))
    return network


class TestStreamChannel:
    def test_connect_then_exchange(self, net):
        StreamServer(net, net.host("server"), 8080,
                     handler=lambda body, peer: b"echo:" + body)

        def client():
            channel = yield from open_channel(
                net, net.host("client"), Endpoint("10.0.0.80", 8080))
            reply = yield from channel.exchange(b"hello")
            return reply, channel.round_trips

        reply, round_trips = net.sim.run_until_resolved(
            net.sim.spawn(client()))
        assert reply == b"echo:hello"
        assert round_trips == 2  # handshake + exchange
        assert net.sim.now == pytest.approx(20.0)  # 2 RTT x 10ms

    def test_generator_handler(self, net):
        def slow_handler(body, peer):
            yield 7
            return b"done"

        StreamServer(net, net.host("server"), 8080, handler=slow_handler)

        def client():
            channel = yield from open_channel(
                net, net.host("client"), Endpoint("10.0.0.80", 8080))
            return (yield from channel.exchange(b"x"))

        assert net.sim.run_until_resolved(net.sim.spawn(client())) == b"done"
        assert net.sim.now == pytest.approx(27.0)

    def test_exchange_before_connect_rejected(self, net):
        from repro.netsim.stream import StreamChannel
        channel = StreamChannel(net, net.host("client"),
                                Endpoint("10.0.0.80", 8080))

        def run():
            yield from channel.exchange(b"x")

        from repro.netsim.engine import ProcessFailed
        with pytest.raises(ProcessFailed) as excinfo:
            net.sim.run_until_resolved(net.sim.spawn(run()))
        assert isinstance(excinfo.value.__cause__, SocketError)

    def test_retransmission_survives_loss(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(3))
        net.add_host("client", "10.0.0.2")
        net.add_host("server", "10.0.0.80")
        net.add_link("client", "server", Constant(5), loss=0.3)
        served = []
        StreamServer(net, net.host("server"), 8080,
                     handler=lambda body, peer: served.append(body) or b"ok")

        def client():
            channel = yield from open_channel(
                net, net.host("client"), Endpoint("10.0.0.80", 8080))
            return (yield from channel.exchange(b"payload"))

        assert sim.run_until_resolved(sim.spawn(client())) == b"ok"

    def test_server_exchange_counter(self, net):
        server = StreamServer(net, net.host("server"), 8080,
                              handler=lambda body, peer: b"r")

        def client():
            channel = yield from open_channel(
                net, net.host("client"), Endpoint("10.0.0.80", 8080))
            yield from channel.exchange(b"1")
            yield from channel.exchange(b"2")

        net.sim.run_until_resolved(net.sim.spawn(client()))
        assert server.exchanges_served == 2


def big_zone():
    """A zone whose TXT answer cannot fit a 512-byte UDP response."""
    zone = Zone(Name("big.test"))
    zone.add(ResourceRecord(Name("big.test"), RecordType.SOA, 300,
                            SOA(Name("ns.big.test"), Name("a.big.test"),
                                1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name("big.test"), RecordType.NS, 300,
                            NS(Name("ns.big.test"))))
    zone.add(ResourceRecord(Name("wide.big.test"), RecordType.TXT, 300,
                            TXT.from_string("x" * 900)))
    zone.add(ResourceRecord(Name("small.big.test"), RecordType.A, 300,
                            A("192.0.2.1")))
    return zone


class TestTruncationFallback:
    def test_small_answer_stays_on_udp(self, net):
        server = AuthoritativeServer(net, net.host("server"), [big_zone()])
        stub = StubResolver(net, net.host("client"), server.endpoint)
        result = net.sim.run_until_resolved(net.sim.spawn(
            stub.query(Name("small.big.test"))))
        assert result.addresses == ["192.0.2.1"]
        assert stub.tcp_fallbacks == 0
        assert server.truncated_sent == 0

    def test_oversize_answer_truncates_and_retries_over_tcp(self, net):
        server = AuthoritativeServer(net, net.host("server"), [big_zone()])
        stub = StubResolver(net, net.host("client"), server.endpoint)
        result = net.sim.run_until_resolved(net.sim.spawn(
            stub.query(Name("wide.big.test"), RecordType.TXT)))
        assert result.status == "NOERROR"
        assert result.response.answers[0].rdata.strings[0].startswith(b"xxx")
        assert server.truncated_sent == 1
        assert server.tcp_queries_received == 1
        assert stub.tcp_fallbacks == 1
        assert not result.response.flags.tc  # the final answer is complete

    def test_edns_payload_avoids_truncation(self, net):
        from repro.dnswire import Edns
        server = AuthoritativeServer(net, net.host("server"), [big_zone()])
        stub = StubResolver(net, net.host("client"), server.endpoint)
        result = net.sim.run_until_resolved(net.sim.spawn(
            stub.query(Name("wide.big.test"), RecordType.TXT,
                       edns=Edns(udp_payload=4096))))
        assert result.status == "NOERROR"
        assert stub.tcp_fallbacks == 0
        assert server.truncated_sent == 0

    def test_tcp_fallback_costs_extra_round_trips(self, net):
        server = AuthoritativeServer(net, net.host("server"), [big_zone()])
        stub = StubResolver(net, net.host("client"), server.endpoint)
        small = net.sim.run_until_resolved(net.sim.spawn(
            stub.query(Name("small.big.test"))))
        wide = net.sim.run_until_resolved(net.sim.spawn(
            stub.query(Name("wide.big.test"), RecordType.TXT)))
        # UDP attempt + handshake + TCP exchange = ~3x the UDP-only time.
        assert wide.query_time_ms > 2.5 * small.query_time_ms
