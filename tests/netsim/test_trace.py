"""Tests for the PacketTrace tcpdump-analog tap and its filters."""

from repro.netsim.engine import Simulator
from repro.netsim.latency import Constant
from repro.netsim.network import Network
from repro.netsim.packet import Endpoint
from repro.netsim.rand import RandomStreams
from repro.netsim.socket import UdpSocket
from repro.netsim.trace import PacketTrace


def three_hop_network():
    """client -- middle -- server, 1 ms per link."""
    sim = Simulator()
    net = Network(sim, RandomStreams(0))
    net.add_host("client", "10.0.0.1")
    net.add_host("middle", "10.0.0.2")
    net.add_host("server", "10.0.0.3")
    net.add_link("client", "middle", Constant(1.0))
    net.add_link("middle", "server", Constant(1.0))
    UdpSocket(net.host("server"), port=53)  # the listening endpoint
    return sim, net


def send_one(sim, net, payload=b"ping"):
    """Send one datagram client -> server and run the sim dry."""
    sock = UdpSocket(net.host("client"))
    sock.send_to(payload, Endpoint("10.0.0.3", 53))
    sim.run()
    sock.close()


class TestFilters:
    def test_unfiltered_sees_every_event(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net)
        send_one(sim, net)
        events = {record.event for record in trace.records}
        assert events == {"send", "forward", "deliver"}

    def test_host_filter_limits_to_one_host(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net, host_filter="middle")
        send_one(sim, net)
        assert trace.records
        assert all(record.host == "middle" for record in trace.records)
        assert all(record.event == "forward" for record in trace.records)

    def test_event_filter_limits_to_one_kind(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net, event_filter="deliver")
        send_one(sim, net)
        assert len(trace.records) == 1
        record = trace.records[0]
        assert record.event == "deliver"
        assert record.host == "server"

    def test_combined_filters(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net, host_filter="server",
                            event_filter="forward")
        send_one(sim, net)
        assert trace.records == []  # the server only ever delivers

    def test_records_carry_packet_fields(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net, event_filter="deliver")
        send_one(sim, net, payload=b"ping")
        record = trace.records[0]
        assert record.dst == "10.0.0.3:53"
        assert record.size > 0
        assert record.protocol == "udp"
        assert record.time == 2.0  # two 1 ms hops


class TestLifecycle:
    def test_between_selects_time_window(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net)
        send_one(sim, net)
        early = trace.between(0.0, 1.0)
        assert early
        assert all(record.time <= 1.0 for record in early)
        assert len(trace.between(100.0, 200.0)) == 0

    def test_first_by_event_kind(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net)
        send_one(sim, net)
        assert trace.first("deliver").host == "server"
        assert trace.first("nonexistent") is None

    def test_clear_keeps_capturing(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net)
        send_one(sim, net)
        trace.clear()
        assert len(trace) == 0
        send_one(sim, net)
        assert len(trace) > 0

    def test_close_stops_capturing(self):
        sim, net = three_hop_network()
        trace = PacketTrace(net)
        send_one(sim, net)
        seen = len(trace)
        trace.close()
        send_one(sim, net)
        assert len(trace) == seen
