"""Tests for random streams and latency models."""

import math
import random
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.netsim.latency import (
    Compound,
    Constant,
    Empirical,
    Gamma,
    LogNormal,
    Normal,
    Uniform,
    lognormal_from_median_p95,
)
from repro.netsim.rand import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        first = [RandomStreams(7).stream("link").random() for _ in range(3)]
        second = [RandomStreams(7).stream("link").random() for _ in range(3)]
        assert first == second

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != \
            RandomStreams(2).stream("x").random()

    def test_new_stream_does_not_perturb_existing(self):
        streams = RandomStreams(3)
        link = streams.stream("link")
        first = link.random()
        streams.stream("unrelated")  # allocate another stream mid-run
        second = RandomStreams(3).stream("link")
        second.random()
        assert second.random() == link.random()
        assert first != second  # sanity: we compared sequences, not objects

    def test_fork_is_namespaced(self):
        root = RandomStreams(3)
        child_a = root.fork("exp-a")
        child_b = root.fork("exp-b")
        assert child_a.stream("x").random() != child_b.stream("x").random()
        # Forks are reproducible too.
        again = RandomStreams(3).fork("exp-a")
        assert again.stream("x").random() == RandomStreams(3).fork("exp-a").stream("x").random()


RNG = random.Random(1234)


class TestLatencyModels:
    def test_constant(self):
        model = Constant(5.0)
        assert model.sample(RNG) == 5.0
        assert model.mean == 5.0

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            Constant(-1)

    def test_uniform_bounds(self):
        model = Uniform(2, 8)
        samples = [model.sample(RNG) for _ in range(200)]
        assert all(2 <= value <= 8 for value in samples)
        assert model.mean == 5

    def test_uniform_bad_range(self):
        with pytest.raises(ValueError):
            Uniform(5, 2)

    def test_normal_truncated_at_floor(self):
        model = Normal(mu=1.0, sigma=5.0, floor=0.5)
        samples = [model.sample(RNG) for _ in range(500)]
        assert all(value >= 0.5 for value in samples)

    def test_normal_mean_near_mu(self):
        model = Normal(mu=20.0, sigma=2.0)
        samples = [model.sample(RNG) for _ in range(2000)]
        assert statistics.fmean(samples) == pytest.approx(20.0, abs=0.5)

    def test_lognormal_positive_and_skewed(self):
        model = LogNormal(mu=math.log(10), sigma=0.5)
        samples = [model.sample(RNG) for _ in range(2000)]
        assert all(value > 0 for value in samples)
        assert statistics.median(samples) == pytest.approx(10, rel=0.15)
        assert statistics.fmean(samples) > statistics.median(samples)

    def test_lognormal_shift_is_floor(self):
        model = LogNormal(mu=0.0, sigma=1.0, shift=7.0)
        assert all(model.sample(RNG) > 7.0 for _ in range(200))

    def test_lognormal_mean_formula(self):
        model = LogNormal(mu=1.0, sigma=0.5, shift=2.0)
        assert model.mean == pytest.approx(2 + math.exp(1 + 0.125))

    def test_fit_from_median_p95(self):
        model = lognormal_from_median_p95(median=30, p95=90)
        samples = sorted(model.sample(RNG) for _ in range(5000))
        assert statistics.median(samples) == pytest.approx(30, rel=0.1)
        assert samples[int(0.95 * len(samples))] == pytest.approx(90, rel=0.15)

    def test_fit_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            lognormal_from_median_p95(median=50, p95=40)

    def test_fit_with_shift(self):
        model = lognormal_from_median_p95(median=30, p95=90, shift=10)
        samples = sorted(model.sample(RNG) for _ in range(5000))
        assert all(value > 10 for value in samples)
        assert statistics.median(samples) == pytest.approx(30, rel=0.1)

    def test_gamma_mean(self):
        model = Gamma(shape=4, scale=2.5, shift=1)
        samples = [model.sample(RNG) for _ in range(3000)]
        assert statistics.fmean(samples) == pytest.approx(11, rel=0.1)
        assert model.mean == 11

    def test_empirical_resamples_observed(self):
        model = Empirical([1.0, 2.0, 3.0])
        assert set(model.sample(RNG) for _ in range(100)) <= {1.0, 2.0, 3.0}
        assert model.mean == 2.0

    def test_empirical_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_compound_sums(self):
        model = Compound([Constant(3), Constant(4)])
        assert model.sample(RNG) == 7
        assert model.mean == 7

    def test_add_operator_builds_compound(self):
        model = Constant(1) + Constant(2) + Constant(3)
        assert isinstance(model, Compound)
        assert model.mean == 6


@given(st.floats(min_value=0.1, max_value=1000), st.floats(min_value=1.01, max_value=10))
def test_fit_property_median_below_p95(median, ratio):
    model = lognormal_from_median_p95(median, median * ratio)
    rng = random.Random(0)
    value = model.sample(rng)
    assert value > 0
