"""Tests for link bandwidth (serialization delay)."""

import pytest

from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator, UdpSocket


def build(bandwidth_mbps):
    sim = Simulator()
    net = Network(sim, RandomStreams(7))
    net.add_host("a", "10.0.0.1")
    net.add_host("b", "10.0.0.2")
    link = net.add_link("a", "b", Constant(5),
                        bandwidth_mbps=bandwidth_mbps)
    arrivals = []
    server = UdpSocket(net.host("b"), port=9)
    server.on_datagram = lambda payload, src, sock: arrivals.append(sim.now)
    return sim, net, link, arrivals


class TestBandwidth:
    def test_no_bandwidth_means_pure_latency(self):
        sim, net, link, arrivals = build(None)
        UdpSocket(net.host("a")).send_to(b"x" * 10_000,
                                         Endpoint("10.0.0.2", 9))
        sim.run()
        assert arrivals == [5.0]

    def test_serialization_added_per_size(self):
        # 1 Mbps = 125 B/ms; a 1250-byte packet costs 10 ms on the wire.
        sim, net, link, arrivals = build(1.0)
        UdpSocket(net.host("a")).send_to(b"x" * 1250,
                                         Endpoint("10.0.0.2", 9))
        sim.run()
        assert arrivals == [pytest.approx(15.0)]

    def test_small_packets_barely_affected(self):
        sim, net, link, arrivals = build(1000.0)
        UdpSocket(net.host("a")).send_to(b"x" * 125,
                                         Endpoint("10.0.0.2", 9))
        sim.run()
        assert arrivals == [pytest.approx(5.001)]

    def test_bytes_accounted(self):
        sim, net, link, arrivals = build(10.0)
        UdpSocket(net.host("a")).send_to(b"x" * 500, Endpoint("10.0.0.2", 9))
        sim.run()
        assert link.bytes_carried == 500

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            build(0)
        with pytest.raises(ValueError):
            build(-5)
