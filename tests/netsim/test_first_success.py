"""Tests for the future race combinator behind the multicast fallback."""

import pytest

from repro.errors import QueryTimeout, SimulationError
from repro.netsim.engine import Simulator


class TestFirstSuccess:
    def test_fastest_success_wins(self):
        sim = Simulator()
        combined = sim.first_success([sim.timer(30, "slow"),
                                      sim.timer(10, "fast")])
        assert sim.run_until_resolved(combined) == "fast"
        assert sim.now == 10

    def test_failure_does_not_win(self):
        sim = Simulator()
        failing = sim.future()
        sim.call_after(5, lambda: failing.fail(QueryTimeout("early fail")))
        combined = sim.first_success([failing, sim.timer(20, "late ok")])
        assert sim.run_until_resolved(combined) == "late ok"
        assert sim.now == 20

    def test_all_failures_fail_combined(self):
        sim = Simulator()
        futures = []
        for delay in (5, 10):
            fut = sim.future()
            sim.call_after(delay,
                           lambda f=fut: f.fail(QueryTimeout("dead")))
            futures.append(fut)
        combined = sim.first_success(futures)
        with pytest.raises(QueryTimeout):
            sim.run_until_resolved(combined)

    def test_single_future(self):
        sim = Simulator()
        combined = sim.first_success([sim.timer(3, 42)])
        assert sim.run_until_resolved(combined) == 42

    def test_empty_list_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.first_success([])

    def test_later_results_ignored(self):
        sim = Simulator()
        futures = [sim.timer(1, "first"), sim.timer(2, "second")]
        combined = sim.first_success(futures)
        sim.run()
        assert combined.result() == "first"
