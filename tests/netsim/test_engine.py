"""Tests for the event loop, futures, and generator processes."""

import pytest

from repro.errors import QueryTimeout, SimulationError
from repro.netsim.engine import ProcessFailed, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_after(10, lambda: order.append("b"))
        sim.call_after(5, lambda: order.append("a"))
        sim.call_after(20, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.call_after(5, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.call_after(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.call_after(100, lambda: fired.append(True))
        assert sim.run(until=50) == 50
        assert not fired
        sim.run()
        assert fired

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.call_after(5, inner)

        def inner():
            times.append(sim.now)

        sim.call_after(10, outer)
        sim.run()
        assert times == [10, 15]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(-1, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.call_after(10, lambda: sim.call_at(5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def rearm():
            sim.call_after(1, rearm)

        sim.call_soon(rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.call_soon(lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestFutures:
    def test_resolve_and_result(self):
        sim = Simulator()
        fut = sim.future()
        fut.resolve(42)
        sim.run()
        assert fut.done
        assert fut.result() == 42

    def test_result_before_done_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.future().result()

    def test_fail_stores_error(self):
        sim = Simulator()
        fut = sim.future()
        fut.fail(QueryTimeout("late"))
        with pytest.raises(QueryTimeout):
            fut.result()

    def test_first_resolution_wins(self):
        sim = Simulator()
        fut = sim.future()
        fut.resolve("reply")
        fut.fail(QueryTimeout("late"))
        assert fut.result() == "reply"

    def test_callback_after_done_still_fires(self):
        sim = Simulator()
        fut = sim.future()
        fut.resolve(1)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        sim.run()
        assert seen == [1]

    def test_timer(self):
        sim = Simulator()
        fut = sim.timer(25, "done")
        assert sim.run_until_resolved(fut) == "done"
        assert sim.now == 25


class TestProcesses:
    def test_yield_delay(self):
        sim = Simulator()

        def process():
            yield 10
            yield 5
            return sim.now

        assert sim.run_until_resolved(sim.spawn(process())) == 15

    def test_yield_future(self):
        sim = Simulator()

        def process():
            value = yield sim.timer(30, "payload")
            return value

        assert sim.run_until_resolved(sim.spawn(process())) == "payload"

    def test_failed_future_raises_inside_process(self):
        sim = Simulator()
        fut = sim.future()
        sim.call_after(5, lambda: fut.fail(QueryTimeout("boom")))

        def process():
            try:
                yield fut
            except QueryTimeout:
                return "handled"
            return "not reached"

        assert sim.run_until_resolved(sim.spawn(process())) == "handled"

    def test_process_exception_wrapped(self):
        sim = Simulator()

        def process():
            yield 1
            raise ValueError("inner")

        fut = sim.spawn(process())
        with pytest.raises(ProcessFailed) as excinfo:
            sim.run_until_resolved(fut)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_bad_yield_value_fails_process(self):
        sim = Simulator()

        def process():
            yield "not a delay"

        with pytest.raises(ProcessFailed):
            sim.run_until_resolved(sim.spawn(process()))

    def test_processes_interleave(self):
        sim = Simulator()
        order = []

        def worker(tag, delay):
            yield delay
            order.append((tag, sim.now))
            yield delay
            order.append((tag, sim.now))

        sim.spawn(worker("fast", 3))
        sim.spawn(worker("slow", 5))
        sim.run()
        assert order == [("fast", 3), ("slow", 5), ("fast", 6), ("slow", 10)]

    def test_run_until_resolved_detects_starvation(self):
        sim = Simulator()
        never = sim.future()
        with pytest.raises(SimulationError):
            sim.run_until_resolved(never)


class TestSharedDrain:
    """Both entry points run on one stepper; their semantics must hold."""

    def test_run_with_empty_queue_still_advances_to_until(self):
        sim = Simulator()
        assert sim.run(until=25) == 25
        assert sim.now == 25

    def test_run_clamps_to_until_after_early_drain(self):
        sim = Simulator()
        sim.call_after(5, lambda: None)
        assert sim.run(until=30) == 30
        assert sim.events_processed == 1

    def test_run_until_resolved_respects_max_events(self):
        sim = Simulator()

        def rearm():
            sim.call_after(1, rearm)

        sim.call_soon(rearm)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run_until_resolved(sim.future(), max_events=100)

    def test_max_events_bounds_each_call_separately(self):
        sim = Simulator()
        for _ in range(3):
            sim.call_soon(lambda: None)
        sim.run(max_events=10)
        for _ in range(3):
            sim.call_soon(lambda: None)
        sim.run(max_events=10)  # would raise if the bound accumulated
        assert sim.events_processed == 6

    def test_events_processed_accumulates_across_entry_points(self):
        sim = Simulator()
        for _ in range(3):
            sim.call_soon(lambda: None)
        sim.run()
        assert sim.run_until_resolved(sim.timer(5, "done")) == "done"
        assert sim.events_processed == 4

    def test_run_until_resolved_stops_at_resolution(self):
        sim = Simulator()
        fired = []
        fut = sim.timer(10, "value")
        sim.call_after(20, lambda: fired.append(True))
        assert sim.run_until_resolved(fut) == "value"
        # The later event is still queued; the loop stopped at the future.
        assert not fired
        assert sim.now == 10
