"""Tests for topology, forwarding, middleboxes, sockets, and traces."""

import pytest

from repro.errors import AddressError, QueryTimeout, RoutingError, SocketError
from repro.netsim import (
    Constant,
    Endpoint,
    Middlebox,
    Network,
    PacketTrace,
    RandomStreams,
    Simulator,
    UdpSocket,
)


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, RandomStreams(42))
    return network


def build_line(network, *specs):
    """hosts a-b-c... with constant-latency links: specs = (name, ip, latency_to_next)."""
    previous = None
    previous_latency = None
    for name, ip, latency in specs:
        network.add_host(name, ip)
        if previous is not None:
            network.add_link(previous, name, Constant(previous_latency))
        previous = name
        previous_latency = latency


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        net.add_host("a", "10.0.0.1")
        with pytest.raises(AddressError):
            net.add_host("a", "10.0.0.2")

    def test_duplicate_ip_rejected(self, net):
        net.add_host("a", "10.0.0.1")
        with pytest.raises(AddressError):
            net.add_host("b", "10.0.0.1")

    def test_link_to_unknown_host_rejected(self, net):
        net.add_host("a", "10.0.0.1")
        with pytest.raises(AddressError):
            net.add_link("a", "ghost", Constant(1))

    def test_path_shortest_by_latency(self, net):
        for name, ip in [("a", "1.0.0.1"), ("b", "1.0.0.2"),
                         ("c", "1.0.0.3"), ("d", "1.0.0.4")]:
            net.add_host(name, ip)
        net.add_link("a", "b", Constant(1))
        net.add_link("b", "d", Constant(1))
        net.add_link("a", "c", Constant(5))
        net.add_link("c", "d", Constant(5))
        assert net.path("a", "d") == ["a", "b", "d"]
        assert net.path_mean_latency("a", "d") == 2

    def test_no_route_raises(self, net):
        net.add_host("a", "1.0.0.1")
        net.add_host("b", "1.0.0.2")
        with pytest.raises(RoutingError):
            net.path("a", "b")

    def test_routing_cache_invalidated_by_new_link(self, net):
        for name, ip in [("a", "1.0.0.1"), ("b", "1.0.0.2"), ("c", "1.0.0.3")]:
            net.add_host(name, ip)
        net.add_link("a", "b", Constant(10))
        net.add_link("b", "c", Constant(10))
        assert net.path("a", "c") == ["a", "b", "c"]
        net.add_link("a", "c", Constant(1))
        assert net.path("a", "c") == ["a", "c"]

    def test_address_release_and_reassign(self, net):
        a = net.add_host("a", "1.0.0.1", "198.51.100.1")
        net.release_address(a, "198.51.100.1")
        b = net.add_host("b", "1.0.0.2")
        net.assign_address(b, "198.51.100.1")
        assert net.host_for_ip("198.51.100.1") is b


class TestDelivery:
    def test_end_to_end_latency_is_sum_of_links(self, net):
        build_line(net, ("client", "10.0.0.1", 3), ("mid", "10.0.0.2", 4),
                   ("server", "10.0.0.3", 0))
        received = []
        server_sock = UdpSocket(net.host("server"), port=53)
        server_sock.on_datagram = lambda payload, src, sock: received.append(
            (net.sim.now, payload))
        client_sock = UdpSocket(net.host("client"))
        client_sock.send_to(b"hello", Endpoint("10.0.0.3", 53))
        net.sim.run()
        assert received == [(7.0, b"hello")]

    def test_request_reply_roundtrip(self, net):
        build_line(net, ("client", "10.0.0.1", 5), ("server", "10.0.0.2", 0))
        server_sock = UdpSocket(net.host("server"), port=53)
        server_sock.on_datagram = lambda payload, src, sock: sock.send_to(
            b"re:" + payload, src)
        client_sock = UdpSocket(net.host("client"))
        future = client_sock.request(b"ping", Endpoint("10.0.0.2", 53), timeout=100)
        reply = net.sim.run_until_resolved(future)
        assert reply.payload == b"re:ping"
        assert net.sim.now == 10.0

    def test_request_times_out(self, net):
        build_line(net, ("client", "10.0.0.1", 5), ("server", "10.0.0.2", 0))
        # No socket listening on the server.
        client_sock = UdpSocket(net.host("client"))
        future = client_sock.request(b"ping", Endpoint("10.0.0.2", 53), timeout=30)
        with pytest.raises(QueryTimeout):
            net.sim.run_until_resolved(future)
        assert net.sim.now == 30.0

    def test_unroutable_destination_is_dropped(self, net):
        net.add_host("client", "10.0.0.1")
        client_sock = UdpSocket(net.host("client"))
        client_sock.send_to(b"x", Endpoint("203.0.113.9", 53))
        net.sim.run()  # no exception; packet silently dropped

    def test_lossy_link_drops(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(7))
        net.add_host("a", "10.0.0.1")
        net.add_host("b", "10.0.0.2")
        link = net.add_link("a", "b", Constant(1), loss=0.5)
        delivered = []
        server = UdpSocket(net.host("b"), port=9)
        server.on_datagram = lambda payload, src, sock: delivered.append(payload)
        sender = UdpSocket(net.host("a"), port=1000)
        for _ in range(200):
            sender.send_to(b"x", Endpoint("10.0.0.2", 9))
        sim.run()
        assert 40 < len(delivered) < 160
        assert link.packets_dropped + link.packets_carried == 200

    def test_one_request_in_flight_enforced(self, net):
        build_line(net, ("client", "10.0.0.1", 5), ("server", "10.0.0.2", 0))
        sock = UdpSocket(net.host("client"))
        sock.request(b"a", Endpoint("10.0.0.2", 53), timeout=100)
        with pytest.raises(SocketError):
            sock.request(b"b", Endpoint("10.0.0.2", 53), timeout=100)

    def test_closed_socket_rejects_send(self, net):
        net.add_host("a", "10.0.0.1")
        sock = UdpSocket(net.host("a"))
        sock.close()
        with pytest.raises(SocketError):
            sock.send_to(b"x", Endpoint("10.0.0.1", 1))

    def test_port_collision_rejected(self, net):
        net.add_host("a", "10.0.0.1")
        UdpSocket(net.host("a"), port=53)
        with pytest.raises(AddressError):
            UdpSocket(net.host("a"), port=53)

    def test_ephemeral_ports_unique(self, net):
        net.add_host("a", "10.0.0.1")
        ports = {UdpSocket(net.host("a")).port for _ in range(50)}
        assert len(ports) == 50


class _Nat(Middlebox):
    """Minimal source-NAT: rewrites private sources to the public IP."""

    def __init__(self, public_ip):
        self.public_ip = public_ip
        self.mappings = {}
        self.next_port = 20000

    def process(self, datagram, host):
        if datagram.src.ip.startswith("10.") and not host.owns(datagram.dst.ip):
            public = Endpoint(self.public_ip, self.next_port)
            self.next_port += 1
            self.mappings[public] = datagram.src
            return datagram.rewritten(src=public)
        if host.owns(datagram.dst.ip) and datagram.dst in self.mappings:
            return datagram.rewritten(dst=self.mappings[datagram.dst])
        return datagram


class TestMiddlebox:
    def build_nat_topology(self):
        sim = Simulator()
        net = Network(sim, RandomStreams(1))
        net.add_host("ue", "10.1.0.2")
        net.add_host("pgw", "10.1.0.1", "198.51.100.1")
        net.add_host("cdn", "203.0.113.10")
        net.add_link("ue", "pgw", Constant(10))
        net.add_link("pgw", "cdn", Constant(20))
        nat = _Nat("198.51.100.1")
        net.host("pgw").install_middlebox(nat)
        return sim, net, nat

    def test_server_sees_public_ip(self):
        sim, net, nat = self.build_nat_topology()
        seen = []
        server = UdpSocket(net.host("cdn"), port=53)
        server.on_datagram = lambda payload, src, sock: seen.append(src)
        client = UdpSocket(net.host("ue"))
        client.send_to(b"q", Endpoint("203.0.113.10", 53))
        sim.run()
        assert seen[0].ip == "198.51.100.1"  # the paper's IP obfuscation

    def test_reply_translates_back_to_client(self):
        sim, net, nat = self.build_nat_topology()
        server = UdpSocket(net.host("cdn"), port=53)
        server.on_datagram = lambda payload, src, sock: sock.send_to(b"r", src)
        client = UdpSocket(net.host("ue"))
        future = client.request(b"q", Endpoint("203.0.113.10", 53), timeout=500)
        reply = sim.run_until_resolved(future)
        assert reply.payload == b"r"
        assert sim.now == 60.0  # 2 * (10 + 20)


class TestTrace:
    def test_trace_records_forwarding_at_host(self, net):
        build_line(net, ("ue", "10.0.0.1", 10), ("pgw", "10.0.0.2", 20),
                   ("dns", "10.0.0.3", 0))
        trace = PacketTrace(net, host_filter="pgw")
        server = UdpSocket(net.host("dns"), port=53)
        server.on_datagram = lambda payload, src, sock: sock.send_to(b"r", src)
        client = UdpSocket(net.host("ue"))
        future = client.request(b"q", Endpoint("10.0.0.3", 53), timeout=500)
        net.sim.run_until_resolved(future)
        events = [(record.time, record.event) for record in trace.records]
        assert (10.0, "forward") in events  # query passing the P-GW
        assert (50.0, "forward") in events  # reply passing the P-GW

    def test_trace_event_filter_and_close(self, net):
        build_line(net, ("a", "10.0.0.1", 1), ("b", "10.0.0.2", 0))
        trace = PacketTrace(net, event_filter="deliver")
        server = UdpSocket(net.host("b"), port=5)
        server.on_datagram = lambda payload, src, sock: None
        sender = UdpSocket(net.host("a"))
        sender.send_to(b"x", Endpoint("10.0.0.2", 5))
        net.sim.run()
        assert len(trace) == 1
        assert trace.first().event == "deliver"
        trace.close()
        sender.send_to(b"x", Endpoint("10.0.0.2", 5))
        net.sim.run()
        assert len(trace) == 1
