#!/usr/bin/env python
"""Figure 1 walkthrough: the five steps of a classic CDN access.

The paper's Figure 1 sequence, on the wired path:

1. the client sends a DNS lookup for the content URL's domain;
2. the L-DNS resolves it through root/TLD/authoritative DNS and gets a
   CNAME to the CDN's name server;
3. the L-DNS queries the CDN Router (C-DNS) for the CNAME;
4. the L-DNS returns the chosen cache server's address to the client;
5. the client fetches the content from that cache.

Every hop is a real simulated DNS transaction (wire-encoded messages,
iterative resolution, CNAME chasing), so the printed step timings add up
to the end-to-end access latency.

Run:  python examples/figure1_walkthrough.py
"""

from repro.cdn import (
    CacheServer,
    ContentCatalog,
    CoverageZone,
    HttpClient,
    TrafficRouter,
)
from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, CNAME, NS, SOA
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import RecursiveResolver, StubResolver
from repro.resolver.recursive import root_hints_from

WEB_DOMAIN = Name("static.shop.example")
CDN_NAME = Name("shop.cdn-provider.net")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_zones():
    root = Zone(Name("."))
    root.add(rr(".", RecordType.SOA, SOA(Name("a.root"), Name("admin.root"),
                                         1, 2, 3, 4, 60)))
    root.add(rr(".", RecordType.NS, NS(Name("a.root"))))
    for tld in ("example", "net"):
        root.add(rr(tld, RecordType.NS, NS(Name(f"ns.{tld}"))))
        root.add(rr(f"ns.{tld}", RecordType.A, A("192.12.94.1")))

    tld_example = Zone(Name("example"))
    tld_example.add(rr("example", RecordType.SOA,
                       SOA(Name("ns.example"), Name("a.example"),
                           1, 2, 3, 4, 60)))
    tld_example.add(rr("shop.example", RecordType.NS,
                       NS(Name("ns1.shop.example"))))
    tld_example.add(rr("ns1.shop.example", RecordType.A, A("203.0.113.20")))

    tld_net = Zone(Name("net"))
    tld_net.add(rr("net", RecordType.SOA,
                   SOA(Name("ns.net"), Name("a.net"), 1, 2, 3, 4, 60)))
    tld_net.add(rr("cdn-provider.net", RecordType.NS,
                   NS(Name("cdns.cdn-provider.net"))))
    tld_net.add(rr("cdns.cdn-provider.net", RecordType.A, A("203.0.113.30")))

    # The web provider's authoritative zone: the CNAME into the CDN
    # (step 2's answer).
    web_adns = Zone(Name("shop.example"))
    web_adns.add(rr("shop.example", RecordType.SOA,
                    SOA(Name("ns1.shop.example"), Name("a.shop.example"),
                        1, 2, 3, 4, 60)))
    web_adns.add(rr("shop.example", RecordType.NS,
                    NS(Name("ns1.shop.example"))))
    web_adns.add(rr("static.shop.example", RecordType.CNAME,
                    CNAME(CDN_NAME)))
    return root, tld_example, tld_net, web_adns


def main() -> None:
    print(__doc__)
    sim = Simulator()
    net = Network(sim, RandomStreams(61))
    for name, ip in (("client", "10.10.0.2"), ("ldns", "192.0.10.53"),
                     ("root", "192.5.5.1"), ("tld", "192.12.94.1"),
                     ("web-adns", "203.0.113.20"), ("cdns", "203.0.113.30"),
                     ("cache", "203.0.113.80")):
        net.add_host(name, ip)
    net.add_link("client", "ldns", Constant(1))
    for server in ("root", "tld", "web-adns", "cdns"):
        net.add_link("ldns", server, Constant(8))
    net.add_link("client", "cache", Constant(6))

    from repro.resolver import AuthoritativeServer
    root, tld_example, tld_net, web_adns = build_zones()
    AuthoritativeServer(net, net.host("root"), [root])
    AuthoritativeServer(net, net.host("tld"), [tld_example, tld_net])
    AuthoritativeServer(net, net.host("web-adns"), [web_adns])

    catalog = ContentCatalog()
    item = catalog.add_object(CDN_NAME, "/banner.jpg", 150_000)
    cache = CacheServer(net, net.host("cache"), catalog)
    cache.warm([item])
    TrafficRouter(net, net.host("cdns"), Name("cdn-provider.net"),
                  zones=[CoverageZone("all", ["0.0.0.0/0"], [cache])])

    resolver = RecursiveResolver(net, net.host("ldns"),
                                 root_hints_from(("a.root", "192.5.5.1")))
    stub = StubResolver(net, net.host("client"), resolver.endpoint)

    print(f"Step 1   client -> L-DNS: lookup {WEB_DOMAIN}")
    t0 = sim.now
    result = sim.run_until_resolved(sim.spawn(stub.query(WEB_DOMAIN)))
    answers = result.response.answers
    print(f"Step 2   L-DNS walked root -> .example -> A-DNS; got CNAME "
          f"{answers[0].rdata.target}")
    print(f"Step 3   L-DNS asked the CDN Router (C-DNS) for the CNAME "
          f"target")
    print(f"Step 4   client <- L-DNS: {result.addresses[0]} "
          f"(total {result.query_time_ms:.1f} ms, "
          f"{resolver.upstream_queries_sent} upstream queries)")

    client = HttpClient(net, net.host("client"))
    fetch = sim.run_until_resolved(
        sim.spawn(client.fetch(item.url, result.addresses[0])))
    print(f"Step 5   GET {item.url} -> {fetch.status} "
          f"{fetch.size_bytes} bytes "
          f"({'HIT' if fetch.cache_hit else 'MISS'}) "
          f"in {fetch.latency_ms:.1f} ms")
    print(f"\nEnd-to-end access latency: {sim.now - t0:.1f} ms — and this "
          f"is the *wired* best case the paper's Figure 2 starts from.")

    # A repeat visit: the L-DNS has everything cached, so steps 2-3
    # disappear ("the A records TTL never expires at L-DNS").
    repeat = sim.run_until_resolved(sim.spawn(stub.query(WEB_DOMAIN)))
    print(f"Repeat lookup from L-DNS cache: {repeat.query_time_ms:.1f} ms")


if __name__ == "__main__":
    main()
