#!/usr/bin/env python
"""The §2 measurement study: dig five CDN domains over three networks.

Re-runs the paper's Table 1 / Figure 2 / Figure 3 methodology on the
modelled public Internet: the same device location, three access paths
(campus Ethernet, home Wi-Fi, cellular hotspot), 25 dig runs per domain
per network, 8th-92nd percentile trimming, and answer-IP-to-CIDR-pool
attribution.

Run:  python examples/public_cdn_measurement.py
"""

from repro.experiments import run_figure2, run_figure3, run_table1
from repro.experiments.figure2 import check_shape as check_figure2
from repro.experiments.figure3 import check_shape as check_figure3


def main() -> None:
    print(__doc__)
    print(run_table1().render())
    print()

    figure2 = run_figure2(trials=25, seed=1)
    print(figure2.render())
    violations = check_figure2(figure2)
    print(f"\nFigure 2 shape claims: "
          f"{'ALL HOLD' if not violations else violations}")
    print("  (cellular >> wifi > wired for every domain, with the "
          "cellular bars also the most variable)\n")

    figure3 = run_figure3(trials=40, seed=1)
    print(figure3.render())
    violations = check_figure3(figure3)
    print(f"Figure 3 shape claims: "
          f"{'ALL HOLD' if not violations else violations}")
    print("  (the same domain resolves into different provider pools "
          "depending on the access network — the opaqueness the paper "
          "argues DNS-for-MEC must eliminate)")


if __name__ == "__main__":
    main()
