#!/usr/bin/env python
"""Resilience: health checks and replica control keep the edge serving.

The paper's design hinges on orchestration ("the end-to-end orchestration
of the containerized RAN, core network, MEC and CDN, through a single
logically centralized orchestrator").  This demo shows the two control
loops that make the MEC-CDN self-healing:

* a :class:`~repro.cdn.health.HealthMonitor` probing the cache pods, so
  the C-DNS stops answering with a crashed cache within a probe interval;
* a :class:`~repro.mec.controller.ReplicaController` keeping the C-DNS
  service at its replica count, so even killing the router pod only
  causes a brief gap — its fixed cluster IP moves to the replacement.

Run:  python examples/resilience_demo.py
"""

from repro.cdn import CacheServer, ContentCatalog, CoverageZone, HealthMonitor, TrafficRouter
from repro.dnswire import Name
from repro.mec import Orchestrator, ReplicaController
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import StubResolver

DOMAIN = Name("mycdn.ciab.test")
CONTENT = Name("video.demo1.mycdn.ciab.test")


def main() -> None:
    print(__doc__)
    sim = Simulator()
    net = Network(sim, RandomStreams(41))
    node_a = net.add_host("node-a", "10.40.2.10")
    node_b = net.add_host("node-b", "10.40.2.11")
    net.add_link("node-a", "node-b", Constant(0.2))
    net.add_host("ue", "10.45.0.2")
    net.add_link("ue", "node-a", Constant(4))
    net.add_link("ue", "node-b", Constant(4))

    orch = Orchestrator(net, "edge1")
    orch.register_node(node_a)
    orch.register_node(node_b)
    catalog = ContentCatalog()
    catalog.add_object(CONTENT, "/seg1.ts", 100_000)

    # Cache pods.
    caches = []
    cache_service = orch.create_service("cache", namespace="cdn", port=80)

    def start_cache(pod):
        cache = CacheServer(net, pod.host, catalog)
        cache.warm(catalog.under_domain(DOMAIN))
        caches.append(cache)
        return cache

    for _ in range(3):
        orch.deploy_pod(cache_service, start_cache)

    # C-DNS service under a replica controller, with health-checked caches.
    cdns_service = orch.create_service("trafficrouter", namespace="cdn",
                                       port=53)
    monitor = HealthMonitor(net, node_a, caches, interval_ms=200,
                            probe_timeout_ms=80, failure_threshold=2)
    monitor.start()

    def start_router(pod):
        return TrafficRouter(
            net, pod.host, DOMAIN,
            zones=[CoverageZone("edge", ["10.0.0.0/8"], caches)],
            health_check=monitor.is_healthy, answer_ttl=0)

    controller = ReplicaController(orch, cdns_service, start_router,
                                   replicas=1, check_interval_ms=250)
    controller.start()
    sim.run(until=300)  # let the first reconcile place the router pod

    def resolve():
        stub = StubResolver(net, net.host("ue"), cdns_service.endpoint,
                            timeout=400, retries=3)
        return sim.run_until_resolved(sim.spawn(stub.query(CONTENT)))

    baseline = resolve()
    print(f"t={sim.now:7.0f}ms  baseline: {CONTENT} -> "
          f"{baseline.addresses[0]} in {baseline.query_time_ms:.1f} ms "
          f"(router pod {cdns_service.active_pod.name})")

    # --- Chaos 1: crash the cache that currently serves the content -----
    victim = next(cache for cache in caches
                  if cache.endpoint.ip == baseline.addresses[0])
    victim.online = False
    print(f"t={sim.now:7.0f}ms  CRASH cache {victim.name}")
    sim.run(until=sim.now + 600)  # two probe intervals
    rerouted = resolve()
    print(f"t={sim.now:7.0f}ms  monitor rerouted: {CONTENT} -> "
          f"{rerouted.addresses[0]} "
          f"(healthy caches: {monitor.healthy_count}/3)")
    assert rerouted.addresses[0] != victim.endpoint.ip

    # --- Chaos 2: kill the C-DNS pod itself ------------------------------
    dead_pod = cdns_service.active_pod
    orch.kill_pod(dead_pod)
    dead_pod.app.sock.close()
    print(f"t={sim.now:7.0f}ms  KILL router pod {dead_pod.name}")
    sim.run(until=sim.now + 600)  # give the controller a cycle or two
    recovered = resolve()
    print(f"t={sim.now:7.0f}ms  controller restarted the router "
          f"({cdns_service.active_pod.name}); resolution works again: "
          f"{CONTENT} -> {recovered.addresses[0]} in "
          f"{recovered.query_time_ms:.1f} ms")
    print(f"\nrestarts={controller.restarts}, probes={monitor.probes_sent}, "
          f"health transitions={monitor.transitions}")
    print("Same cluster IP before and after every failure — clients never "
          "reconfigure anything.")
    assert recovered.status == "NOERROR"

    monitor.stop()
    controller.stop()


if __name__ == "__main__":
    main()
