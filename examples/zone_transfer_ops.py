#!/usr/bin/env python
"""Zone operations: publishing new CDN content via zone transfer.

The CDN's delivery zone changes whenever customers publish content.  In
standard DNS operations the authoritative primary bumps the SOA serial
and secondaries pull the change with AXFR — over TCP, because the payload
outgrows a UDP response.  This demo runs that pipeline on the simulated
stack: primary update -> SOA poll -> truncated UDP answer -> TCP
transfer -> the secondary starts answering for the new name.

Run:  python examples/zone_transfer_ops.py
"""

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.netsim import Constant, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, SecondaryZone, StubResolver

ORIGIN = Name("mycdn.ciab.test")


def rr(owner, rtype, rdata, ttl=300):
    return ResourceRecord(Name(owner), rtype, ttl, rdata)


def build_zone(serial, published):
    zone = Zone(ORIGIN)
    zone.add(rr("mycdn.ciab.test", RecordType.SOA,
                SOA(Name("ns1.mycdn.ciab.test"),
                    Name("admin.mycdn.ciab.test"),
                    serial, 60, 30, 1209600, 300)))
    zone.add(rr("mycdn.ciab.test", RecordType.NS,
                NS(Name("ns1.mycdn.ciab.test"))))
    zone.add(rr("ns1.mycdn.ciab.test", RecordType.A, A("10.0.0.53")))
    for index, name in enumerate(published):
        zone.add(rr(f"{name}.mycdn.ciab.test", RecordType.A,
                    A(f"10.233.1.{10 + index}")))
    return zone


def main() -> None:
    print(__doc__)
    sim = Simulator()
    net = Network(sim, RandomStreams(67))
    net.add_host("primary", "10.0.0.53")     # the CDN's master server
    net.add_host("edge-ns", "10.96.0.53")    # the MEC-side secondary
    net.add_host("ue", "10.45.0.2")
    net.add_link("primary", "edge-ns", Constant(12))
    net.add_link("ue", "edge-ns", Constant(3))

    primary = AuthoritativeServer(
        net, net.host("primary"),
        [build_zone(serial=2024010101,
                    published=[f"video{i}" for i in range(20)])])
    edge_server = AuthoritativeServer(net, net.host("edge-ns"), [])
    secondary = SecondaryZone(net, edge_server, ORIGIN, primary.endpoint)

    print("Initial sync:")
    transferred = sim.run_until_resolved(sim.spawn(secondary.refresh_once()))
    print(f"  transferred={transferred}, serial={secondary.serial}, "
          f"records={sum(1 for _ in edge_server.zones[ORIGIN].records())}")

    stub = StubResolver(net, net.host("ue"), edge_server.endpoint)
    result = sim.run_until_resolved(sim.spawn(
        stub.query(Name("video0.mycdn.ciab.test"))))
    print(f"  UE resolves video0 via the edge secondary -> "
          f"{result.addresses[0]}\n")

    print("Publish a new delivery service on the primary (serial bump):")
    primary.add_zone(build_zone(
        serial=2024010102,
        published=[f"video{i}" for i in range(20)] + ["livestream"]))
    before = secondary.transfers
    transferred = sim.run_until_resolved(sim.spawn(secondary.refresh_once()))
    print(f"  poll found serial {secondary.serial}; "
          f"transferred={transferred} (AXFR #{secondary.transfers})")
    result = sim.run_until_resolved(sim.spawn(
        stub.query(Name("livestream.mycdn.ciab.test"))))
    print(f"  UE resolves the new name -> {result.addresses[0]}")
    assert secondary.transfers == before + 1

    print("\nIdle poll (no change):")
    transferred = sim.run_until_resolved(sim.spawn(secondary.refresh_once()))
    print(f"  transferred={transferred} — serial unchanged, "
          f"no transfer traffic")
    stub2 = StubResolver(net, net.host("ue"), edge_server.endpoint)
    print(f"\nThe 20-record zone exceeds a 512-byte UDP answer, so each "
          f"transfer ran over the stream transport; the edge answers "
          f"locally either way.")


if __name__ == "__main__":
    main()
