#!/usr/bin/env python
"""Cache policy study: eviction policy vs. hit ratio at a small MEC edge.

An MEC cache is small relative to a CDN's catalog ("for scalability
reasons, [multiple cache server instances] are co-running at a MEC
location"), so the eviction policy decides how much traffic stays at the
edge.  This study replays the same Zipf-skewed request stream against an
edge cache under LRU, LFU, and FIFO at several cache sizes and reports
the edge hit ratio and mean fetch latency.

Run:  python examples/cache_policy_study.py
"""

from repro.cdn import (
    CacheServer,
    ContentCatalog,
    FifoPolicy,
    HttpClient,
    LfuPolicy,
    LruPolicy,
    ZipfWorkload,
)
from repro.dnswire import Name
from repro.experiments.report import format_table
from repro.netsim import Constant, Network, RandomStreams, Simulator

CATALOG_OBJECTS = 400
REQUESTS = 1200
ZIPF_EXPONENT = 0.9
POLICIES = {"LRU": LruPolicy, "LFU": LfuPolicy, "FIFO": FifoPolicy}
#: Cache size as a fraction of the total catalog bytes.
SIZE_FRACTIONS = (0.05, 0.15, 0.40)


def run_one(policy_name, fraction, seed=71):
    sim = Simulator()
    net = Network(sim, RandomStreams(seed))
    net.add_host("client", "10.45.0.2")
    net.add_host("edge", "10.233.1.10")
    net.add_host("origin", "203.0.113.80")
    net.add_link("client", "edge", Constant(2))
    net.add_link("edge", "origin", Constant(35))

    catalog = ContentCatalog()
    rng = net.streams.stream("catalog")
    items = catalog.populate_synthetic(Name("video.mycdn.ciab.test"),
                                       CATALOG_OBJECTS, rng,
                                       min_bytes=50_000, max_bytes=400_000)
    total_bytes = sum(item.size_bytes for item in items)
    origin = CacheServer(net, net.host("origin"), catalog, is_origin=True)
    edge = CacheServer(net, net.host("edge"), catalog,
                       capacity_bytes=max(int(total_bytes * fraction), 1),
                       policy=POLICIES[policy_name](),
                       parent=origin.endpoint)

    workload = ZipfWorkload(items, net.streams.stream("workload"),
                            exponent=ZIPF_EXPONENT)
    client = HttpClient(net, net.host("client"))
    latencies = []
    for item in workload.requests(REQUESTS):
        fetch = sim.run_until_resolved(
            sim.spawn(client.fetch(item.url, "10.233.1.10")))
        latencies.append(fetch.latency_ms)
    return edge.stats.hit_ratio, sum(latencies) / len(latencies)


def main() -> None:
    print(__doc__)
    rows = []
    for fraction in SIZE_FRACTIONS:
        for policy_name in POLICIES:
            hit_ratio, mean_latency = run_one(policy_name, fraction)
            rows.append((f"{100 * fraction:.0f}%", policy_name,
                         f"{100 * hit_ratio:.1f}%", f"{mean_latency:.1f}"))
    print(format_table(
        ["Cache size (of catalog)", "Policy", "Edge hit ratio",
         "mean fetch ms"],
        rows,
        title=f"Zipf({ZIPF_EXPONENT}) stream of {REQUESTS} requests over "
              f"{CATALOG_OBJECTS} objects"))
    print("\nEvery edge miss pays the 70 ms origin round trip — at MEC "
          "cache sizes, policy choice moves the mean fetch latency by "
          "tens of percent, which is why ATC-style CDNs pin content with "
          "consistent hashing before relying on eviction.")


if __name__ == "__main__":
    main()
