#!/usr/bin/env python
"""Mobility: a UE hands off between two MEC edge sites.

The paper's §3 (P1): "when an end user connects to a particular base
station, its target DNS is switched to that of the MEC DNS.  This can be
performed ... as part of the cellular hand-off process."

This example builds two edge sites, each with its own MEC-CDN (cluster,
caches, C-DNS, CoreDNS), drives a UE from cell A to cell B, and shows
that after the handoff the UE resolves the same CDN name to a cache at
the *new* edge — location-aware answers with no client configuration.

Run:  python examples/mobility_handoff.py
"""

from repro.cdn import ContentCatalog
from repro.core import MecCdnSite
from repro.dnswire import Name
from repro.mobile import (
    EvolvedPacketCore,
    HandoffController,
    UserEquipment,
)
from repro.core.deployments import TESTBED_LTE
from repro.netsim import Constant, Network, RandomStreams, Simulator

CDN_DOMAIN = Name("mycdn.ciab.test")
CONTENT = Name("video.demo1.mycdn.ciab.test")


def build_edge_site(network, epc, site_name, node_subnet, service_cidr,
                    pod_cidr):
    """One MEC cluster hanging off the shared P-GW."""
    nodes = []
    for index in range(2):
        node = network.add_host(f"{site_name}-node-{index}",
                                f"{node_subnet}.{10 + index}")
        network.add_link(node.name, epc.pgw.name, Constant(0.25))
        nodes.append(node)
    network.add_link(nodes[0].name, nodes[1].name, Constant(0.2))
    catalog = ContentCatalog()
    catalog.add_object(CONTENT, "/seg1.ts", 200_000)
    return MecCdnSite(
        network, site_name, nodes, catalog,
        cdn_domain=CDN_DOMAIN,
        client_networks=["10.45.0.0/16", "10.40.0.0/16",
                         node_subnet + ".0/24", pod_cidr],
        # Disjoint service/pod CIDR slices per site, so their cluster and
        # cache addresses never collide (and are distinguishable below).
        service_cidr=service_cidr,
        pod_cidr=pod_cidr,
        cache_count=2)


def main() -> None:
    print(__doc__)
    sim = Simulator()
    network = Network(sim, RandomStreams(23))
    epc = EvolvedPacketCore(network, "lte", TESTBED_LTE,
                            sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
                            public_ips=["198.51.100.1"])

    site_a = build_edge_site(network, epc, "edge-a", "10.40.2",
                             "10.96.0.0/17", "10.233.64.0/19")
    site_b = build_edge_site(network, epc, "edge-b", "10.40.3",
                             "10.96.128.0/17", "10.233.96.0/19")
    # Each cell advertises its own edge's MEC DNS.
    cell_a = epc.add_base_station("enb-a", "10.40.1.1",
                                  mec_dns=site_a.ldns_endpoint)
    cell_b = epc.add_base_station("enb-b", "10.40.1.2",
                                  mec_dns=site_b.ldns_endpoint)

    ue = UserEquipment(network, "ue-1", "10.45.0.2")
    cell_a.attach(ue)
    print(f"UE attached at {cell_a.name}; DNS target pushed: {ue.dns}")

    def resolve():
        stub = ue.stub()
        return sim.run_until_resolved(sim.spawn(stub.query(CONTENT)))

    before = resolve()
    caches_a = [c.endpoint.ip for c in site_a.caches]
    caches_b = [c.endpoint.ip for c in site_b.caches]
    print(f"  {CONTENT} -> {before.addresses[0]} "
          f"(edge-a cache: {before.addresses[0] in caches_a}) "
          f"in {before.query_time_ms:.1f} ms")

    controller = HandoffController(network)
    record = controller.handoff(ue, cell_b)
    print(f"\nHandoff {record.source} -> {record.target} at "
          f"t={record.time:.1f} ms; DNS switched: {record.dns_switched}")
    print(f"UE DNS target now: {ue.dns}")

    after = resolve()
    print(f"  {CONTENT} -> {after.addresses[0]} "
          f"(edge-b cache: {after.addresses[0] in caches_b}) "
          f"in {after.query_time_ms:.1f} ms")

    assert before.addresses[0] in caches_a
    assert after.addresses[0] in caches_b
    print("\nSame name, same UE — but each edge answered with its own "
          "local cache. That is P2 surviving mobility.")


if __name__ == "__main__":
    main()
