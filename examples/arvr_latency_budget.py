#!/usr/bin/env python
"""AR/VR latency budget: which DNS deployment leaves room for rendering?

The paper motivates MEC-CDN with the "sub 20 ms requirements of emerging
workloads such as AR/VR", and notes that on the 4G testbed "a dominant
component of the MEC L-DNS time is the wireless LTE latency ... Future 5G
deployments will drastically reduce this time".

An AR app that must refresh a content overlay pays DNS + content fetch
before anything renders.  This example measures both components for every
Figure 5 deployment — on the 4G-LTE testbed *and* with the radio swapped
for 5G NR — and reports the headroom left inside a 20 ms budget.

Run:  python examples/arvr_latency_budget.py
"""

from repro.cdn import HttpClient
from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    TESTBED_5G,
    TESTBED_LTE,
    build_testbed,
)
from repro.experiments.report import format_table
from repro.measure import measure_deployment_queries, summarize

BUDGET_MS = 20.0
#: A small AR asset (a texture tile) — transfer is not the bottleneck.
ASSET_BYTES = 32_000


def measure(key: str, profile):
    testbed = build_testbed(key, seed=11, profile=profile)
    # Publish an AR-sized asset on the delivery domain and place it at
    # the edge caches (content placement is a deploy-time action).
    item = testbed.mec_site.catalog.add_object(
        testbed.query_name, "/overlay/tile.png", ASSET_BYTES)
    for cache in testbed.mec_site.caches:
        cache.warm([item])

    dns = measure_deployment_queries(testbed, count=12)
    dns_mean = summarize([m.latency_ms for m in dns]).mean
    cache_ip = dns[0].addresses[0]

    sim = testbed.sim
    client = HttpClient(testbed.network, testbed.ue.host)
    fetch_times = []
    for _ in range(12):
        fetch = sim.run_until_resolved(
            sim.spawn(client.fetch(item.url, cache_ip)))
        fetch_times.append(fetch.latency_ms)
    fetch_mean = summarize(fetch_times).mean
    return dns_mean, fetch_mean


def main() -> None:
    print(__doc__)
    for radio_name, profile in (("4G-LTE", TESTBED_LTE),
                                ("5G NR", TESTBED_5G)):
        rows = []
        for key in DEPLOYMENT_KEYS:
            dns_mean, fetch_mean = measure(key, profile)
            total = dns_mean + fetch_mean
            headroom = BUDGET_MS - total
            verdict = "OK" if headroom > 0 else "BLOWN"
            rows.append((key, f"{dns_mean:.1f}", f"{fetch_mean:.1f}",
                         f"{total:.1f}", f"{headroom:+.1f}", verdict))
        print(format_table(
            ["Deployment", "DNS ms", "fetch ms", "total ms",
             f"headroom vs {BUDGET_MS:.0f}ms", "verdict"],
            rows,
            title=f"AR/VR content-update budget over {radio_name}"))
        print()
    print("Over LTE the ~10 ms wireless round trip eats half the budget "
          "before any server is involved;\nover 5G only the deployments "
          "that keep BOTH the resolver and the CDN router at the MEC\n"
          "leave real headroom for the application — the paper's P1+P2 "
          "argument in two tables.")


if __name__ == "__main__":
    main()
