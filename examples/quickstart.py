#!/usr/bin/env python
"""Quickstart: build a MEC-CDN edge site and watch one request flow.

This walks the paper's Figure 4 end to end:

1. assemble an LTE testbed (UE, eNB, S-GW, P-GW) and a MEC cluster;
2. deploy the MEC-CDN: cache pods, the C-DNS traffic router, and the
   CoreDNS L-DNS with a split namespace and a stub domain;
3. resolve a CDN URL from the UE — a single hop, contained at the MEC;
4. fetch the content from the edge cache the answer named.

Run:  python examples/quickstart.py
"""

from repro.cdn import ContentCatalog, HttpClient
from repro.core.deployments import build_testbed
from repro.dnswire import Name
from repro.measure import measure_deployment_queries, summarize


def main() -> None:
    print(__doc__)
    testbed = build_testbed("mec-ldns-mec-cdns", seed=7)
    print(f"Testbed: UE={testbed.ue.name} -> DNS {testbed.ue.dns} "
          f"(the CoreDNS cluster IP)")
    print(f"MEC site: {testbed.mec_site}\n")

    # --- Step 1: resolve the CDN content name from the UE -----------------
    measurements = measure_deployment_queries(testbed, count=10)
    stats = summarize([m.latency_ms for m in measurements])
    cache_ip = measurements[0].addresses[0]
    print(f"Resolved {testbed.query_name} -> {cache_ip}")
    print(f"DNS latency over 10 queries: {stats}")
    wireless = summarize([m.wireless_ms for m in measurements]).mean
    print(f"  of which wireless (UE<->P-GW): {wireless:.1f} ms "
          f"({100 * wireless / stats.mean:.0f}% of the lookup)\n")

    # --- Step 2: fetch the content from the answered cache ----------------
    sim = testbed.sim
    client = HttpClient(testbed.network, testbed.ue.host)
    url = f"http://{testbed.query_name.to_text().rstrip('.')}/seg1.ts"
    fetch = sim.run_until_resolved(sim.spawn(client.fetch(url, cache_ip)))
    print(f"GET {url}")
    print(f"  -> {fetch.status} {fetch.size_bytes} bytes from "
          f"{fetch.served_by} ({'HIT' if fetch.cache_hit else 'MISS'}) "
          f"in {fetch.latency_ms:.1f} ms")

    # --- Step 3: the split namespace protects the vRAN --------------------
    stub = testbed.ue.stub()
    result = sim.run_until_resolved(sim.spawn(
        stub.query(Name("trafficrouter.cdn.svc.cluster.local"))))
    print(f"\nUE asking for an internal VNF name -> {result.status} "
          f"(the split namespace hides the vRAN)")


if __name__ == "__main__":
    main()
