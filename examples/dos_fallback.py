#!/usr/bin/env python
"""Overload mitigation: the MEC orchestrator sheds DNS load gracefully.

The paper's §3: the MEC DNS offers *best-effort* service — the MEC
orchestrator "can simply switch (or only unicast) to the provider's
L-DNS during high ingress (above a threshold)".  This example drives a
query flood at the MEC DNS, shows the ingress monitor crossing its
threshold, the managed UEs being re-targeted at the provider's L-DNS
(degraded latency, preserved availability), and the restoration once the
flood subsides.

Run:  python examples/dos_fallback.py
"""

from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.mec import DosMitigation, IngressMonitor
from repro.mobile import UserEquipment
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer

CDN_DOMAIN = "mycdn.ciab.test"
CONTENT = Name(f"video.demo1.{CDN_DOMAIN}")


def build_zone(address):
    zone = Zone(Name(CDN_DOMAIN))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.SOA, 300,
                            SOA(Name(f"ns.{CDN_DOMAIN}"),
                                Name(f"admin.{CDN_DOMAIN}"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.NS, 300,
                            NS(Name(f"ns.{CDN_DOMAIN}"))))
    zone.add(ResourceRecord(CONTENT, RecordType.A, 0, A(address)))
    return zone


def main() -> None:
    print(__doc__)
    sim = Simulator()
    network = Network(sim, RandomStreams(31))
    network.add_host("ue", "10.45.0.2")
    network.add_host("attacker", "10.45.0.66")
    network.add_host("mec-dns", "10.96.0.10")
    network.add_host("provider-ldns", "203.0.113.10")
    network.add_link("ue", "mec-dns", Constant(3))
    network.add_link("attacker", "mec-dns", Constant(3))
    network.add_link("ue", "provider-ldns", Constant(45))

    mec_dns = AuthoritativeServer(network, network.host("mec-dns"),
                                  [build_zone("10.233.1.10")])
    AuthoritativeServer(network, network.host("provider-ldns"),
                        [build_zone("10.233.1.10")])

    monitor = IngressMonitor(window_ms=1000, threshold_qps=200)
    mitigation = DosMitigation(
        monitor,
        mec_dns=Endpoint("10.96.0.10", 53),
        provider_ldns=Endpoint("203.0.113.10", 53))
    ue = UserEquipment(network, "managed-ue", "10.45.0.3",
                       default_dns=Endpoint("10.96.0.10", 53))
    network.add_link("managed-ue", "mec-dns", Constant(3))
    network.add_link("managed-ue", "provider-ldns", Constant(45))
    mitigation.manage(ue)

    # Hook the monitor into the MEC DNS ingress path (the orchestrator
    # "has access to monitoring statistics of the ingress network load").
    original = mec_dns.sock.on_datagram

    def metered(payload, client, sock):
        monitor.record(sim.now)
        mitigation.evaluate(sim.now)
        original(payload, client, sock)

    mec_dns.sock.on_datagram = metered

    def resolve():
        stub = ue.stub()
        result = sim.run_until_resolved(sim.spawn(stub.query(CONTENT)))
        return result

    baseline = resolve()
    print(f"Baseline: UE resolves via {baseline.server} in "
          f"{baseline.query_time_ms:.1f} ms "
          f"(rate {monitor.rate_qps(sim.now):.0f} qps)\n")

    # The flood: 400 queries in ~0.8 s from the attacker host.
    from repro.netsim import UdpSocket
    from repro.dnswire import make_query
    attacker_sock = UdpSocket(network.host("attacker"))

    def flood():
        for index in range(400):
            query = make_query(CONTENT, msg_id=index + 1)
            attacker_sock.send_to(query.to_wire(), Endpoint("10.96.0.10", 53))
            yield 2  # 500 qps
    sim.run_until_resolved(sim.spawn(flood()))

    print(f"After flood: ingress {monitor.rate_qps(sim.now):.0f} qps "
          f"(threshold {monitor.threshold_qps:.0f}); "
          f"mitigating={mitigation.mitigating}")
    degraded = resolve()
    print(f"During mitigation: UE resolves via {degraded.server} in "
          f"{degraded.query_time_ms:.1f} ms — slower, but still available\n")

    # Quiet period: the monitor window drains and UEs are restored.
    sim.run(until=sim.now + 5000)
    mitigation.evaluate(sim.now)
    restored = resolve()
    print(f"After quiet period: mitigating={mitigation.mitigating}; "
          f"UE resolves via {restored.server} in "
          f"{restored.query_time_ms:.1f} ms")
    assert restored.server == Endpoint("10.96.0.10", 53)


if __name__ == "__main__":
    main()
