"""Benchmark: regenerate Table 1 (sites and CDN domains).

Table 1 is derived data; the benchmark times the derivation + rendering
and records the row content so the output is paper-comparable.
"""

from repro.experiments.table1 import run as run_table1


def test_table1(benchmark):
    result = benchmark(run_table1)
    rows = {row.site: row.domain for row in result.rows}
    assert rows == {
        "Airbnb": "a0.muscache.com",
        "Booking.com": "q-cf.bstatic.com",
        "TripAdvisor": "static.tacdn.com",
        "Agoda": "cdn0.agoda.net",
        "Expedia": "a.cdn.intentmedia.net",
    }
    benchmark.extra_info["rows"] = rows
    print()
    print(result.render())
