"""Benchmark: regenerate Figure 2 (lookup latency per domain x network).

Runs the full 5-domain x 3-network sweep (the paper's ">= 12 tests" per
bar) and asserts the figure's shape claims before reporting the series.
"""

from repro.experiments.figure2 import check_shape, run as run_figure2

TRIALS = 14


def test_figure2(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure2(trials=TRIALS, seed=3),
        rounds=3, iterations=1)
    violations = check_shape(result)
    assert violations == []
    bars = result.bars()
    benchmark.extra_info["bars_ms"] = {
        f"{site}/{connectivity}": round(mean, 1)
        for (site, connectivity), mean in bars.items()}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
