"""Benchmark: the paper's 5G projection (extension of Figure 5).

§4: "a dominant component of the MEC L-DNS time is the wireless LTE
latency (approx. 10 ms one way).  Future 5G deployments will drastically
reduce this time, resulting in even greater end-to-end boost for
MEC-CDN."  This benchmark swaps the testbed radio for the 5G NR profile
and re-runs the Figure 5 sweep.
"""

from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    TESTBED_5G,
    build_testbed,
)
from repro.experiments.report import format_table
from repro.measure import measure_deployment_queries, summarize

QUERIES = 20


def sweep(profile):
    means = {}
    wireless = {}
    for key in DEPLOYMENT_KEYS:
        testbed = build_testbed(key, seed=42, profile=profile)
        measurements = measure_deployment_queries(testbed, QUERIES)
        means[key] = summarize([m.latency_ms for m in measurements]).mean
        wireless[key] = summarize([m.wireless_ms for m in measurements]).mean
    return means, wireless


def test_5g_projection(benchmark):
    means_5g, wireless_5g = benchmark.pedantic(
        lambda: sweep(TESTBED_5G), rounds=2, iterations=1)
    from repro.core.deployments import TESTBED_LTE
    means_lte, wireless_lte = sweep(TESTBED_LTE)

    # The wireless component collapses (>3x) and the MEC bar with it.
    assert wireless_5g["mec-ldns-mec-cdns"] < \
        wireless_lte["mec-ldns-mec-cdns"] / 3
    assert means_5g["mec-ldns-mec-cdns"] < 10
    # The relative boost for MEC-CDN grows under 5G, as projected:
    # the far resolvers barely improve, the MEC bar nearly halves.
    boost_lte = means_lte["cloudflare-dns"] / means_lte["mec-ldns-mec-cdns"]
    boost_5g = means_5g["cloudflare-dns"] / means_5g["mec-ldns-mec-cdns"]
    assert boost_5g > boost_lte * 1.5

    benchmark.extra_info["means_5g_ms"] = {k: round(v, 1)
                                           for k, v in means_5g.items()}
    benchmark.extra_info["speedup_lte"] = round(boost_lte, 1)
    benchmark.extra_info["speedup_5g"] = round(boost_5g, 1)
    rows = [(key, f"{means_lte[key]:.1f}", f"{means_5g[key]:.1f}")
            for key in DEPLOYMENT_KEYS]
    print()
    print(format_table(["Deployment", "LTE mean ms", "5G mean ms"], rows,
                       title="Figure 5 under the 5G radio projection"))
    print(f"MEC-CDN speedup vs Cloudflare DNS: {boost_lte:.1f}x (LTE) -> "
          f"{boost_5g:.1f}x (5G)")
