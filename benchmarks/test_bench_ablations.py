"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one decision from §3 of the paper and measures
what it buys:

* split namespace vs. an exposed internal DNS (attack-surface check);
* C-DNS scope restricted to the edge vs. a global candidate set;
* client fallback strategy for non-MEC names (multicast race vs.
  forward-on-timeout vs. provider-only);
* CoreDNS response caching on/off;
* public-IP plans (dedicated per component vs. shared cluster IP).
"""

import pytest

from repro.cdn import CacheServer, ContentCatalog, CoverageZone, TrafficRouter
from repro.core import FallbackClient
from repro.dnswire import Name, RecordType, ResourceRecord, Zone
from repro.dnswire.rdata import A, NS, SOA
from repro.mec.ipreuse import PublicIpPlan, SiteInventory
from repro.netsim import Constant, Endpoint, Network, RandomStreams, Simulator
from repro.resolver import AuthoritativeServer, StubResolver


def build_zone(domain, address):
    zone = Zone(Name(domain))
    zone.add(ResourceRecord(Name(domain), RecordType.SOA, 300,
                            SOA(Name(f"ns.{domain}"), Name(f"a.{domain}"),
                                1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(domain), RecordType.NS, 300,
                            NS(Name(f"ns.{domain}"))))
    zone.add(ResourceRecord(Name(f"video.{domain}"), RecordType.A, 300,
                            A(address)))
    return zone


# ---------------------------------------------------------------------------
# Ablation 1: split namespace vs. exposed internal DNS
# ---------------------------------------------------------------------------

def _probe_internal_names(split_enabled: bool) -> int:
    """How many internal VNF names a public UE can resolve."""
    from repro.core.meccdn import MecCdnSite
    from repro.mec.namespaces import NamespacePolicy

    sim = Simulator()
    net = Network(sim, RandomStreams(5))
    nodes = [net.add_host(f"node-{i}", f"10.40.2.{10 + i}") for i in range(2)]
    net.add_link("node-0", "node-1", Constant(0.2))
    net.add_host("ue", "10.45.0.2")
    net.add_link("ue", "node-0", Constant(5))
    catalog = ContentCatalog()
    catalog.add_object(Name("video.demo1.mycdn.ciab.test"), "/x", 1000)
    site = MecCdnSite(net, "edge1", nodes, catalog)
    if not split_enabled:
        # The insecure ablation: treat every client as internal.
        site.split_namespace.internal_networks.append(
            __import__("ipaddress").IPv4Network("0.0.0.0/0"))
    leaked = 0
    for service_name in ("coredns.kube-system", "trafficrouter.cdn",
                         "cache.cdn"):
        stub = StubResolver(net, net.host("ue"), site.ldns_endpoint)
        result = sim.run_until_resolved(sim.spawn(
            stub.query(Name(f"{service_name}.svc.cluster.local"))))
        if result.status == "NOERROR" and result.addresses:
            leaked += 1
    return leaked


def test_ablation_split_namespace(benchmark):
    leaked_with_split = benchmark.pedantic(
        lambda: _probe_internal_names(split_enabled=True),
        rounds=2, iterations=1)
    leaked_without = _probe_internal_names(split_enabled=False)
    assert leaked_with_split == 0   # the design: nothing leaks
    assert leaked_without == 3      # the ablation: the vRAN namespace leaks
    benchmark.extra_info["leaked_with_split"] = leaked_with_split
    benchmark.extra_info["leaked_without_split"] = leaked_without
    print(f"\nsplit namespace: {leaked_with_split} internal names visible "
          f"to UEs; exposed internal DNS: {leaked_without}")


# ---------------------------------------------------------------------------
# Ablation 2: C-DNS scope — edge-restricted vs. global candidate set
# ---------------------------------------------------------------------------

def _build_router(cache_count: int):
    sim = Simulator()
    net = Network(sim, RandomStreams(9))
    catalog = ContentCatalog()
    caches = []
    for index in range(cache_count):
        host = net.add_host(f"cache-{index}", f"10.233.{index // 250}."
                                              f"{index % 250 + 1}")
        caches.append(CacheServer(net, host, catalog))
    router_host = net.add_host("router", "10.96.0.53")
    zone = CoverageZone("zone", ["0.0.0.0/0"], caches)
    router = TrafficRouter(net, router_host, Name("mycdn.ciab.test"),
                           zones=[zone])
    local_ips = {cache.endpoint.ip for cache in caches[:2]}
    return router, local_ips


def test_ablation_cdns_scope_edge(benchmark):
    router, local_ips = _build_router(cache_count=2)

    def select():
        cache, _ = router.select_cache(
            Name("video.demo1.mycdn.ciab.test"), "10.45.0.2")
        return cache

    cache = benchmark(select)
    assert cache is not None
    assert cache.endpoint.ip in local_ips  # 2 candidates: always edge-local
    benchmark.extra_info["candidates"] = 2
    benchmark.extra_info["edge_local"] = True


def test_ablation_cdns_scope_global(benchmark):
    # The un-restricted router considers every cache in the CDN (64 here);
    # selection is slower and the pick is almost never the edge's own.
    router, local_ips = _build_router(cache_count=64)

    def select():
        cache, _ = router.select_cache(
            Name("video.demo1.mycdn.ciab.test"), "10.45.0.2")
        return cache

    cache = benchmark(select)
    assert cache is not None
    picks = {router.select_cache(Name(f"obj{i}.mycdn.ciab.test"),
                                 "10.45.0.2")[0].endpoint.ip
             for i in range(50)}
    edge_fraction = len(picks & local_ips) / len(picks)
    assert edge_fraction < 0.3  # the global scope rarely lands at the edge
    benchmark.extra_info["candidates"] = 64
    benchmark.extra_info["edge_local_fraction"] = round(edge_fraction, 3)


# ---------------------------------------------------------------------------
# Ablation 3: client fallback strategy for non-MEC names
# ---------------------------------------------------------------------------

def _fallback_latency(strategy: str) -> float:
    sim = Simulator()
    net = Network(sim, RandomStreams(13))
    net.add_host("ue", "10.45.0.2")
    net.add_host("mec-dns", "10.96.0.10")
    net.add_host("provider", "203.0.113.10")
    net.add_link("ue", "mec-dns", Constant(3))
    net.add_link("ue", "provider", Constant(40))
    AuthoritativeServer(net, net.host("mec-dns"),
                        [build_zone("mycdn.ciab.test", "10.233.1.10")])
    AuthoritativeServer(net, net.host("provider"),
                        [build_zone("mycdn.ciab.test", "198.18.0.1"),
                         build_zone("example.com", "198.18.0.2")])
    client = FallbackClient(net, net.host("ue"),
                            mec_dns=Endpoint("10.96.0.10", 53),
                            provider_ldns=Endpoint("203.0.113.10", 53),
                            mec_timeout=30)
    if strategy == "provider-only":
        stub = StubResolver(net, net.host("ue"), Endpoint("203.0.113.10", 53))
        result = sim.run_until_resolved(sim.spawn(
            stub.query(Name("video.example.com"))))
        return result.query_time_ms
    method = getattr(client, strategy)
    result = sim.run_until_resolved(sim.spawn(
        method(Name("video.example.com"))))
    return result.latency_ms


@pytest.mark.parametrize("strategy", ["race", "timeout_fallback",
                                      "provider-only"])
def test_ablation_fallback_strategy(benchmark, strategy):
    latency = benchmark.pedantic(lambda: _fallback_latency(strategy),
                                 rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["latency_ms"] = round(latency, 1)
    # Race adds no round trips over provider-only; timeout-fallback adds
    # at most the MEC REFUSED round trip (fast, the MEC DNS is close).
    assert latency < 130


# ---------------------------------------------------------------------------
# Ablation 4: CoreDNS response cache on/off
# ---------------------------------------------------------------------------

def _repeat_query_latency(enable_cache: bool) -> float:
    from repro.mec import CoreDnsServer, Orchestrator

    sim = Simulator()
    net = Network(sim, RandomStreams(21))
    node = net.add_host("node", "10.40.2.10")
    net.add_host("ue", "10.45.0.2")
    net.add_host("upstream", "203.0.113.10")
    net.add_link("ue", "node", Constant(3))
    net.add_link("node", "upstream", Constant(25))
    AuthoritativeServer(net, net.host("upstream"),
                        [build_zone("example.com", "198.18.0.2")])
    orch = Orchestrator(net, "edge1")
    orch.register_node(node)
    coredns = CoreDnsServer(net, node, orch,
                            upstream=Endpoint("203.0.113.10", 53),
                            enable_cache=enable_cache)
    stub = StubResolver(net, net.host("ue"), coredns.endpoint)
    sim.run_until_resolved(sim.spawn(stub.query(Name("video.example.com"))))
    second = sim.run_until_resolved(sim.spawn(
        stub.query(Name("video.example.com"))))
    return second.query_time_ms


def test_ablation_coredns_cache(benchmark):
    cached = benchmark.pedantic(lambda: _repeat_query_latency(True),
                                rounds=2, iterations=1)
    uncached = _repeat_query_latency(False)
    assert cached < uncached / 3
    benchmark.extra_info["repeat_query_cached_ms"] = round(cached, 1)
    benchmark.extra_info["repeat_query_uncached_ms"] = round(uncached, 1)


# ---------------------------------------------------------------------------
# Ablation 5: public-IP plans
# ---------------------------------------------------------------------------

def test_ablation_public_ip_reuse(benchmark):
    sites = [SiteInventory(f"site-{index}", cdn_domains=20, cache_servers=8,
                           routers=1, ldns_instances=1)
             for index in range(50)]
    result = benchmark(lambda: PublicIpPlan(sites).evaluate())
    assert result.dedicated_total == 50 * 30
    assert result.shared_total == 50
    assert result.savings_factor == 30.0
    benchmark.extra_info["dedicated_total"] = result.dedicated_total
    benchmark.extra_info["shared_total"] = result.shared_total
    print(f"\npublic IPs for 50 edge sites: dedicated plan "
          f"{result.dedicated_total}, shared-cluster-IP plan "
          f"{result.shared_total} ({result.savings_factor:.0f}x fewer)")
