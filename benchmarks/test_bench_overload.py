"""Benchmark: the MEC DNS under flood, with/without mitigation (extension).

Quantifies §3's best-effort claim: the orchestrator's switch-to-provider
policy preserves availability during a flood at the cost of provider-path
latency.
"""

from repro.experiments.overload import check_shape, run


def test_overload(benchmark):
    result = benchmark.pedantic(lambda: run(attack_qps=1500, seed=0),
                                rounds=2, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["attack_success_rate"] = {
        row.policy: round(row.attack_success_rate, 2)
        for row in result.rows}
    benchmark.extra_info["attack_p95_ms"] = {
        row.policy: round(row.attack_p95_ms, 1) for row in result.rows}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
