"""Benchmark: regenerate the §4 ECS sensitivity experiment.

Paper: enabling ECS at L-DNS and C-DNS changed the first three Figure 5
deployments by 1.01x, 1.08x and 0.95x — around break-even — while the
query "was always correctly resolved to the appropriate CDN cache server
at the MEC".
"""

from repro.experiments.ecs import PAPER_RATIOS, check_shape, run as run_ecs

QUERIES = 25


def test_ecs(benchmark):
    result = benchmark.pedantic(
        lambda: run_ecs(queries=QUERIES, seed=42),
        rounds=3, iterations=1)
    violations = check_shape(result)
    assert violations == []
    benchmark.extra_info["ratios"] = {row.key: round(row.ratio, 3)
                                      for row in result.rows}
    benchmark.extra_info["paper_ratios"] = PAPER_RATIOS
    print()
    print(result.render())
    print("shape claims: ALL HOLD (ratios ~1.0, answers always the MEC cache)")
