"""Benchmark: end-to-end content access latency (extension).

Completes the paper's abstract-level claim: DNS + fetch per deployment,
showing the access-latency gap between deployments is DNS-dominated and
"drastic" (>4x) in favour of the full MEC-CDN design.
"""

from repro.experiments.access_latency import check_shape, run


def test_access_latency(benchmark):
    result = benchmark.pedantic(lambda: run(rounds=8, seed=42),
                                rounds=2, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["total_ms"] = {
        row.key: round(row.total_ms, 1) for row in result.rows}
    mec = result.row("mec-ldns-mec-cdns").total_ms
    worst = max(row.total_ms for row in result.rows)
    benchmark.extra_info["access_speedup"] = round(worst / mec, 2)
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
