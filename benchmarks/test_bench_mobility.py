"""Benchmark: DNS continuity across an inter-edge handoff (extension).

The paper's §3 design switches the UE's DNS target "as part of the
cellular hand-off process".  This benchmark measures resolution latency
and edge-locality immediately before and after a handoff between two
MEC-CDN sites.
"""

from repro.cdn import ContentCatalog
from repro.core import MecCdnSite
from repro.core.deployments import TESTBED_LTE
from repro.dnswire import Name
from repro.mobile import EvolvedPacketCore, HandoffController, UserEquipment
from repro.netsim import Constant, Network, RandomStreams, Simulator

CDN_DOMAIN = Name("mycdn.ciab.test")
CONTENT = Name("video.demo1.mycdn.ciab.test")


def build_two_site_world(seed=19):
    sim = Simulator()
    net = Network(sim, RandomStreams(seed))
    epc = EvolvedPacketCore(net, "lte", TESTBED_LTE,
                            sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
                            public_ips=["198.51.100.1"])
    sites = []
    for index, (subnet, service_cidr, pod_cidr) in enumerate((
            ("10.40.2", "10.96.0.0/17", "10.233.64.0/19"),
            ("10.40.3", "10.96.128.0/17", "10.233.96.0/19"))):
        nodes = []
        for node_index in range(2):
            node = net.add_host(f"edge{index}-node-{node_index}",
                                f"{subnet}.{10 + node_index}")
            net.add_link(node.name, epc.pgw.name, Constant(0.25))
            nodes.append(node)
        net.add_link(nodes[0].name, nodes[1].name, Constant(0.2))
        catalog = ContentCatalog()
        catalog.add_object(CONTENT, "/seg1.ts", 200_000)
        sites.append(MecCdnSite(
            net, f"edge{index}", nodes, catalog, cdn_domain=CDN_DOMAIN,
            client_networks=["10.45.0.0/16", "10.40.0.0/16", pod_cidr],
            service_cidr=service_cidr, pod_cidr=pod_cidr))
    cells = [
        epc.add_base_station("enb-0", "10.40.1.1",
                             mec_dns=sites[0].ldns_endpoint),
        epc.add_base_station("enb-1", "10.40.1.2",
                             mec_dns=sites[1].ldns_endpoint),
    ]
    ue = UserEquipment(net, "ue-1", "10.45.0.2")
    cells[0].attach(ue)
    return sim, net, ue, cells, sites


def run_handoff_measurement():
    sim, net, ue, cells, sites = build_two_site_world()

    def resolve():
        stub = ue.stub()
        return sim.run_until_resolved(sim.spawn(stub.query(CONTENT)))

    before = [resolve() for _ in range(8)]
    HandoffController(net).handoff(ue, cells[1])
    after = [resolve() for _ in range(8)]
    local_before = sum(
        r.addresses[0] in [c.endpoint.ip for c in sites[0].caches]
        for r in before)
    local_after = sum(
        r.addresses[0] in [c.endpoint.ip for c in sites[1].caches]
        for r in after)
    mean_before = sum(r.query_time_ms for r in before) / len(before)
    mean_after = sum(r.query_time_ms for r in after) / len(after)
    return local_before, local_after, mean_before, mean_after


def test_mobility_handoff(benchmark):
    local_before, local_after, mean_before, mean_after = benchmark.pedantic(
        run_handoff_measurement, rounds=2, iterations=1)
    # Every answer is edge-local on both sides of the handoff...
    assert local_before == 8
    assert local_after == 8
    # ...and the latency stays in the MEC envelope throughout.
    assert mean_before < 20
    assert mean_after < 20
    benchmark.extra_info["mean_ms_before"] = round(mean_before, 1)
    benchmark.extra_info["mean_ms_after"] = round(mean_after, 1)
    print(f"\nresolution stays edge-local across the handoff: "
          f"{mean_before:.1f} ms -> {mean_after:.1f} ms")
