"""Benchmark: request disaggregation vs. cache miss rate (extension).

Quantifies the paper's §2 observation 2: per-connectivity answer spread
("disaggregation of requests") measurably increases the cache miss rate
even with total cache capacity held constant.
"""

from repro.experiments.disaggregation import check_shape, run


def test_disaggregation(benchmark):
    result = benchmark.pedantic(lambda: run(requests=1000, seed=0),
                                rounds=2, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["hit_ratio"] = {
        row.routing: round(row.hit_ratio, 3) for row in result.rows}
    benchmark.extra_info["mean_fetch_ms"] = {
        row.routing: round(row.mean_fetch_ms, 1) for row in result.rows}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
