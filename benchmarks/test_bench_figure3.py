"""Benchmark: regenerate Figure 3 (answer distribution over CIDR pools)."""

from repro.experiments.figure3 import check_shape, run as run_figure3

TRIALS = 30


def test_figure3(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure3(trials=TRIALS, seed=3),
        rounds=3, iterations=1)
    violations = check_shape(result)
    assert violations == []
    benchmark.extra_info["distributions"] = {
        f"{row.site}/{row.connectivity}": {
            label: round(fraction, 2)
            for label, fraction in sorted(row.distribution.items())}
        for row in result.rows}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
