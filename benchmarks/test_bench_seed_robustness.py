"""Benchmark: Figure 5's shape claims across random seeds.

Calibration could in principle hold only at the seed used for
EXPERIMENTS.md.  This sweep re-runs the Figure 5 experiment under
several independent seeds and requires every shape claim to hold for
each one, plus bounded seed-to-seed variation of the headline bar.
"""

import statistics

from repro.experiments.figure5 import check_shape, run

SEEDS = (1, 7, 42, 1234, 98765)
QUERIES = 15


def sweep():
    results = {}
    for seed in SEEDS:
        result = run(queries=QUERIES, seed=seed)
        results[seed] = result
    return results


def test_seed_robustness(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    mec_means = []
    for seed, result in results.items():
        violations = check_shape(result)
        assert violations == [], f"seed {seed}: {violations}"
        mec_means.append(result.means()["mec-ldns-mec-cdns"])
    spread = max(mec_means) - min(mec_means)
    mean = statistics.fmean(mec_means)
    # The headline bar moves by well under 15% across seeds.
    assert spread < 0.15 * mean
    benchmark.extra_info["mec_mec_means_ms"] = [round(v, 2)
                                                for v in mec_means]
    benchmark.extra_info["seeds"] = list(SEEDS)
    print(f"\nMEC/MEC mean across seeds {SEEDS}: "
          f"{mean:.1f} ms +- {spread / 2:.2f} ms; "
          f"all shape claims hold at every seed")
