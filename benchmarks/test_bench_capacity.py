"""Benchmark: the MEC DNS capacity curve (extension).

The open-loop load sweep behind the DoS discussion: goodput saturates at
the service capacity, p95 latency blows up with the queue, loss follows.
"""

from repro.experiments.capacity import check_shape, run

RATES = (400.0, 1000.0, 1500.0, 2200.0, 3500.0)


def test_capacity_curve(benchmark):
    result = benchmark.pedantic(
        lambda: run(rates=RATES, duration_ms=1200, seed=0),
        rounds=2, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["goodput_qps"] = {
        f"{point.offered_qps:.0f}": round(point.goodput_qps)
        for point in result.points}
    benchmark.extra_info["saturation_qps"] = result.saturation_qps
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
