"""Benchmark: the deployments under injected faults (extension).

Quantifies §3's resilience arguments: a crashed C-DNS or a partitioned
MEC cluster sinks the baseline's availability, while serve-stale,
backoff/hedging and provider fallback keep the resilient variants
answering inside the deadline.
"""

from repro.experiments.resilience import check_shape, run


def test_resilience(benchmark):
    result = benchmark.pedantic(lambda: run(queries=40, seed=42),
                                rounds=2, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["availability"] = {
        f"{row.scenario}/{row.deployment}/{row.mode}":
        round(row.availability, 2)
        for row in result.rows
        if row.deployment == "mec-ldns-mec-cdns"}
    benchmark.extra_info["p95_ms"] = {
        f"{row.scenario}/{row.mode}": round(row.p95_ms, 1)
        for row in result.rows
        if row.deployment == "mec-ldns-mec-cdns"}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
