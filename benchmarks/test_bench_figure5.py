"""Benchmark: regenerate Figure 5 (six DNS deployments on the LTE testbed).

This is the paper's headline result.  The benchmark runs the full
six-deployment sweep, asserts every shape claim (ordering, 20 ms envelope,
~5 ms MEC-vs-LAN gap, ~9x speedup, wireless dominance of the MEC bar),
and reports measured-vs-paper means.
"""

from repro.experiments.figure5 import PAPER_MEANS, check_shape, run as run_figure5

QUERIES = 25


def test_figure5(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure5(queries=QUERIES, seed=42),
        rounds=3, iterations=1)
    violations = check_shape(result)
    assert violations == []
    means = result.means()
    benchmark.extra_info["means_ms"] = {key: round(mean, 1)
                                        for key, mean in means.items()}
    benchmark.extra_info["paper_means_ms"] = PAPER_MEANS
    benchmark.extra_info["speedup_vs_cloudflare"] = round(
        means["cloudflare-dns"] / means["mec-ldns-mec-cdns"], 2)
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
