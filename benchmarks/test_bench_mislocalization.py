"""Benchmark: the P2 mislocalization quantification (extension).

Not a figure in the paper, but a direct quantification of its §2 claim
chain: the address the CDN sees -> GeoIP error -> far-away cache picks.
"""

from repro.experiments.mislocalization import check_shape, run


def test_mislocalization(benchmark):
    result = benchmark.pedantic(lambda: run(trials=20, seed=2),
                                rounds=3, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["geoip_error_km"] = {
        row.connectivity: round(row.geoip_error_km)
        for row in result.rows}
    benchmark.extra_info["cache_distance_km"] = {
        row.connectivity: round(row.mean_cache_distance_km)
        for row in result.rows}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
