"""Benchmark: regenerate Table 2 (entities and roles in MEC-CDN)."""

from repro.experiments.table2 import run as run_table2


def test_table2(benchmark):
    result = benchmark(run_table2)
    assert len(result.rows) == 7
    assert {row.entity for row in result.rows} == {
        "Cellular Providers", "CDN Providers", "DNS Provider",
        "Web Provider", "Cloud Provider", "CDN Brokers", "MEC Provider",
    }
    benchmark.extra_info["multi_role_entities"] = sorted(result.multi_role)
    print()
    print(result.render())
