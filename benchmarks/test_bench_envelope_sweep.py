"""Benchmark: the 20 ms envelope sweep (extension of Figure 5).

Moves the C-DNS continuously away from the MEC and locates the distance
where resolution leaves the paper's 20 ms envelope — quantifying why the
ETSI/3GPP-style "C-DNS elsewhere" architectures cannot hold it.
"""

from repro.experiments.envelope_sweep import check_shape, run


def test_envelope_sweep(benchmark):
    result = benchmark.pedantic(lambda: run(queries=10, seed=42),
                                rounds=2, iterations=1)
    assert check_shape(result) == []
    benchmark.extra_info["crossover_one_way_ms"] = round(
        result.crossover_one_way_ms, 1)
    benchmark.extra_info["sweep"] = {
        f"{point.cdns_one_way_ms:.1f}ms": round(point.mean_latency_ms, 1)
        for point in result.points}
    print()
    print(result.render())
    print("shape claims: ALL HOLD")
