#!/usr/bin/env python
"""Compare a fresh ``BENCH_profile.json`` against the committed baseline.

The perf-trajectory gate: ``repro profile <experiment>`` writes a
``repro-bench-profile-v1`` document, and this script diffs it against
the checked-in baseline::

    PYTHONPATH=src python -m repro.cli profile figure5 --out-dir out
    python scripts/bench_compare.py out/BENCH_profile.json \
        --baseline BENCH_profile.json [--tolerance 1.3] [--strict]

Wall-clock numbers are noisy across machines and CI runners, so the
default mode only **warns** on regression (exit 0); ``--strict`` turns
a regression into exit 1 for environments stable enough to gate on.  A
regression is wall time above ``tolerance ×`` baseline or event
throughput below ``baseline / tolerance``.  Deterministic counters
(events, spans, traces) are reported when they drift — a change there
is a behaviour change, not noise — but never gated on, because growing
the simulation is usually the point of a PR.
"""
from __future__ import annotations

import argparse
import json
import sys

GATED_FORMAT = "repro-bench-profile-v1"


def _load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot load {path}: {exc}")
    if not isinstance(document, dict) or document.get("format") != GATED_FORMAT:
        raise SystemExit(f"error: {path} is not a {GATED_FORMAT} document")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_profile.json")
    parser.add_argument("--baseline", default="BENCH_profile.json",
                        help="committed baseline (default: "
                             "BENCH_profile.json)")
    parser.add_argument("--tolerance", type=float, default=1.3,
                        help="allowed slowdown factor before a regression "
                             "is declared (default: 1.3)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression instead of warning")
    args = parser.parse_args()
    if args.tolerance < 1.0:
        parser.error("--tolerance must be >= 1.0")

    current = _load(args.current)
    baseline = _load(args.baseline)
    if current.get("experiment") != baseline.get("experiment"):
        raise SystemExit(
            f"error: experiment mismatch: current profiles "
            f"{current.get('experiment')!r}, baseline "
            f"{baseline.get('experiment')!r}")

    regressions = []
    wall_now = float(current.get("wall_s", 0.0))
    wall_base = float(baseline.get("wall_s", 0.0))
    print(f"wall_s:       {wall_now:.3f} now vs {wall_base:.3f} baseline "
          f"(x{wall_now / wall_base:.2f})" if wall_base else
          f"wall_s:       {wall_now:.3f} now (no baseline value)")
    if wall_base and wall_now > wall_base * args.tolerance:
        regressions.append(
            f"wall_s {wall_now:.3f} exceeds {args.tolerance:.2f}x baseline "
            f"{wall_base:.3f}")

    eps_now = float(current.get("events_per_s", 0.0))
    eps_base = float(baseline.get("events_per_s", 0.0))
    print(f"events_per_s: {eps_now:.0f} now vs {eps_base:.0f} baseline"
          if eps_base else f"events_per_s: {eps_now:.0f} now")
    if eps_base and eps_now < eps_base / args.tolerance:
        regressions.append(
            f"events_per_s {eps_now:.0f} below baseline {eps_base:.0f} / "
            f"{args.tolerance:.2f}")

    for counter in ("events", "spans", "traces", "simulators",
                    "max_heap_depth"):
        now, base = current.get(counter), baseline.get(counter)
        if now != base:
            print(f"note: {counter} changed: {base} -> {now} "
                  f"(behaviour change, not gated)")

    if not regressions:
        print("bench_compare: OK — within tolerance")
        return 0
    for regression in regressions:
        print(f"{'REGRESSION' if args.strict else 'warning'}: {regression}")
    if args.strict:
        return 1
    print("bench_compare: regression warnings only (pass --strict to gate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
