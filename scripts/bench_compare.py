#!/usr/bin/env python
"""Compare fresh bench documents against committed baselines.

The perf-trajectory gate.  Two document kinds are understood, selected
by their ``format`` tag:

``repro-bench-profile-v1`` (written by ``repro profile <experiment>``)::

    PYTHONPATH=src python -m repro.cli profile figure5 --out-dir out
    python scripts/bench_compare.py out/BENCH_profile.json \
        --baseline BENCH_profile.json [--tolerance 1.3] [--strict]

  Gates wall time (above ``tolerance ×`` baseline) and event throughput
  (below ``baseline / tolerance``).  With ``--min-speedup N`` the
  current document must additionally show ``events_per_s >= N ×``
  baseline — point it at a frozen pre-optimisation baseline (see
  ``perf/``) to assert a speedup has not been lost.

``repro-bench-runtime-v1`` (written by ``scripts/bench_runtime.py``)::

    python scripts/bench_runtime.py --out out/BENCH_runtime.json
    python scripts/bench_compare.py out/BENCH_runtime.json \
        --baseline BENCH_runtime.json [--strict]

  Gates each (tier, experiment) row's serial and sharded wall time
  against the matching baseline row, and gates the **scaled** tier's
  sharded speedup.  The speedup floor is CPU-aware, because the number
  means different things on different boxes: with 2+ cores the
  persistent pool must actually win (``speedup > 1.0``); on a
  single-core runner there is no parallelism to win back and the gate
  only checks that chunked dispatch keeps the overhead amortised
  (``speedup >= 0.85``).

Wall-clock numbers are noisy across machines and CI runners, so the
default mode only **warns** on regression (exit 0); ``--strict`` turns
a regression into exit 1 for environments stable enough to gate on.
Deterministic counters (events, spans, traces, digests) are reported
when they drift — a change there is a behaviour change, not noise —
but never gated on, because growing the simulation is usually the
point of a PR.
"""
from __future__ import annotations

import argparse
import json
import sys

PROFILE_FORMAT = "repro-bench-profile-v1"
RUNTIME_FORMAT = "repro-bench-runtime-v1"

#: Sharded-speedup floor by core availability (scaled tier only).
MULTI_CORE_SPEEDUP_FLOOR = 1.0
SINGLE_CORE_SPEEDUP_FLOOR = 0.85


def _load(path: str, formats) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot load {path}: {exc}")
    if not isinstance(document, dict) or document.get("format") not in formats:
        raise SystemExit(
            f"error: {path} is not one of {', '.join(sorted(formats))}")
    return document


def _compare_profile(current: dict, baseline: dict, tolerance: float,
                     min_speedup: float) -> list:
    if current.get("experiment") != baseline.get("experiment"):
        raise SystemExit(
            f"error: experiment mismatch: current profiles "
            f"{current.get('experiment')!r}, baseline "
            f"{baseline.get('experiment')!r}")

    regressions = []
    wall_now = float(current.get("wall_s", 0.0))
    wall_base = float(baseline.get("wall_s", 0.0))
    print(f"wall_s:       {wall_now:.3f} now vs {wall_base:.3f} baseline "
          f"(x{wall_now / wall_base:.2f})" if wall_base else
          f"wall_s:       {wall_now:.3f} now (no baseline value)")
    if wall_base and wall_now > wall_base * tolerance:
        regressions.append(
            f"wall_s {wall_now:.3f} exceeds {tolerance:.2f}x baseline "
            f"{wall_base:.3f}")

    eps_now = float(current.get("events_per_s", 0.0))
    eps_base = float(baseline.get("events_per_s", 0.0))
    print(f"events_per_s: {eps_now:.0f} now vs {eps_base:.0f} baseline"
          if eps_base else f"events_per_s: {eps_now:.0f} now")
    if eps_base and eps_now < eps_base / tolerance:
        regressions.append(
            f"events_per_s {eps_now:.0f} below baseline {eps_base:.0f} / "
            f"{tolerance:.2f}")
    if min_speedup and eps_base:
        ratio = eps_now / eps_base
        print(f"speedup:      x{ratio:.2f} vs baseline "
              f"(required >= x{min_speedup:.2f})")
        if ratio < min_speedup:
            regressions.append(
                f"events_per_s speedup x{ratio:.2f} below required "
                f"x{min_speedup:.2f} over baseline {eps_base:.0f}")

    for counter in ("events", "spans", "traces", "simulators",
                    "max_heap_depth"):
        now, base = current.get(counter), baseline.get(counter)
        if now != base:
            print(f"note: {counter} changed: {base} -> {now} "
                  f"(behaviour change, not gated)")
    return regressions


def _runtime_rows(document: dict) -> dict:
    rows = {}
    for row in document.get("results", ()):
        # Pre-tier baselines carry no "tier"; treat them as tiny.
        rows[(row.get("tier", "tiny"), row.get("experiment"))] = row
    return rows


def _compare_runtime(current: dict, baseline: dict, tolerance: float) -> list:
    regressions = []
    jobs = current.get("jobs", 2)
    sharded_key = f"jobs{jobs}_s"
    cpu_count = int(current.get("cpu_count") or 1)
    floor = (MULTI_CORE_SPEEDUP_FLOOR if cpu_count >= 2
             else SINGLE_CORE_SPEEDUP_FLOOR)
    base_rows = _runtime_rows(baseline)

    for (tier, name), row in sorted(_runtime_rows(current).items()):
        label = f"[{tier}] {name}"
        base = base_rows.get((tier, name))
        for column in ("serial_s", sharded_key):
            now = row.get(column)
            was = base.get(column) if base else None
            if now is None:
                continue
            if was:
                print(f"{label} {column}: {now:.3f} now vs {was:.3f} "
                      f"baseline (x{now / was:.2f})")
                if now > was * tolerance:
                    regressions.append(
                        f"{label} {column} {now:.3f} exceeds "
                        f"{tolerance:.2f}x baseline {was:.3f}")
            else:
                print(f"{label} {column}: {now:.3f} now (no baseline row)")
        if base and row.get("digest") != base.get("digest"):
            print(f"note: {label} digest changed: {base.get('digest')} -> "
                  f"{row.get('digest')} (behaviour change, not gated)")
        speedup = row.get("speedup")
        if tier == "scaled" and speedup is not None:
            print(f"{label} sharded speedup: x{speedup:.2f} "
                  f"(floor x{floor:.2f} on {cpu_count} cpu(s))")
            if speedup < floor:
                regressions.append(
                    f"{label} sharded speedup x{speedup:.2f} below the "
                    f"x{floor:.2f} floor for {cpu_count} cpu(s)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced bench document")
    parser.add_argument("--baseline", default="BENCH_profile.json",
                        help="committed baseline of the same format "
                             "(default: BENCH_profile.json)")
    parser.add_argument("--tolerance", type=float, default=1.3,
                        help="allowed slowdown factor before a regression "
                             "is declared (default: 1.3)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="profile documents only: require "
                             "events_per_s >= N x baseline (default: off)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression instead of warning")
    args = parser.parse_args()
    if args.tolerance < 1.0:
        parser.error("--tolerance must be >= 1.0")
    if args.min_speedup < 0.0:
        parser.error("--min-speedup must be >= 0")

    current = _load(args.current, {PROFILE_FORMAT, RUNTIME_FORMAT})
    baseline = _load(args.baseline, {current["format"]})

    if current["format"] == PROFILE_FORMAT:
        regressions = _compare_profile(current, baseline, args.tolerance,
                                       args.min_speedup)
    else:
        if args.min_speedup:
            parser.error("--min-speedup applies to profile documents only")
        regressions = _compare_runtime(current, baseline, args.tolerance)

    if not regressions:
        print("bench_compare: OK — within tolerance")
        return 0
    for regression in regressions:
        print(f"{'REGRESSION' if args.strict else 'warning'}: {regression}")
    if args.strict:
        return 1
    print("bench_compare: regression warnings only (pass --strict to gate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
