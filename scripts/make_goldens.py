#!/usr/bin/env python
"""Re-record ``tests/runtime/golden_digests.json``.

The golden file pins every registered experiment's ``result_digest`` so
performance work can prove it changed *speed only* (see
``tests/runtime/test_golden_digests.py``).  Run this ONLY when an
experiment's behaviour deliberately changes — a drift caused by an
optimisation is a bug, not a reason to re-golden:

    PYTHONPATH=src python scripts/make_goldens.py [--out PATH]

Overrides live in the golden file itself and are carried over verbatim;
a newly registered experiment gets an empty override set, which the
author should scale down by hand (match tests/runtime/test_equivalence.py)
before committing.  Every digest is recorded from a serial run and
cross-checked against a ``jobs=2`` run before the file is written, so a
freshly recorded golden can never disagree with the sharded backend.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.registry import builtin_registry  # noqa: E402
from repro.runtime import TrialExecutor, result_digest  # noqa: E402

GOLDENS_PATH = (pathlib.Path(__file__).resolve().parents[1]
                / "tests" / "runtime" / "golden_digests.json")
GOLDENS_FORMAT = "repro-golden-digests-v1"
COMMENT = ("Pre-refactor artifact digests pinning the hot-path overhaul's "
           "byte-identity contract. Regenerate only when an experiment's "
           "behaviour deliberately changes: "
           "PYTHONPATH=src python scripts/make_goldens.py")


def _tuplify(value):
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(GOLDENS_PATH),
                        help=f"golden file to rewrite "
                             f"(default: {GOLDENS_PATH})")
    args = parser.parse_args()

    out_path = pathlib.Path(args.out)
    # Overrides always come from the committed golden file, so writing
    # to a scratch --out path still reproduces the committed digests.
    previous = {}
    if GOLDENS_PATH.exists():
        document = json.loads(GOLDENS_PATH.read_text(encoding="utf-8"))
        if document.get("format") != GOLDENS_FORMAT:
            raise SystemExit(f"error: {GOLDENS_PATH} is not {GOLDENS_FORMAT}")
        previous = document["goldens"]

    registry = builtin_registry()
    goldens = {}
    for name in sorted(registry.names()):
        overrides = previous.get(name, {}).get("overrides", {})
        experiment = registry.get(name)
        serial = TrialExecutor(jobs=1).run(experiment, _tuplify(overrides))
        if not serial.ok:
            for failure in serial.failures:
                print(f"  FAILED {failure.describe()}", file=sys.stderr)
            raise SystemExit(f"{name} failed serially; no golden recorded")
        digest = result_digest(serial.result)
        sharded = TrialExecutor(jobs=2).run(experiment, _tuplify(overrides))
        if not sharded.ok or result_digest(sharded.result) != digest:
            raise SystemExit(
                f"{name}: jobs=2 run disagrees with the serial digest — "
                f"fix the runtime before re-recording goldens")
        was = previous.get(name, {}).get("digest")
        marker = ("unchanged" if was == digest
                  else "NEW" if was is None else "CHANGED")
        print(f"{name}: {digest[:16]}... ({marker})")
        goldens[name] = {"digest": digest, "overrides": overrides}

    dropped = sorted(set(previous) - set(goldens))
    for name in dropped:
        print(f"{name}: dropped (no longer registered)")

    out_path.write_text(json.dumps(
        {"comment": COMMENT, "format": GOLDENS_FORMAT, "goldens": goldens},
        indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
