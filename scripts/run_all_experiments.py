#!/usr/bin/env python
"""Run every paper artifact at full fidelity and print the results.

This is the script EXPERIMENTS.md is generated from:

    python scripts/run_all_experiments.py > experiments_output.txt
"""
from repro.experiments import (run_table1, run_table2, run_figure2,
                               run_figure3, run_figure5, run_ecs)
from repro.experiments.figure2 import check_shape as f2
from repro.experiments.figure3 import check_shape as f3
from repro.experiments.figure5 import check_shape as f5
from repro.experiments.ecs import check_shape as fe
from repro.experiments.mislocalization import check_shape as fm
from repro.experiments.disaggregation import check_shape as fd
from repro.experiments.envelope_sweep import check_shape as fs
from repro.experiments import (run_mislocalization, run_disaggregation,
                               run_envelope_sweep, run_overload,
                               run_access_latency, run_capacity,
                               run_resilience)
from repro.experiments.access_latency import check_shape as fa
from repro.experiments.capacity import check_shape as fc
from repro.experiments.overload import check_shape as fo
from repro.experiments.resilience import check_shape as fr


def main() -> None:
    print(run_table1().render())
    print()
    print(run_table2().render())
    print()
    r2 = run_figure2(trials=25, seed=1)
    print(r2.render())
    print(f"Figure 2 shape claims: {'ALL HOLD' if not f2(r2) else f2(r2)}")
    print()
    r3 = run_figure3(trials=40, seed=1)
    print(r3.render())
    print(f"Figure 3 shape claims: {'ALL HOLD' if not f3(r3) else f3(r3)}")
    print()
    r5 = run_figure5(queries=40, seed=42)
    print(r5.render())
    print(f"Figure 5 shape claims: {'ALL HOLD' if not f5(r5) else f5(r5)}")
    print()
    re_ = run_ecs(queries=40, seed=42)
    print(re_.render())
    print(f"ECS shape claims: {'ALL HOLD' if not fe(re_) else fe(re_)}")
    print()
    rm = run_mislocalization(trials=30, seed=2)
    print(rm.render())
    print(f"Mislocalization shape claims: "
          f"{'ALL HOLD' if not fm(rm) else fm(rm)}")
    print()
    rd = run_disaggregation(requests=1500, seed=0)
    print(rd.render())
    print(f"Disaggregation shape claims: "
          f"{'ALL HOLD' if not fd(rd) else fd(rd)}")
    print()
    rs = run_envelope_sweep(queries=15, seed=42)
    print(rs.render())
    print(f"Envelope-sweep shape claims: "
          f"{'ALL HOLD' if not fs(rs) else fs(rs)}")
    print()
    ro = run_overload(seed=0)
    print(ro.render())
    print(f"Overload shape claims: {'ALL HOLD' if not fo(ro) else fo(ro)}")
    print()
    ra = run_access_latency(seed=42)
    print(ra.render())
    print(f"Access-latency shape claims: "
          f"{'ALL HOLD' if not fa(ra) else fa(ra)}")
    print()
    rc = run_capacity(seed=0)
    print(rc.render())
    print(f"Capacity shape claims: {'ALL HOLD' if not fc(rc) else fc(rc)}")
    print()
    rr = run_resilience(queries=40, seed=42)
    print(rr.render())
    print(f"Resilience shape claims: {'ALL HOLD' if not fr(rr) else fr(rr)}")


if __name__ == "__main__":
    main()
