#!/usr/bin/env python
"""Benchmark the experiment runtime: serial vs. sharded wall-clock.

Runs representative artifacts through :class:`repro.runtime.TrialExecutor`
with ``jobs=1`` and ``jobs=2``, verifies the digests match (the whole
point of the runtime is that sharding never changes the output), and
records honest wall-clock numbers into ``BENCH_runtime.json``.

Two tiers run by default:

* ``tiny`` — the historical small cases.  Dominated by fixed costs
  (testbed construction, the pickle round-trip), so the sharded column
  mostly measures dispatch overhead;
* ``scaled`` — the same artifacts with enough queries per trial that
  compute dominates dispatch.  This is the tier the sharded-speedup
  gate in ``scripts/bench_compare.py`` reads, because it is the one
  where parallelism can actually win.

The worker pool is **warmed before any sharded sample** (see
:func:`repro.runtime.warm_worker_pool`): the executor keeps one
persistent pool per process, and fork-up cost belongs to process
start-up, not to the first measured sample (it used to show up as a
3-4x outlier on the first ``jobs=2`` run).  Each configuration is
measured ``--samples`` times (default 3); the headline number is the
**minimum** (the least-noise estimate of the true cost) and every
sample is recorded so readers can judge the spread:

    PYTHONPATH=src python scripts/bench_runtime.py [--out BENCH_runtime.json]

Wall-clock timing lives here, outside ``src/repro``, on purpose — the
library stays free of real-time reads so ``repro check``'s determinism
linter keeps its zero-findings guarantee.  On a single-core box the
sharded run is expected to be no faster (fork + pickle overhead, no
parallelism to win back); the file records ``cpu_count`` so readers can
interpret the speedup column.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.registry import builtin_registry  # noqa: E402
from repro.runtime import (TrialExecutor, result_digest,  # noqa: E402
                           warm_worker_pool)

#: Schema tag for ``BENCH_runtime.json`` (read by bench_compare.py).
BENCH_FORMAT = "repro-bench-runtime-v1"

#: tier -> (artifact, overrides) pairs.  Each tier pairs one
#: latency-bound sweep with many small trials against one heavier sweep.
TIERS = (
    ("tiny", (
        ("figure5", {"queries": 20}),
        ("resilience", {"queries": 6}),
    )),
    ("scaled", (
        ("figure5", {"queries": 400}),
        ("resilience", {"queries": 80}),
    )),
)
JOBS = 2


def _timed_run(experiment, overrides, jobs):
    started = time.perf_counter()
    run = TrialExecutor(jobs=jobs).run(experiment, overrides)
    elapsed = time.perf_counter() - started
    if not run.ok:
        for failure in run.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
        raise SystemExit(f"{experiment.name} failed with jobs={jobs}")
    return elapsed, result_digest(run.result)


def _sampled_run(experiment, overrides, jobs, samples):
    """Min-of-N timing; also asserts every repetition digests the same."""
    times = []
    digest = None
    for _ in range(samples):
        elapsed, run_digest = _timed_run(experiment, overrides, jobs)
        if digest is None:
            digest = run_digest
        elif run_digest != digest:
            raise SystemExit(
                f"{experiment.name}: digest changed between repetitions "
                f"with jobs={jobs} ({run_digest} != {digest})")
        times.append(round(elapsed, 3))
    return min(times), times, digest


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_runtime.json")
    parser.add_argument("--samples", type=int, default=3,
                        help="repetitions per configuration; the headline "
                             "time is the minimum (default: 3)")
    args = parser.parse_args()
    if args.samples < 1:
        parser.error("--samples must be >= 1")

    registry = builtin_registry()
    warm_worker_pool(JOBS)
    results = []
    for tier, cases in TIERS:
        for name, overrides in cases:
            experiment = registry.get(name)
            trials = len(experiment.trials(
                experiment.resolve_params(overrides)))
            workers = min(JOBS, trials)
            chunk_size = TrialExecutor.default_chunk_size(trials, workers)
            print(f"[{tier}] {name}: {trials} trials, "
                  f"overrides={overrides}, min of {args.samples}")
            serial_s, serial_samples, serial_digest = _sampled_run(
                experiment, overrides, 1, args.samples)
            print(f"  jobs=1: {serial_s:.2f} s (samples: {serial_samples})")
            sharded_s, sharded_samples, sharded_digest = _sampled_run(
                experiment, overrides, JOBS, args.samples)
            print(f"  jobs={JOBS}: {sharded_s:.2f} s "
                  f"(samples: {sharded_samples}, chunk_size={chunk_size})")
            if sharded_digest != serial_digest:
                raise SystemExit(
                    f"{name}: sharded digest diverged from serial "
                    f"({sharded_digest} != {serial_digest})")
            print(f"  digests match ({serial_digest[:12]}...)")
            results.append({
                "tier": tier,
                "experiment": name,
                "overrides": {key: value for key, value in overrides.items()},
                "trials": trials,
                "chunk_size": chunk_size,
                "serial_s": round(serial_s, 3),
                "serial_samples_s": serial_samples,
                f"jobs{JOBS}_s": round(sharded_s, 3),
                f"jobs{JOBS}_samples_s": sharded_samples,
                "speedup": round(serial_s / sharded_s, 3) if sharded_s
                           else None,
                "digest": serial_digest,
            })

    document = {
        "format": BENCH_FORMAT,
        "benchmark": "repro.runtime serial vs sharded execution",
        "jobs": JOBS,
        "samples": args.samples,
        "cpu_count": os.cpu_count(),
        "pool": {
            "persistent": True,
            "warmed_before_sampling": True,
            "dispatch": "chunked (K specs per pickle round-trip)",
        },
        "results": results,
    }
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
