#!/usr/bin/env python
"""Benchmark the experiment runtime: serial vs. sharded wall-clock.

Runs representative artifacts through :class:`repro.runtime.TrialExecutor`
with ``jobs=1`` and ``jobs=2``, verifies the digests match (the whole
point of the runtime is that sharding never changes the output), and
records honest wall-clock numbers into ``BENCH_runtime.json``:

    PYTHONPATH=src python scripts/bench_runtime.py [--out BENCH_runtime.json]

Wall-clock timing lives here, outside ``src/repro``, on purpose — the
library stays free of real-time reads so ``repro check``'s determinism
linter keeps its zero-findings guarantee.  On a single-core box the
sharded run is expected to be no faster (fork + pickle overhead, no
parallelism to win back); the file records ``cpu_count`` so readers can
interpret the speedup column.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.registry import builtin_registry  # noqa: E402
from repro.runtime import TrialExecutor, result_digest  # noqa: E402

#: (artifact, overrides) pairs: one latency-bound sweep with many small
#: trials, one heavyweight sweep with few large trials.
CASES = (
    ("figure5", {"queries": 20}),
    ("resilience", {"queries": 6}),
)
JOBS = 2


def _timed_run(experiment, overrides, jobs):
    started = time.perf_counter()
    run = TrialExecutor(jobs=jobs).run(experiment, overrides)
    elapsed = time.perf_counter() - started
    if not run.ok:
        for failure in run.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
        raise SystemExit(f"{experiment.name} failed with jobs={jobs}")
    return elapsed, result_digest(run.result)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_runtime.json")
    args = parser.parse_args()

    registry = builtin_registry()
    results = []
    for name, overrides in CASES:
        experiment = registry.get(name)
        trials = len(experiment.trials(experiment.resolve_params(overrides)))
        print(f"{name}: {trials} trials, overrides={overrides}")
        serial_s, serial_digest = _timed_run(experiment, overrides, 1)
        print(f"  jobs=1: {serial_s:.2f} s")
        sharded_s, sharded_digest = _timed_run(experiment, overrides, JOBS)
        print(f"  jobs={JOBS}: {sharded_s:.2f} s")
        if sharded_digest != serial_digest:
            raise SystemExit(f"{name}: sharded digest diverged from serial "
                             f"({sharded_digest} != {serial_digest})")
        print(f"  digests match ({serial_digest[:12]}...)")
        results.append({
            "experiment": name,
            "overrides": {key: value for key, value in overrides.items()},
            "trials": trials,
            "serial_s": round(serial_s, 3),
            f"jobs{JOBS}_s": round(sharded_s, 3),
            "speedup": round(serial_s / sharded_s, 3) if sharded_s else None,
            "digest": serial_digest,
        })

    document = {
        "benchmark": "repro.runtime serial vs sharded execution",
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
