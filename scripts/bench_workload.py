#!/usr/bin/env python
"""Benchmark the population workload engine: end-to-end queries/sec.

Drives one deployment's calibrated mesoscale engine at ``--target-queries``
scale (default 10^6) through the ``population`` experiment, twice — serial
and ``--jobs 2`` — asserting the digests match, and records throughput
and peak RSS into ``BENCH_workload.json``.  This number is the baseline
ROADMAP item 2 (the netsim hot-path overhaul) is measured against: the
engine column is where mesoscale simulation is today; the calibration
column is the full packet-level simulator's cost for the same lookups.

    PYTHONPATH=src python scripts/bench_workload.py [--out BENCH_workload.json]

Wall-clock timing lives here, outside ``src/repro``, on purpose — the
library stays free of real-time reads so ``repro check``'s determinism
linter keeps its zero-findings guarantee.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import telemetry as telemetry_mod  # noqa: E402
from repro.experiments.population import EXPERIMENT  # noqa: E402
from repro.runtime import TrialExecutor, result_digest  # noqa: E402
from repro.telemetry import Telemetry, TelemetryConfig  # noqa: E402
from repro.workload import CALIBRATION_QUERIES, calibrate  # noqa: E402

#: The deployment the headline number runs against: the paper's winner,
#: and the one whose routing path exercises the consistent-hash ring.
DEPLOYMENT = "mec-ldns-mec-cdns"


def _peak_rss_mb() -> float:
    """Peak RSS of this process so far, in MiB (Linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


#: The sampled capture config the telemetry-overhead leg runs under —
#: the same shape the CI population smoke passes on the command line.
TELEMETRY_CONFIG = TelemetryConfig(trace_sample=0.05, window_ms=60000.0,
                                   tail_capacity=32)


def _timed_run(overrides, jobs, config=None):
    """One run; returns (wall s, CPU s, result, digest, telemetry).

    CPU seconds (``time.process_time``) only cover in-process work, so
    they are meaningful for ``jobs=1`` legs — and immune to the
    wall-clock noise of shared runners, which is why the telemetry
    overhead percentage is computed from them.
    """
    tel = None
    if config is not None:
        tel = Telemetry.from_config(config)
        telemetry_mod.set_default(tel)
    started = time.perf_counter()
    cpu_started = time.process_time()
    try:
        run = TrialExecutor(jobs=jobs).run(EXPERIMENT, overrides)
    finally:
        telemetry_mod.clear_default()
    elapsed = time.perf_counter() - started
    cpu = time.process_time() - cpu_started
    if not run.ok:
        for failure in run.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
        raise SystemExit(f"population failed with jobs={jobs}")
    return elapsed, cpu, run.result, result_digest(run.result), tel


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_workload.json")
    parser.add_argument("--target-queries", type=int, default=1_000_000,
                        help="queries to drive through the deployment "
                             "(default: 1,000,000)")
    parser.add_argument("--districts", type=int, default=2)
    parser.add_argument("--allocation", default="content",
                        choices=("content", "client", "client-bounded"))
    parser.add_argument("--overhead-repeats", type=int, default=3,
                        help="runs per side for the telemetry-overhead "
                             "comparison; min CPU of each side is used "
                             "(default: 3)")
    args = parser.parse_args()
    if args.overhead_repeats < 1:
        parser.error("--overhead-repeats must be >= 1")
    if args.target_queries < 1:
        parser.error("--target-queries must be >= 1")

    # How fast is the packet-level simulator for the same lookups?  Time
    # one calibration batch; that per-query cost is the bar the
    # mesoscale engine clears and ROADMAP item 2 must raise.
    started = time.perf_counter()
    calibrate(DEPLOYMENT, seed=42)
    calibration_s = time.perf_counter() - started
    fullsim_qps = CALIBRATION_QUERIES / calibration_s
    print(f"full-fidelity baseline: {CALIBRATION_QUERIES} queries in "
          f"{calibration_s:.2f} s ({fullsim_qps:,.0f} q/s)")

    overrides = {
        "target_queries": args.target_queries,
        "districts": args.districts,
        "deployment": DEPLOYMENT,
        "allocation": args.allocation,
    }
    print(f"population: {args.target_queries:,} queries targeted at "
          f"{DEPLOYMENT}, {args.districts} districts, "
          f"allocation={args.allocation}")

    serial_s, serial_cpu, serial_result, serial_digest, _ = \
        _timed_run(overrides, 1)
    row = serial_result.row(DEPLOYMENT)
    serial_qps = row.queries / serial_s if serial_s else 0.0
    print(f"  jobs=1: {row.queries:,} queries in {serial_s:.2f} s "
          f"({serial_qps:,.0f} q/s)")

    sharded_s, _, sharded_result, sharded_digest, _ = \
        _timed_run(overrides, 2)
    sharded_qps = (sharded_result.row(DEPLOYMENT).queries / sharded_s
                   if sharded_s else 0.0)
    print(f"  jobs=2: {sharded_s:.2f} s ({sharded_qps:,.0f} q/s)")
    if sharded_digest != serial_digest:
        raise SystemExit(f"sharded digest diverged from serial "
                         f"({sharded_digest} != {serial_digest})")
    print(f"  digests match ({serial_digest[:12]}...)")

    # Telemetry overhead: the same serial run under sampled capture
    # (traces + time-series + tail exemplars) must keep the digest and
    # stay cheap.  Overhead is computed from CPU seconds so a noisy
    # runner can't fake a wall-clock regression, and both sides run
    # --overhead-repeats times in alternation with the min taken —
    # best-of-N is the standard way to strip scheduler and frequency
    # noise from a CPU-bound comparison.
    # Each repeat is a back-to-back (off, on) pair so a drifting
    # machine — co-tenants, frequency scaling — degrades both sides of
    # a pair together instead of skewing one; the quietest pair wins.
    pair_pcts = []
    tel_s = 0.0
    tel_result = tel = None
    for repeat in range(args.overhead_repeats):
        _, off_cpu, _, off_digest, _ = _timed_run(overrides, 1)
        if off_digest != serial_digest:
            raise SystemExit("serial digest unstable across repeats")
        tel_s, tel_cpu, tel_result, tel_digest, tel = \
            _timed_run(overrides, 1, TELEMETRY_CONFIG)
        if tel_digest != serial_digest:
            raise SystemExit(f"telemetry perturbed the digest "
                             f"({tel_digest} != {serial_digest})")
        pair_pct = (100.0 * (tel_cpu - off_cpu) / off_cpu
                    if off_cpu else 0.0)
        pair_pcts.append(pair_pct)
        print(f"  overhead pair {repeat + 1}/{args.overhead_repeats}: "
              f"off {off_cpu:.2f} s vs on {tel_cpu:.2f} s CPU "
              f"({pair_pct:+.1f}%)")
    tel_qps = (tel_result.row(DEPLOYMENT).queries / tel_s
               if tel_s else 0.0)
    overhead_pct = min(pair_pcts)
    print(f"  telemetry on: {tel_s:.2f} s ({tel_qps:,.0f} q/s), "
          f"{len(tel.tracer.finished)} spans, {len(tel.tail)} tail "
          f"exemplars; CPU overhead {overhead_pct:+.1f}% "
          f"(best of {args.overhead_repeats}, digest unchanged)")

    peak_mb = _peak_rss_mb()
    print(f"  peak RSS {peak_mb:.0f} MiB "
          f"(streaming aggregates: no per-query records)")

    document = {
        "benchmark": "repro.workload population engine throughput",
        "deployment": DEPLOYMENT,
        "target_queries": args.target_queries,
        "districts": args.districts,
        "allocation": args.allocation,
        "cpu_count": os.cpu_count(),
        "fullsim": {
            "queries": CALIBRATION_QUERIES,
            "seconds": round(calibration_s, 3),
            "qps": round(fullsim_qps, 1),
        },
        "engine": {
            "queries": row.queries,
            "serial_s": round(serial_s, 3),
            "serial_qps": round(serial_qps, 1),
            "jobs2_s": round(sharded_s, 3),
            "jobs2_qps": round(sharded_qps, 1),
            "speedup": round(serial_s / sharded_s, 3) if sharded_s else None,
            "peak_rss_mb": round(peak_mb, 1),
        },
        "telemetry": {
            "trace_sample": TELEMETRY_CONFIG.trace_sample,
            "window_ms": TELEMETRY_CONFIG.window_ms,
            "tail_exemplars": TELEMETRY_CONFIG.tail_capacity,
            "seconds": round(tel_s, 3),
            "qps": round(tel_qps, 1),
            "overhead_repeats": args.overhead_repeats,
            "pair_overheads_pct": [round(pct, 1) for pct in pair_pcts],
            "cpu_overhead_pct": round(overhead_pct, 1),
            "spans": len(tel.tracer.finished),
            "tail_kept": len(tel.tail),
            "digest_unchanged": True,
        },
        "result": {
            "localization": round(row.localization, 4),
            "hit_rate": round(row.hit_rate, 4),
            "dns_p50_ms": round(row.dns.p50, 2),
            "total_p99_ms": round(row.total.p99, 2),
            "total_p999_ms": round(row.total.p999, 2),
        },
        "digest": serial_digest,
    }
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
