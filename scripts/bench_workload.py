#!/usr/bin/env python
"""Benchmark the population workload engine: end-to-end queries/sec.

Drives one deployment's calibrated mesoscale engine at ``--target-queries``
scale (default 10^6) through the ``population`` experiment, twice — serial
and ``--jobs 2`` — asserting the digests match, and records throughput
and peak RSS into ``BENCH_workload.json``.  This number is the baseline
ROADMAP item 2 (the netsim hot-path overhaul) is measured against: the
engine column is where mesoscale simulation is today; the calibration
column is the full packet-level simulator's cost for the same lookups.

    PYTHONPATH=src python scripts/bench_workload.py [--out BENCH_workload.json]

Wall-clock timing lives here, outside ``src/repro``, on purpose — the
library stays free of real-time reads so ``repro check``'s determinism
linter keeps its zero-findings guarantee.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.population import EXPERIMENT  # noqa: E402
from repro.runtime import TrialExecutor, result_digest  # noqa: E402
from repro.workload import CALIBRATION_QUERIES, calibrate  # noqa: E402

#: The deployment the headline number runs against: the paper's winner,
#: and the one whose routing path exercises the consistent-hash ring.
DEPLOYMENT = "mec-ldns-mec-cdns"


def _peak_rss_mb() -> float:
    """Peak RSS of this process so far, in MiB (Linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed_run(overrides, jobs):
    started = time.perf_counter()
    run = TrialExecutor(jobs=jobs).run(EXPERIMENT, overrides)
    elapsed = time.perf_counter() - started
    if not run.ok:
        for failure in run.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
        raise SystemExit(f"population failed with jobs={jobs}")
    return elapsed, run.result, result_digest(run.result)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_workload.json")
    parser.add_argument("--target-queries", type=int, default=1_000_000,
                        help="queries to drive through the deployment "
                             "(default: 1,000,000)")
    parser.add_argument("--districts", type=int, default=2)
    parser.add_argument("--allocation", default="content",
                        choices=("content", "client", "client-bounded"))
    args = parser.parse_args()
    if args.target_queries < 1:
        parser.error("--target-queries must be >= 1")

    # How fast is the packet-level simulator for the same lookups?  Time
    # one calibration batch; that per-query cost is the bar the
    # mesoscale engine clears and ROADMAP item 2 must raise.
    started = time.perf_counter()
    calibrate(DEPLOYMENT, seed=42)
    calibration_s = time.perf_counter() - started
    fullsim_qps = CALIBRATION_QUERIES / calibration_s
    print(f"full-fidelity baseline: {CALIBRATION_QUERIES} queries in "
          f"{calibration_s:.2f} s ({fullsim_qps:,.0f} q/s)")

    overrides = {
        "target_queries": args.target_queries,
        "districts": args.districts,
        "deployment": DEPLOYMENT,
        "allocation": args.allocation,
    }
    print(f"population: {args.target_queries:,} queries targeted at "
          f"{DEPLOYMENT}, {args.districts} districts, "
          f"allocation={args.allocation}")

    serial_s, serial_result, serial_digest = _timed_run(overrides, 1)
    row = serial_result.row(DEPLOYMENT)
    serial_qps = row.queries / serial_s if serial_s else 0.0
    print(f"  jobs=1: {row.queries:,} queries in {serial_s:.2f} s "
          f"({serial_qps:,.0f} q/s)")

    sharded_s, sharded_result, sharded_digest = _timed_run(overrides, 2)
    sharded_qps = (sharded_result.row(DEPLOYMENT).queries / sharded_s
                   if sharded_s else 0.0)
    print(f"  jobs=2: {sharded_s:.2f} s ({sharded_qps:,.0f} q/s)")
    if sharded_digest != serial_digest:
        raise SystemExit(f"sharded digest diverged from serial "
                         f"({sharded_digest} != {serial_digest})")
    print(f"  digests match ({serial_digest[:12]}...)")

    peak_mb = _peak_rss_mb()
    print(f"  peak RSS {peak_mb:.0f} MiB "
          f"(streaming aggregates: no per-query records)")

    document = {
        "benchmark": "repro.workload population engine throughput",
        "deployment": DEPLOYMENT,
        "target_queries": args.target_queries,
        "districts": args.districts,
        "allocation": args.allocation,
        "cpu_count": os.cpu_count(),
        "fullsim": {
            "queries": CALIBRATION_QUERIES,
            "seconds": round(calibration_s, 3),
            "qps": round(fullsim_qps, 1),
        },
        "engine": {
            "queries": row.queries,
            "serial_s": round(serial_s, 3),
            "serial_qps": round(serial_qps, 1),
            "jobs2_s": round(sharded_s, 3),
            "jobs2_qps": round(sharded_qps, 1),
            "speedup": round(serial_s / sharded_s, 3) if sharded_s else None,
            "peak_rss_mb": round(peak_mb, 1),
        },
        "result": {
            "localization": round(row.localization, 4),
            "hit_rate": round(row.hit_rate, 4),
            "dns_p50_ms": round(row.dns.p50, 2),
            "total_p99_ms": round(row.total.p99, 2),
            "total_p999_ms": round(row.total.p999, 2),
        },
        "digest": serial_digest,
    }
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
