"""Event loop, futures, and generator processes.

The engine is a calendar-queue simulator: pending events live in
per-timestamp **buckets** (a dict keyed by the exact float instant) and
a small heap orders only the *distinct* timestamps.  Scheduling into an
existing instant is an O(1) list append; the heap is touched once per
distinct instant instead of once per event, and a whole bucket is
applied back-to-back with the clock set once — the batched
same-timestamp dispatch the DNS workloads are full of (timer cascades,
future-callback chains at one instant).

Determinism contract: events at the same instant run in *scheduling
order*.  The old flat heap enforced this with an explicit sequence
number riding every tuple; the bucket list enforces the identical order
structurally, because appends happen in sequence order and the drain
consumes the list left to right.  The observable event order — and
therefore every RNG draw, every artifact digest — is byte-identical to
the heap engine's (pinned by ``tests/runtime/test_golden_digests.py``).

On top sit two conveniences the protocol code leans on heavily:

* :class:`SimFuture` — a one-shot result holder with callbacks, used for
  request/response patterns (a DNS query's answer, an HTTP fetch).
* generator processes — :meth:`Simulator.spawn` runs a generator that may
  ``yield`` a number (sleep that many milliseconds) or a
  :class:`SimFuture` (wait for it); the generator's ``return`` value
  resolves the process's own future.  Process state is reified into a
  slotted :class:`_Process` object — one allocation per spawn — instead
  of the old nested-closure trampoline that allocated a fresh callback
  per yield (the deferred ``HOT_INVENTORY`` entry).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: Optional hook called with every freshly constructed :class:`Simulator`.
#: The ``repro profile`` harness installs one to find the simulators an
#: experiment builds internally (they never cross an API boundary
#: otherwise).  ``None`` — the default — costs one attribute check per
#: construction and nothing else; the hook only *observes*, so installed
#: or not, the event stream is identical.
_simulator_observer: Optional[Callable[["Simulator"], None]] = None


def observe_simulators(callback: Optional[Callable[["Simulator"], None]]) -> None:
    """Install (or, with ``None``, remove) the simulator-construction hook."""
    global _simulator_observer
    _simulator_observer = callback


class ProcessFailed(SimulationError):
    """A spawned process raised; the original exception is ``__cause__``."""


class SimFuture:
    """A single-assignment result that callbacks or processes can await."""

    __slots__ = ("_sim", "_done", "_value", "_error", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """The value; raises the stored exception if the future failed."""
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error if self._done else None

    def resolve(self, value: Any = None) -> None:
        """Complete the future with ``value`` (first completion wins)."""
        self._finish(value, None)

    def fail(self, error: BaseException) -> None:
        """Complete the future with an error (first completion wins)."""
        self._finish(None, error)

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            return  # first resolution wins (e.g. response vs. timeout race)
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._sim.call_soon(callback, self)

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Call ``callback(self)`` once resolved (immediately if done)."""
        if self._done:
            self._sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)


class _Process:
    """One spawned generator's resumable state (see :meth:`Simulator.spawn`).

    The old engine kept this state in a nested ``step`` closure and
    allocated a fresh ``on_done`` closure for every future the generator
    yielded.  Reifying it into a slotted object costs one allocation per
    *spawn* and re-uses the same two bound methods for every subsequent
    resume — the scheduling sequence (one ``call_after`` per sleep, one
    done-callback per awaited future) is unchanged, so the event stream
    is identical.
    """

    __slots__ = ("_sim", "_generator", "_done")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Any, Any, Any],
                 done: SimFuture) -> None:
        self._sim = sim
        self._generator = generator
        self._done = done

    def _step(self, send_value: Any = None,
              throw_error: Optional[BaseException] = None) -> None:
        try:
            if throw_error is not None:
                yielded = self._generator.throw(throw_error)
            else:
                yielded = self._generator.send(send_value)
        except StopIteration as stop:
            self._done.resolve(stop.value)
            return
        except Exception as error:  # noqa: BLE001 - propagate via future
            wrapper = ProcessFailed(str(error))
            wrapper.__cause__ = error
            self._done.fail(wrapper)
            return
        if isinstance(yielded, SimFuture):
            yielded.add_done_callback(self._resume)
        elif isinstance(yielded, (int, float)):
            self._sim.call_after(float(yielded), self._step)
        else:
            self._step(throw_error=SimulationError(
                f"process yielded unsupported value {yielded!r}"))

    def _resume(self, fut: SimFuture) -> None:
        """Done-callback for an awaited future: send or throw its outcome."""
        error = fut._error
        if error is not None:
            self._step(throw_error=error)
        else:
            self._step(send_value=fut._value)


#: One pending event: the callback and its scheduler-carried arguments.
_Event = Tuple[Callable[..., None], Tuple[Any, ...]]


class Simulator:
    """The discrete-event clock and scheduler.  Times are milliseconds."""

    def __init__(self) -> None:
        #: Current simulated time in milliseconds.  A plain attribute,
        #: not a property: the clock is read on every span, tap, and
        #: scheduling call, and the property descriptor was a measurable
        #: per-event cost.  Treat it as read-only outside the engine.
        self.now = 0.0
        #: Per-instant event buckets; list order *is* scheduling order,
        #: which is what the old heap's sequence tiebreak enforced.
        self._buckets: Dict[float, List[_Event]] = {}
        #: Min-heap of the distinct timestamps with a live bucket.
        self._times: List[float] = []
        #: Total events awaiting dispatch, across all buckets.
        self._pending = 0
        self.events_processed = 0
        #: High-water mark of the pending-event set, for the profiler's
        #: event-loop report (how much future the simulation holds open).
        self.max_queue_depth = 0
        if _simulator_observer is not None:
            _simulator_observer(self)

    # -- scheduling ------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Passing ``args`` through the scheduler instead of closing over
        them keeps the per-event cost to one bucket append — no closure
        allocation on the dispatch path (HOT002).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self.now})")
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(callback, args)]
            heapq.heappush(self._times, when)
        else:
            bucket.append((callback, args))
        self._pending += 1
        if self._pending > self.max_queue_depth:
            self.max_queue_depth = self._pending

    def call_after(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds.

        The bucket append is inlined rather than delegated to
        :meth:`call_at` — this and :meth:`call_soon` run once per event,
        and the extra frame was a measurable slice of the dispatch loop.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        when = self.now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(callback, args)]
            heapq.heappush(self._times, when)
        else:
            bucket.append((callback, args))
        self._pending += 1
        if self._pending > self.max_queue_depth:
            self.max_queue_depth = self._pending

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current simulated time."""
        when = self.now
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [(callback, args)]
            heapq.heappush(self._times, when)
        else:
            bucket.append((callback, args))
        self._pending += 1
        if self._pending > self.max_queue_depth:
            self.max_queue_depth = self._pending

    # -- futures -----------------------------------------------------------------

    def future(self) -> SimFuture:
        """A fresh unresolved future bound to this simulator."""
        return SimFuture(self)

    def timer(self, delay: float, value: Any = None) -> SimFuture:
        """A future that resolves to ``value`` after ``delay`` ms."""
        fut = self.future()
        self.call_after(delay, fut.resolve, value)
        return fut

    # -- processes ------------------------------------------------------------------

    def spawn(self, generator: Generator[Any, Any, Any]) -> SimFuture:
        """Run a generator process; returns a future for its return value.

        The generator may yield:

        * ``int``/``float`` — sleep that many milliseconds;
        * :class:`SimFuture` — suspend until it resolves.  If the future
          failed, its exception is thrown into the generator, so processes
          handle timeouts with ordinary ``try/except``.
        """
        done = self.future()
        process = _Process(self, generator, done)
        self.call_soon(process._step)
        return done

    # -- running -------------------------------------------------------------------------

    def _drain(self, stop_future: Optional[SimFuture], until: Optional[float],
               max_events: int) -> bool:
        """Pop-and-dispatch loop shared by :meth:`run` and
        :meth:`run_until_resolved`.

        Processes events until ``stop_future`` (when given) resolves, the
        horizon ``until`` is hit (clock advances to it), or the queue
        drains.  Returns ``False`` only on a drained queue with the
        awaited future still pending.  ``max_events`` bounds this call;
        ``events_processed`` keeps accumulating across calls.

        The stop condition is a plain attribute read on the future —
        an earlier revision took a ``stop()`` predicate, and the
        per-event call (a ``lambda: False`` for plain ``run``!) was one
        of the largest single entries in the dispatch profile.

        Dispatch is bucket-at-a-time: the clock is set once per distinct
        instant and every event of that instant is applied back to back.
        Events appended to the live bucket mid-drain (``call_soon`` from
        a callback) are picked up by the index walk in append — i.e.
        scheduling — order, exactly as the heap's sequence tiebreak
        ordered them.
        """
        processed = 0
        buckets = self._buckets
        times = self._times
        while stop_future is None or not stop_future._done:
            if not self._pending:
                return False
            when = times[0]
            if until is not None and when > until:
                self.now = until
                return True
            self.now = when
            bucket = buckets[when]
            index = 0
            while index < len(bucket):
                callback, args = bucket[index]
                index += 1
                self._pending -= 1
                callback(*args)
                processed += 1
                self.events_processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a runaway "
                        f"loop")
                if stop_future is not None and stop_future._done:
                    # Keep the unapplied tail for the next drain call.
                    del bucket[:index]
                    if not bucket:
                        del buckets[when]
                        heapq.heappop(times)
                    return True
            del buckets[when]
            heapq.heappop(times)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time when the run stopped.
        """
        self._drain(None, until, max_events)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def first_success(self, futures: List[SimFuture]) -> SimFuture:
        """A future resolving with the first *successful* input result.

        Failures are absorbed until every input has failed, at which point
        the combined future fails with the last error.  This is the
        primitive behind the paper's "multicast to both MEC DNS and the
        network's L-DNS" fallback: whichever resolver answers first wins.
        """
        if not futures:
            raise SimulationError("first_success needs at least one future")
        combined = self.future()
        failures = {"count": 0}

        def on_done(fut: SimFuture) -> None:
            if fut.error is None:
                combined.resolve(fut.result())
                return
            failures["count"] += 1
            if failures["count"] == len(futures):
                combined.fail(fut.error)

        for fut in futures:
            fut.add_done_callback(on_done)
        return combined

    def run_until_resolved(self, future: SimFuture,
                           max_events: int = 10_000_000) -> Any:
        """Run until ``future`` resolves; return its result (or raise)."""
        if not self._drain(future, None, max_events):
            raise SimulationError(
                "event queue drained before the awaited future resolved")
        return future.result()
