"""Event loop, futures, and generator processes.

The engine is a classic calendar-queue simulator: a heap of
``(time, sequence, callback)`` entries.  On top of it sit two conveniences
that the protocol code leans on heavily:

* :class:`SimFuture` — a one-shot result holder with callbacks, used for
  request/response patterns (a DNS query's answer, an HTTP fetch).
* generator processes — :meth:`Simulator.spawn` runs a generator that may
  ``yield`` a number (sleep that many milliseconds) or a
  :class:`SimFuture` (wait for it); the generator's ``return`` value
  resolves the process's own future.  This keeps multi-step protocol logic
  (iterative resolution, CNAME chasing, fallback races) sequential and
  readable without threads.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: Optional hook called with every freshly constructed :class:`Simulator`.
#: The ``repro profile`` harness installs one to find the simulators an
#: experiment builds internally (they never cross an API boundary
#: otherwise).  ``None`` — the default — costs one attribute check per
#: construction and nothing else; the hook only *observes*, so installed
#: or not, the event stream is identical.
_simulator_observer: Optional[Callable[["Simulator"], None]] = None


def observe_simulators(callback: Optional[Callable[["Simulator"], None]]) -> None:
    """Install (or, with ``None``, remove) the simulator-construction hook."""
    global _simulator_observer
    _simulator_observer = callback


class ProcessFailed(SimulationError):
    """A spawned process raised; the original exception is ``__cause__``."""


class SimFuture:
    """A single-assignment result that callbacks or processes can await."""

    __slots__ = ("_sim", "_done", "_value", "_error", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """The value; raises the stored exception if the future failed."""
        if not self._done:
            raise SimulationError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error if self._done else None

    def resolve(self, value: Any = None) -> None:
        """Complete the future with ``value`` (first completion wins)."""
        self._finish(value, None)

    def fail(self, error: BaseException) -> None:
        """Complete the future with an error (first completion wins)."""
        self._finish(None, error)

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            return  # first resolution wins (e.g. response vs. timeout race)
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._sim.call_soon(callback, self)

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Call ``callback(self)`` once resolved (immediately if done)."""
        if self._done:
            self._sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)


class Simulator:
    """The discrete-event clock and scheduler.  Times are milliseconds."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callable[..., None],
                                Tuple[Any, ...]]] = []
        self.events_processed = 0
        #: High-water mark of the pending-event heap, for the profiler's
        #: event-loop report (how much future the simulation holds open).
        self.max_queue_depth = 0
        if _simulator_observer is not None:
            _simulator_observer(self)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Passing ``args`` through the scheduler instead of closing over
        them keeps the per-event cost to one heap tuple — no closure
        allocation on the dispatch path (HOT002).
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})")
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, callback, args))
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)

    def call_after(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> None:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current simulated time."""
        self.call_at(self._now, callback, *args)

    # -- futures -----------------------------------------------------------------

    def future(self) -> SimFuture:
        """A fresh unresolved future bound to this simulator."""
        return SimFuture(self)

    def timer(self, delay: float, value: Any = None) -> SimFuture:
        """A future that resolves to ``value`` after ``delay`` ms."""
        fut = self.future()
        self.call_after(delay, fut.resolve, value)
        return fut

    # -- processes ------------------------------------------------------------------

    def spawn(self, generator: Generator[Any, Any, Any]) -> SimFuture:
        """Run a generator process; returns a future for its return value.

        The generator may yield:

        * ``int``/``float`` — sleep that many milliseconds;
        * :class:`SimFuture` — suspend until it resolves.  If the future
          failed, its exception is thrown into the generator, so processes
          handle timeouts with ordinary ``try/except``.
        """
        done = self.future()

        def step(send_value: Any = None,
                 throw_error: Optional[BaseException] = None) -> None:
            try:
                if throw_error is not None:
                    yielded = generator.throw(throw_error)
                else:
                    yielded = generator.send(send_value)
            except StopIteration as stop:
                done.resolve(stop.value)
                return
            except Exception as error:  # noqa: BLE001 - propagate via future
                wrapper = ProcessFailed(str(error))
                wrapper.__cause__ = error
                done.fail(wrapper)
                return
            if isinstance(yielded, SimFuture):
                def on_done(fut: SimFuture) -> None:
                    if fut.error is not None:
                        step(throw_error=fut.error)
                    else:
                        step(send_value=fut.result())
                yielded.add_done_callback(on_done)
            elif isinstance(yielded, (int, float)):
                self.call_after(float(yielded), step)
            else:
                step(throw_error=SimulationError(
                    f"process yielded unsupported value {yielded!r}"))

        self.call_soon(step)
        return done

    # -- running -------------------------------------------------------------------------

    def _drain(self, stop: Callable[[], bool], until: Optional[float],
               max_events: int) -> bool:
        """Pop-and-dispatch loop shared by :meth:`run` and
        :meth:`run_until_resolved`.

        Processes events until ``stop()`` turns true, the horizon ``until``
        is hit (clock advances to it), or the queue drains.  Returns
        ``False`` only on a drained queue with ``stop()`` still false.
        ``max_events`` bounds this call; ``events_processed`` keeps
        accumulating across calls.
        """
        processed = 0
        while not stop():
            if not self._queue:
                return False
            when, _, callback, args = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return True
            heapq.heappop(self._queue)
            self._now = when
            callback(*args)
            processed += 1
            self.events_processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a runaway loop")
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time when the run stopped.
        """
        self._drain(lambda: False, until, max_events)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def first_success(self, futures: List[SimFuture]) -> SimFuture:
        """A future resolving with the first *successful* input result.

        Failures are absorbed until every input has failed, at which point
        the combined future fails with the last error.  This is the
        primitive behind the paper's "multicast to both MEC DNS and the
        network's L-DNS" fallback: whichever resolver answers first wins.
        """
        if not futures:
            raise SimulationError("first_success needs at least one future")
        combined = self.future()
        failures = {"count": 0}

        def on_done(fut: SimFuture) -> None:
            if fut.error is None:
                combined.resolve(fut.result())
                return
            failures["count"] += 1
            if failures["count"] == len(futures):
                combined.fail(fut.error)

        for fut in futures:
            fut.add_done_callback(on_done)
        return combined

    def run_until_resolved(self, future: SimFuture,
                           max_events: int = 10_000_000) -> Any:
        """Run until ``future`` resolves; return its result (or raise)."""
        if not self._drain(lambda: future.done, None, max_events):
            raise SimulationError(
                "event queue drained before the awaited future resolved")
        return future.result()
