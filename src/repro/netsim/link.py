"""Point-to-point links with per-direction latency and loss."""

from __future__ import annotations

import random
from typing import Optional

from repro.netsim.latency import LatencyModel


class Link:
    """A bidirectional link between two hosts.

    ``latency`` applies in both directions unless ``reverse_latency`` is
    given (radio links are asymmetric in practice; the experiments keep
    them symmetric because the paper reports round-trip sums).
    ``loss`` is an independent per-traversal drop probability.
    """

    def __init__(self, a: str, b: str, latency: LatencyModel,
                 reverse_latency: Optional[LatencyModel] = None,
                 loss: float = 0.0, name: Optional[str] = None,
                 bandwidth_mbps: Optional[float] = None) -> None:
        if not 0 <= loss < 1:
            raise ValueError(f"loss probability {loss} out of [0, 1)")
        if bandwidth_mbps is not None and bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        self.a = a
        self.b = b
        self.latency = latency
        self.reverse_latency = reverse_latency or latency
        self.loss = loss
        self.name = name or f"{a}<->{b}"
        #: Serialization rate; None models an uncongested fat pipe where
        #: per-packet transmission time is negligible.
        self.bandwidth_mbps = bandwidth_mbps
        #: Fault-injection state (see :mod:`repro.faults`).  ``down`` black-
        #: holes every traversal; ``extra_loss`` adds to the base i.i.d.
        #: loss; ``loss_model`` (anything with ``lost(rng) -> bool``, e.g.
        #: Gilbert–Elliott) *replaces* the i.i.d. draw while installed.
        #: All three default to the no-fault values so an idle link costs
        #: nothing beyond the attribute checks.
        self.down = False
        self.extra_loss = 0.0
        self.loss_model = None
        self.packets_carried = 0
        self.packets_dropped = 0
        self.bytes_carried = 0

    def latency_from(self, origin: str) -> LatencyModel:
        """The latency model for traffic leaving ``origin``."""
        return self.latency if origin == self.a else self.reverse_latency

    def sample_delay(self, origin: str, rng: random.Random,
                     size_bytes: int = 0) -> Optional[float]:
        """One traversal: a delay in ms, or ``None`` if the packet is lost.

        With a bandwidth configured, the packet additionally pays its
        serialization time (size / rate); 1 Mbps = 125 bytes/ms.
        """
        if self.down:
            self.packets_dropped += 1
            return None
        if self.loss_model is not None:
            # repro: allow[RNG004] loss and latency draw from the caller's per-traversal stream by contract
            if self.loss_model.lost(rng):
                self.packets_dropped += 1
                return None
        else:
            loss = self.loss + self.extra_loss
            if loss and rng.random() < loss:
                self.packets_dropped += 1
                return None
        self.packets_carried += 1
        self.bytes_carried += size_bytes
        delay = self.latency_from(origin).sample(rng)
        if self.bandwidth_mbps is not None and size_bytes:
            delay += size_bytes / (self.bandwidth_mbps * 125.0)
        return delay

    @property
    def mean_latency(self) -> float:
        return (self.latency.mean + self.reverse_latency.mean) / 2

    def __repr__(self) -> str:
        return f"Link({self.name}, ~{self.mean_latency:.2f}ms, loss={self.loss})"
