"""Latency distribution models.

Links are calibrated with these models: a wired campus hop is nearly
constant, home Wi-Fi is noisier, and the LTE radio leg has a heavy right
tail (the paper's Figure 2 shows exactly this variance ordering).  All
samples are one-way milliseconds and are clamped to a non-negative floor.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence


class LatencyModel:
    """Base class: ``sample(rng)`` returns one-way latency in ms."""

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Analytic mean used for routing weights."""
        raise NotImplementedError

    def __add__(self, other: "LatencyModel") -> "Compound":
        return Compound([self, other])


class Constant(LatencyModel):
    """A fixed delay."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self.value = value

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value}ms)"


class Uniform(LatencyModel):
    """Uniform in [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"bad uniform range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"Uniform({self.low}..{self.high}ms)"


class Normal(LatencyModel):
    """Gaussian truncated at ``floor`` (resampled, not clipped to a spike)."""

    def __init__(self, mu: float, sigma: float, floor: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError(f"negative sigma {sigma}")
        self.mu = mu
        self.sigma = sigma
        self.floor = floor

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        for _ in range(64):
            value = rng.gauss(self.mu, self.sigma)
            if value >= self.floor:
                return value
        return self.floor  # pathological parameters; keep the sim running

    @property
    def mean(self) -> float:
        return max(self.mu, self.floor)

    def __repr__(self) -> str:
        return f"Normal(mu={self.mu}, sigma={self.sigma})"


class LogNormal(LatencyModel):
    """Log-normal — the canonical heavy-tailed network delay model.

    Parameterised by the underlying normal's ``mu``/``sigma``; use
    :func:`lognormal_from_median_p95` to fit from observable quantiles.
    ``shift`` adds a deterministic propagation floor.
    """

    def __init__(self, mu: float, sigma: float, shift: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError(f"negative sigma {sigma}")
        self.mu = mu
        self.sigma = sigma
        self.shift = shift

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        return self.shift + rng.lognormvariate(self.mu, self.sigma)

    @property
    def mean(self) -> float:
        return self.shift + math.exp(self.mu + self.sigma ** 2 / 2)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu:.3f}, sigma={self.sigma:.3f}, shift={self.shift})"


#: 95th percentile z-score of the standard normal.
_Z95 = 1.6448536269514722


def lognormal_from_median_p95(median: float, p95: float,
                              shift: float = 0.0) -> LogNormal:
    """Fit a LogNormal whose median and 95th percentile match the inputs."""
    if not 0 < median < p95:
        raise ValueError(f"need 0 < median < p95, got {median}, {p95}")
    mu = math.log(median - shift if median > shift else median)
    adjusted_median = median - shift
    adjusted_p95 = p95 - shift
    if adjusted_median <= 0 or adjusted_p95 <= adjusted_median:
        raise ValueError("shift leaves no room for the distribution body")
    mu = math.log(adjusted_median)
    sigma = (math.log(adjusted_p95) - mu) / _Z95
    return LogNormal(mu, sigma, shift)


class Gamma(LatencyModel):
    """Gamma-distributed delay (moderate tail, strictly positive)."""

    def __init__(self, shape: float, scale: float, shift: float = 0.0) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError("gamma shape and scale must be positive")
        self.shape = shape
        self.scale = scale
        self.shift = shift

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        return self.shift + rng.gammavariate(self.shape, self.scale)

    @property
    def mean(self) -> float:
        return self.shift + self.shape * self.scale

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape}, scale={self.scale}, shift={self.shift})"


class Empirical(LatencyModel):
    """Resamples from observed values (bootstrap-style)."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("empirical model needs at least one sample")
        if any(value < 0 for value in samples):
            raise ValueError("negative latency sample")
        self.samples = list(samples)

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        return rng.choice(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.samples)}, mean={self.mean:.2f}ms)"


class Compound(LatencyModel):
    """The sum of independent component delays (e.g. queueing + propagation)."""

    def __init__(self, components: List[LatencyModel]) -> None:
        if not components:
            raise ValueError("compound model needs at least one component")
        self.components = list(components)

    def sample(self, rng: random.Random) -> float:
        """Draw one one-way latency sample in milliseconds."""
        return sum(component.sample(rng) for component in self.components)

    @property
    def mean(self) -> float:
        return sum(component.mean for component in self.components)

    def __add__(self, other: LatencyModel) -> "Compound":
        return Compound(self.components + [other])

    def __repr__(self) -> str:
        return f"Compound({self.components!r})"
