"""A tcpdump-analog packet tap.

The paper measures the wireless vs. resolver split of each DNS lookup "using
both dig from the client side and tcpdump at P-GW".  :class:`PacketTrace`
reproduces that method: attach it to a network, filter on a host name, and
read back timestamped records to compute per-segment timings.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.netsim.network import Network
from repro.netsim.packet import Datagram


class TraceRecord(NamedTuple):
    """One observed packet event."""

    time: float
    host: str
    event: str  # "send" | "forward" | "deliver" | "drop"
    src: str
    dst: str
    size: int
    protocol: str


class PacketTrace:
    """Collects :class:`TraceRecord` entries from a network tap."""

    def __init__(self, network: Network,
                 host_filter: Optional[str] = None,
                 event_filter: Optional[str] = None) -> None:
        self._network = network
        self._host_filter = host_filter
        self._event_filter = event_filter
        self.records: List[TraceRecord] = []
        self._tap: Callable = self._observe
        network.add_tap(self._observe)

    def _observe(self, time: float, host: str, event: str,
                 datagram: Datagram) -> None:
        if self._host_filter is not None and host != self._host_filter:
            return
        if self._event_filter is not None and event != self._event_filter:
            return
        self.records.append(TraceRecord(
            time=time, host=host, event=event,
            src=str(datagram.src), dst=str(datagram.dst),
            size=datagram.size, protocol=datagram.protocol))

    def close(self) -> None:
        """Stop capturing."""
        self._network.remove_tap(self._observe)

    def clear(self) -> None:
        """Drop all captured records (keep capturing)."""
        self.records.clear()

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [record for record in self.records if start <= record.time <= end]

    def first(self, event: Optional[str] = None) -> Optional[TraceRecord]:
        """The first record (optionally of one event kind), or None."""
        for record in self.records:
            if event is None or record.event == event:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        scope = self._host_filter or "*"
        return f"PacketTrace(host={scope}, records={len(self.records)})"
