"""The routed topology: hosts, links, forwarding, middleboxes, taps.

Routing is shortest-path by mean link latency over an undirected graph
(networkx).  Delivery walks the path hop by hop, sampling each link's
latency, applying any middlebox at each traversed host, and re-routing when
a middlebox rewrites the destination (NAT).  Packet taps observe datagrams
at named hosts, which is how the experiments split "wireless" from
"resolver" time exactly like the paper's tcpdump-at-P-GW method.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import AddressError, RoutingError
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Datagram
from repro.netsim.rand import RandomStreams

#: A tap sees (time_ms, host_name, event, datagram); event is "send",
#: "forward", "deliver", or "drop".
Tap = Callable[[float, str, str, Datagram], None]

#: Hard bound on middlebox-driven re-routing to catch rewrite loops.
_MAX_REROUTES = 16


class Network:
    """A topology of hosts and links bound to a simulator."""

    def __init__(self, sim: Simulator, streams: RandomStreams) -> None:
        self.sim = sim
        self.streams = streams
        self._graph = nx.Graph()
        self._hosts: Dict[str, Host] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._ip_index: Dict[str, Host] = {}
        self._taps: List[Tap] = []
        self._paths: Optional[Dict[str, Dict[str, List[str]]]] = None
        #: Attached :class:`repro.telemetry.Telemetry`, or ``None``.
        #: Every instrumentation site in the stack checks this before
        #: doing any work, so an unobserved network runs the exact same
        #: instruction stream as before the subsystem existed.
        self.telemetry = None
        #: Cached counter instruments, valid while ``telemetry`` is
        #: ``_metrics_facade``.  Each is still registered lazily on its
        #: first use (identical registry contents to uncached code); the
        #: cache only skips the registry lookup on the per-packet path.
        self._metrics_facade = None
        self._m_datagrams = None
        self._m_delivered = None
        self._m_drops = None
        #: Active partitions: (group_a, group_b) pairs of host-name sets.
        #: ``group_b is None`` means "everything not in group_a".  Empty
        #: when no fault plan is active, so the per-packet check is one
        #: truthiness test.
        self._partitions: List[Tuple[frozenset, Optional[frozenset]]] = []

    # -- construction -------------------------------------------------------------

    def add_host(self, name: str, *addresses: str) -> Host:
        """Create a host, assign its addresses, join the topology."""
        if name in self._hosts:
            raise AddressError(f"duplicate host name {name}")
        host = Host(name)
        host.network = self
        self._hosts[name] = host
        self._graph.add_node(name)
        for ip in addresses:
            self.assign_address(host, ip)
        return host

    def assign_address(self, host: Host, ip: str) -> None:
        """Bind ``ip`` to ``host`` (must be globally unique)."""
        if ip in self._ip_index:
            raise AddressError(f"address {ip} already assigned to "
                               f"{self._ip_index[ip].name}")
        host.addresses.append(ip)
        self._ip_index[ip] = host

    def release_address(self, host: Host, ip: str) -> None:
        """Unbind ``ip`` from ``host`` so it can move elsewhere."""
        if self._ip_index.get(ip) is not host:
            raise AddressError(f"{ip} is not assigned to {host.name}")
        host.addresses.remove(ip)
        del self._ip_index[ip]

    def add_link(self, a: str, b: str, latency, loss: float = 0.0,
                 name: Optional[str] = None,
                 bandwidth_mbps: Optional[float] = None) -> Link:
        """Connect two hosts with a latency model (and optional loss)."""
        for endpoint in (a, b):
            if endpoint not in self._hosts:
                raise AddressError(f"unknown host {endpoint}")
        link = Link(a, b, latency, loss=loss, name=name,
                    bandwidth_mbps=bandwidth_mbps)
        self._links[self._link_key(a, b)] = link
        self._graph.add_edge(a, b, weight=max(link.mean_latency, 1e-9))
        self._paths = None  # invalidate the routing cache
        return link

    def remove_link(self, a: str, b: str) -> Link:
        """Tear down the link between ``a`` and ``b`` (e.g. radio handoff).

        Packets already scheduled keep their sampled delivery times, as
        in-flight frames do during a real handoff.
        """
        key = self._link_key(a, b)
        try:
            link = self._links.pop(key)
        except KeyError:
            raise RoutingError(f"no link between {a} and {b}") from None
        self._graph.remove_edge(a, b)
        self._paths = None
        return link

    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    # -- lookups ----------------------------------------------------------------------

    def host(self, name: str) -> Host:
        """The host named ``name``; raises AddressError if unknown."""
        try:
            return self._hosts[name]
        except KeyError:
            raise AddressError(f"unknown host {name}") from None

    def hosts(self) -> List[Host]:
        """All hosts in the topology."""
        return list(self._hosts.values())

    def host_for_ip(self, ip: str) -> Host:
        """The host owning ``ip``; raises AddressError if unowned."""
        try:
            return self._ip_index[ip]
        except KeyError:
            raise AddressError(f"no host owns {ip}") from None

    def link_between(self, a: str, b: str) -> Link:
        """The link between two adjacent hosts; raises RoutingError."""
        try:
            return self._links[self._link_key(a, b)]
        except KeyError:
            raise RoutingError(f"no link between {a} and {b}") from None

    # -- partitions (fault injection) ---------------------------------------------

    def partition(self, group_a, group_b=None) -> Tuple[frozenset,
                                                        Optional[frozenset]]:
        """Split the topology: drop traffic between the two host groups.

        ``group_b=None`` isolates ``group_a`` from every other host.  The
        returned token heals the cut via :meth:`heal_partition`.  Packets
        are dropped by endpoint membership (src in one group, dst in the
        other), which black-holes the traffic a real partition would.
        """
        token = (frozenset(group_a),
                 None if group_b is None else frozenset(group_b))
        for name in token[0] | (token[1] or frozenset()):
            if name not in self._hosts:
                raise AddressError(f"unknown host {name}")
        self._partitions.append(token)
        return token

    def heal_partition(self, token) -> None:
        """Remove a partition installed by :meth:`partition`."""
        self._partitions.remove(token)

    def is_partitioned(self, src: str, dst: str) -> bool:
        """Whether an active partition separates two hosts."""
        for group_a, group_b in self._partitions:
            src_in_a, dst_in_a = src in group_a, dst in group_a
            if group_b is None:
                if src_in_a != dst_in_a:
                    return True
            elif (src_in_a and dst in group_b) or (dst_in_a and src in group_b):
                return True
        return False

    def add_tap(self, tap: Tap) -> None:
        """Register a packet observer (see PacketTrace)."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        """Unregister a packet observer."""
        self._taps.remove(tap)

    # -- routing ----------------------------------------------------------------------------

    def path(self, src: str, dst: str) -> List[str]:
        """Host names from ``src`` to ``dst`` inclusive."""
        if self._paths is None:
            self._paths = dict(nx.all_pairs_dijkstra_path(self._graph))
        try:
            return self._paths[src][dst]
        except KeyError:
            raise RoutingError(f"no route from {src} to {dst}") from None

    def path_mean_latency(self, src: str, dst: str) -> float:
        """Sum of mean one-way link latencies along the route."""
        hops = self.path(src, dst)
        total = 0.0
        for a, b in zip(hops, hops[1:]):
            link = self.link_between(a, b)
            total += link.latency_from(a).mean
        return total

    # -- forwarding -----------------------------------------------------------------------------

    def send(self, datagram: Datagram, from_host: Host) -> None:
        """Inject ``datagram`` at ``from_host`` and walk it to delivery.

        The walk samples each link once, applies middleboxes at every
        traversed host (including the final one), follows destination
        rewrites, and schedules the delivery callback at the accumulated
        time.  Loss anywhere silently drops the packet.
        """
        tel = self.telemetry
        if tel is not None:
            if tel is not self._metrics_facade:
                self._metrics_facade = tel
                self._m_datagrams = self._m_delivered = self._m_drops = None
            counter = self._m_datagrams
            if counter is None:
                counter = self._m_datagrams = tel.metrics.counter(
                    "repro_net_datagrams_total",
                    "datagrams injected into the network")
            counter.inc(protocol=datagram.protocol)
        self._emit("send", from_host.name, datagram)
        self._walk(datagram, from_host, elapsed=0.0, reroutes=0)

    def _walk(self, datagram: Datagram, at: Host, elapsed: float,
              reroutes: int) -> None:
        if reroutes > _MAX_REROUTES:
            raise RoutingError(
                f"middlebox rewrite loop for {datagram!r} at {at.name}")
        try:
            dst_host = self.host_for_ip(datagram.dst.ip)
        except AddressError:
            self._count_drop("unroutable")
            self._schedule_tap("drop", at.name, datagram, elapsed)
            return
        if self._partitions and self.is_partitioned(at.name, dst_host.name):
            self._count_drop("partition")
            self._schedule_tap("drop", at.name, datagram, elapsed)
            return
        hops = self.path(at.name, dst_host.name)
        rng = self.streams.stream("link-delays")
        current = datagram
        # The walk runs synchronously at send time, so ``sim.now`` here is
        # the injection instant; hop span endpoints are ``send_now +
        # elapsed``, the same float expression the tap callbacks observe
        # as ``sim.now`` when they fire.
        tracer = None
        ctx = datagram.trace_ctx
        if self.telemetry is not None and ctx is not None:
            tracer = self.telemetry.tracer
        send_now = self.sim.now
        links = self._links
        for previous, nxt in zip(hops, hops[1:]):
            # Inline link_between: ``hops`` came from path() over the
            # live graph, so every consecutive pair has a link.
            link = links[(previous, nxt) if previous <= nxt
                         else (nxt, previous)]
            hop_start = elapsed
            delay = link.sample_delay(previous, rng, current.size)
            if delay is None:
                self._count_drop("loss")
                self._schedule_tap("drop", nxt, current, elapsed)
                return
            elapsed += delay
            current.hops.append(nxt)
            if tracer is not None:
                tracer.add(
                    "transit", "net", track=nxt, parent=ctx,
                    start_ms=send_now + hop_start,
                    end_ms=send_now + elapsed,
                    link=link.name or f"{previous}~{nxt}",
                    protocol=current.protocol, size=current.size,
                    final=nxt == hops[-1],
                    **{"from": previous, "to": nxt})
            arrived_at = self._hosts[nxt]
            if arrived_at.middlebox is not None and nxt != hops[-1]:
                processed = arrived_at.middlebox.process(current, arrived_at)
                if processed is None:
                    self._count_drop("middlebox")
                    self._schedule_tap("drop", nxt, current, elapsed)
                    return
                self._schedule_tap("forward", nxt, processed, elapsed)
                if processed.dst.ip != current.dst.ip:
                    self._walk(processed, arrived_at, elapsed, reroutes + 1)
                    return
                current = processed
            elif nxt != hops[-1]:
                self._schedule_tap("forward", nxt, current, elapsed)
        final_host = self._hosts[hops[-1]]
        if final_host.middlebox is not None:
            processed = final_host.middlebox.process(current, final_host)
            if processed is None:
                self._count_drop("middlebox")
                self._schedule_tap("drop", final_host.name, current, elapsed)
                return
            if not final_host.owns(processed.dst.ip):
                self._schedule_tap("forward", final_host.name, processed, elapsed)
                self._walk(processed, final_host, elapsed, reroutes + 1)
                return
            current = processed
        self.sim.call_after(elapsed + final_host.brownout_ms,
                            self._deliver, final_host, current)

    def _deliver(self, host: Host, datagram: Datagram) -> None:
        tel = self.telemetry
        if host.down:
            self._count_drop("host-down")
            self._emit("drop", host.name, datagram)
            return
        self._emit("deliver", host.name, datagram)
        sock = host.socket_on_port(datagram.dst.port)
        if sock is None:
            self._count_drop("no-socket")
            self._emit("drop", host.name, datagram)
            return
        if tel is not None:
            if tel is not self._metrics_facade:
                self._metrics_facade = tel
                self._m_datagrams = self._m_delivered = self._m_drops = None
            counter = self._m_delivered
            if counter is None:
                counter = self._m_delivered = tel.metrics.counter(
                    "repro_net_delivered_total",
                    "datagrams handed to a bound socket")
            counter.inc(protocol=datagram.protocol)
            if datagram.trace_ctx is not None:
                tel.tracer.event("deliver", "net", track=host.name,
                                 parent=datagram.trace_ctx,
                                 dst=str(datagram.dst))
        sock.handle_delivery(datagram)

    # -- taps ------------------------------------------------------------------------------------

    def _schedule_tap(self, event: str, host_name: str, datagram: Datagram,
                      elapsed: float) -> None:
        if not self._taps:
            return
        self.sim.call_after(
            elapsed, self._emit, event, host_name, datagram)

    def _emit(self, event: str, host_name: str, datagram: Datagram) -> None:
        now = self.sim.now
        for tap in self._taps:
            tap(now, host_name, event, datagram)

    def _count_drop(self, reason: str) -> None:
        tel = self.telemetry
        if tel is not None:
            if tel is not self._metrics_facade:
                self._metrics_facade = tel
                self._m_datagrams = self._m_delivered = self._m_drops = None
            counter = self._m_drops
            if counter is None:
                counter = self._m_drops = tel.metrics.counter(
                    "repro_net_drops_total",
                    "datagrams dropped in transit")
            counter.inc(reason=reason)
