"""Hosts and middleboxes.

A :class:`Host` owns one or more IP addresses and a set of bound sockets.
A :class:`Middlebox` attached to a host rewrites datagrams that traverse or
arrive at that host — this is how the P-GW's NAT (which hides client IPs
from CDNs, §2 of the paper) is modelled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import AddressError
from repro.netsim.packet import Datagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.network import Network
    from repro.netsim.socket import UdpSocket


class Middlebox:
    """Rewrites datagrams at a host on the forwarding path.

    Subclasses override :meth:`process`.  Returning a datagram whose
    destination IP is not owned by the host causes the network to keep
    forwarding; returning ``None`` drops the packet (firewall semantics).
    """

    def process(self, datagram: Datagram, host: "Host") -> Optional[Datagram]:
        """Rewrite (or drop, by returning None) a traversing datagram."""
        raise NotImplementedError


class Host:
    """A simulated machine: addresses, sockets, optional middlebox."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.addresses: List[str] = []
        self.network: Optional["Network"] = None
        self.middlebox: Optional[Middlebox] = None
        self._sockets: Dict[int, "UdpSocket"] = {}
        self._next_ephemeral = 49152
        self._next_stream_token = 0
        #: Fault-injection state (see :mod:`repro.faults`).  A ``down``
        #: host silently drops every datagram delivered to it (a crashed
        #: machine); ``brownout_ms`` adds that much delay to each delivery
        #: (a machine that is up but pathologically slow).
        self.down = False
        self.brownout_ms = 0.0

    # -- addressing ----------------------------------------------------------

    @property
    def address(self) -> str:
        """The host's primary address."""
        if not self.addresses:
            raise AddressError(f"host {self.name} has no address")
        return self.addresses[0]

    def owns(self, ip: str) -> bool:
        """Whether this host holds address ``ip``."""
        return ip in self.addresses

    # -- sockets -----------------------------------------------------------------

    def register_socket(self, sock: "UdpSocket") -> None:
        """Bind a socket's port on this host (AddressError if taken)."""
        if sock.port in self._sockets:
            raise AddressError(
                f"port {sock.port} already bound on {self.name}")
        self._sockets[sock.port] = sock

    def unregister_socket(self, sock: "UdpSocket") -> None:
        """Release a socket's port binding."""
        self._sockets.pop(sock.port, None)

    def socket_on_port(self, port: int) -> Optional["UdpSocket"]:
        """The socket bound to ``port``, or None."""
        return self._sockets.get(port)

    def allocate_ephemeral_port(self) -> int:
        """The next free port in the ephemeral range."""
        for _ in range(16384):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                self._next_ephemeral = 49152
            if port not in self._sockets:
                return port
        raise AddressError(f"host {self.name} has no free ephemeral ports")

    def allocate_stream_token(self) -> int:
        """The next handshake-token sequence number for this host.

        A plain counter, so tokens are unique per connection yet
        reproducible across processes — unlike ``id()``-derived tokens,
        which put address-space values on the wire.
        """
        self._next_stream_token += 1
        return self._next_stream_token

    def install_middlebox(self, middlebox: Middlebox) -> None:
        """Attach a middlebox that processes datagrams at this host."""
        self.middlebox = middlebox

    def __repr__(self) -> str:
        return f"Host({self.name}, {self.addresses})"
