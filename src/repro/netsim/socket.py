"""UDP-style sockets with request/timeout semantics.

Servers bind a well-known port and set :attr:`UdpSocket.on_datagram`.
Clients use :meth:`UdpSocket.request`, which returns a
:class:`~repro.netsim.engine.SimFuture` resolving to the reply datagram or
failing with :class:`~repro.errors.QueryTimeout` — the race the paper's
fallback design ("forward to L-DNS on timeout from MEC DNS") depends on.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import QueryTimeout, SocketError
from repro.netsim.engine import SimFuture
from repro.netsim.node import Host
from repro.netsim.packet import Datagram, Endpoint

#: Server handler signature: (payload, client_endpoint, socket).
DatagramHandler = Callable[[bytes, Endpoint, "UdpSocket"], None]


def _fail_request(future: SimFuture, dst: Endpoint, timeout: float) -> None:
    """Timeout event for :meth:`UdpSocket.request` (no-op if already won).

    A module-level function with scheduler-carried args — no closure
    allocated per request on the hottest client path (HOT002).
    """
    future.fail(QueryTimeout(f"no reply from {dst} within {timeout}ms"))


class UdpSocket:
    """A socket bound to one (host, ip, port)."""

    def __init__(self, host: Host, ip: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        if host.network is None:
            raise SocketError(f"host {host.name} is not attached to a network")
        self.host = host
        self.ip = ip or host.address
        if not host.owns(self.ip):
            raise SocketError(f"{host.name} does not own {self.ip}")
        self.port = port if port is not None else host.allocate_ephemeral_port()
        self.closed = False
        self.on_datagram: Optional[DatagramHandler] = None
        self._pending_request: Optional[SimFuture] = None
        #: Trace context of the most recently dispatched datagram, read
        #: synchronously by server handlers inside ``on_datagram`` to
        #: join the sender's trace.
        self.last_delivery_ctx = None
        host.register_socket(self)

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.ip, self.port)

    # -- sending --------------------------------------------------------------

    def send_to(self, payload: bytes, dst: Endpoint, ctx=None,
                view=None) -> None:
        """Send ``payload`` to ``dst`` (fire and forget).

        ``ctx`` optionally attaches a telemetry trace context that rides
        the datagram out-of-band (it never touches the wire bytes).
        ``view`` optionally attaches an already-decoded view of
        ``payload`` (see :meth:`Datagram.claim_view`); attach one only
        when this sender is done with the object — the receiver that
        claims it owns it.
        """
        if self.closed:
            raise SocketError("send on closed socket")
        datagram = Datagram(self.endpoint, dst, payload)
        if ctx is not None:
            datagram.trace_ctx = ctx
        if view is not None:
            datagram.view = view
        assert self.host.network is not None
        self.host.network.send(datagram, self.host)

    def request(self, payload: bytes, dst: Endpoint,
                timeout: float, ctx=None) -> SimFuture:
        """Send and await the first datagram delivered back to this socket.

        The returned future resolves to the reply :class:`Datagram` or
        fails with :class:`QueryTimeout` after ``timeout`` ms.  One request
        may be outstanding per socket; protocol layers that need concurrent
        queries open one ephemeral socket per query, as real stub resolvers
        do.
        """
        if self._pending_request is not None and not self._pending_request.done:
            raise SocketError("socket already has a request in flight")
        sim = self.host.network.sim  # type: ignore[union-attr]
        future = sim.future()
        self._pending_request = future
        sim.call_after(timeout, _fail_request, future, dst, timeout)
        self.send_to(payload, dst, ctx=ctx)
        return future

    # -- receiving ----------------------------------------------------------------

    def handle_delivery(self, datagram: Datagram) -> None:
        """Network-side entry point: dispatch one arriving datagram."""
        if self.closed:
            return
        self.last_delivery_ctx = datagram.trace_ctx
        pending = self._pending_request
        if pending is not None and not pending.done:
            self._pending_request = None
            pending.resolve(datagram)
            return
        if self.on_datagram is not None:
            self.on_datagram(datagram.payload, datagram.src, self)

    def close(self) -> None:
        """Release the underlying socket resources."""
        if not self.closed:
            self.closed = True
            self.host.unregister_socket(self)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"UdpSocket({self.host.name} {self.endpoint}, {state})"
