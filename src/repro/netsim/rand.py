"""Named, reproducible random streams.

Every stochastic element (each link's latency, each load balancer, each
workload generator) draws from its own named stream derived from one root
seed.  Adding a new consumer therefore never perturbs the draws seen by
existing ones — the property that keeps experiments comparable across code
changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent ``random.Random`` streams under one seed."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use.

        The sub-seed is a SHA-256 of (root seed, name), so streams are
        stable across runs and independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        sub_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(sub_seed)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are namespaced under ``name``."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
