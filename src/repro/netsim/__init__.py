"""Deterministic discrete-event network simulator.

The simulator is the substrate that stands in for the paper's physical
testbed (USRP radios, srsLTE, a LAN, and the public Internet).  It provides:

* :mod:`repro.netsim.engine` — event loop, futures, and generator-based
  processes (``yield delay`` / ``yield future``).
* :mod:`repro.netsim.rand` — named, reproducible random streams.
* :mod:`repro.netsim.latency` — latency distribution models used to
  calibrate each link type.
* :mod:`repro.netsim.packet` / :mod:`.node` / :mod:`.link` /
  :mod:`.network` — datagrams, hosts, links, and a routed topology with
  middlebox (NAT) support.
* :mod:`repro.netsim.socket` — UDP-style sockets with request/timeout
  semantics.
* :mod:`repro.netsim.trace` — a tcpdump-analog packet tap (the paper uses
  tcpdump at the P-GW to split wireless vs. resolver time).

All times are milliseconds; all randomness flows from one seed.
"""

from repro.netsim.engine import (Simulator, SimFuture, ProcessFailed,
                                 observe_simulators)
from repro.netsim.rand import RandomStreams
from repro.netsim.latency import (
    LatencyModel,
    Constant,
    Uniform,
    Normal,
    LogNormal,
    Gamma,
    Empirical,
    Compound,
    lognormal_from_median_p95,
)
from repro.netsim.packet import Datagram, Endpoint
from repro.netsim.node import Host, Middlebox
from repro.netsim.link import Link
from repro.netsim.network import Network
from repro.netsim.socket import UdpSocket
from repro.netsim.trace import PacketTrace, TraceRecord

__all__ = [
    "Simulator",
    "SimFuture",
    "ProcessFailed",
    "observe_simulators",
    "RandomStreams",
    "LatencyModel",
    "Constant",
    "Uniform",
    "Normal",
    "LogNormal",
    "Gamma",
    "Empirical",
    "Compound",
    "lognormal_from_median_p95",
    "Datagram",
    "Endpoint",
    "Host",
    "Middlebox",
    "Link",
    "Network",
    "UdpSocket",
    "PacketTrace",
    "TraceRecord",
]
