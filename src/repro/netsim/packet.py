"""Datagrams and endpoints.

A :class:`Datagram` is the unit the network moves: an opaque payload plus
source/destination endpoints.  Middleboxes (NAT at the P-GW) rewrite the
endpoints; the payload is never interpreted below the application layer.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class Endpoint(NamedTuple):
    """An (ip, port) pair."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


class Datagram:
    """One UDP-style datagram in flight."""

    __slots__ = ("src", "dst", "payload", "protocol", "hops", "trace_ctx",
                 "view", "size")

    def __init__(self, src: Endpoint, dst: Endpoint, payload: bytes,
                 protocol: str = "udp") -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        #: Payload length in octets, precomputed: the size is read on
        #: every hop (bandwidth delay) and every tap span, and the
        #: payload never changes after construction.
        self.size = len(payload)
        self.protocol = protocol
        #: Host names traversed so far (filled in by the network walk).
        self.hops: list = []
        #: Out-of-band telemetry context riding alongside the payload.
        #: Never serialized — trace propagation must not change wire
        #: sizes or any simulated behaviour.
        self.trace_ctx = None
        #: Optional already-decoded view of ``payload`` (opaque to this
        #: layer — the application layers above put a dnswire Message
        #: here).  The sender attaches it only when handing off
        #: ownership; the receiver takes it with :meth:`claim_view`.
        #: ``payload`` stays authoritative: the view never changes wire
        #: sizes, delays, or any simulated behaviour, it only spares the
        #: receiver a re-parse of bytes the sender already had decoded.
        self.view: Optional[object] = None

    def claim_view(self) -> Optional[object]:
        """Take the decoded payload view, leaving ``None`` behind.

        Claim-once keeps ownership single: whoever claims it may treat
        the object as theirs, and any later reader (a duplicate
        delivery, a telemetry tap) falls back to parsing ``payload``.
        """
        view = self.view
        self.view = None
        return view

    def rewritten(self, src: Optional[Endpoint] = None,
                  dst: Optional[Endpoint] = None) -> "Datagram":
        """A copy with src and/or dst replaced (hop history preserved)."""
        clone = Datagram(src or self.src, dst or self.dst, self.payload,
                         self.protocol)
        clone.hops = list(self.hops)
        clone.trace_ctx = self.trace_ctx
        clone.view = self.view
        return clone

    def __repr__(self) -> str:
        return (f"Datagram({self.src} -> {self.dst}, {self.size}B, "
                f"{self.protocol})")
