"""Reliable stream channels (the TCP stand-in).

UDP datagrams in :mod:`repro.netsim.socket` are fire-and-forget; some
protocol paths need a connection: DNS falls back to TCP when a response
is truncated (RFC 7766), and large cache fills behave like HTTP over TCP.

The model keeps what matters for latency studies and drops the rest:

* a connect() costs one handshake round trip before data flows;
* request/response exchanges on an open channel cost one round trip plus
  serialization of the payload at the link bandwidth;
* delivery is reliable — per-link loss is retried transparently, paying
  the retransmission delay — and ordered per channel.

Internally each exchange rides the datagram fabric with a retry loop, so
paths, NAT middleboxes, and taps all apply exactly as for UDP.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import QueryTimeout, SocketError
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket

#: Handler signature for stream servers: (payload, peer) -> response bytes.
StreamHandler = Callable[[bytes, Endpoint], bytes]

#: Per-attempt retransmission timeout (ms) inside the reliability loop.
_RETRANSMIT_TIMEOUT = 1000.0
_MAX_RETRANSMITS = 6


class StreamServer:
    """Accepts stream exchanges on a well-known port.

    The handler may be a plain function returning the response bytes or a
    generator (a simulator process) for handlers that need upstream work.
    """

    def __init__(self, network: Network, host: Host, port: int,
                 handler: StreamHandler,
                 ip: Optional[str] = None) -> None:
        self.network = network
        self.host = host
        self.handler = handler
        self.sock = UdpSocket(host, ip=ip, port=port)
        self.sock.on_datagram = self._on_segment
        self.exchanges_served = 0

    @property
    def endpoint(self) -> Endpoint:
        return self.sock.endpoint

    def _on_segment(self, payload: bytes, peer: Endpoint,
                    sock: UdpSocket) -> None:
        kind, body = _split_segment(payload)
        if kind == b"SYN":
            sock.send_to(_segment(b"SYNACK", body), peer)
            return
        if kind != b"REQ":
            return  # stray segment; a real stack would RST
        self.network.sim.spawn(self._serve(body, peer))

    def _serve(self, body: bytes, peer: Endpoint) -> Generator:
        import inspect
        result = self.handler(body, peer)
        if inspect.isgenerator(result):
            response = yield from result
        else:
            response = result
        self.exchanges_served += 1
        if response is not None:
            self.sock.send_to(_segment(b"RSP", response), peer)

    def close(self) -> None:
        """Release the underlying socket resources."""
        self.sock.close()


class StreamChannel:
    """A client-side connection to a :class:`StreamServer`."""

    def __init__(self, network: Network, host: Host, peer: Endpoint) -> None:
        self.network = network
        self.host = host
        self.peer = peer
        self.connected = False
        self.round_trips = 0

    def connect(self, timeout: Optional[float] = None) -> Generator:
        """Process: the handshake round trip; returns self when open.

        ``timeout`` bounds the whole handshake (ms); None keeps only the
        per-retransmission bound.
        """
        # A per-host connection sequence keeps tokens unique without
        # id(self), whose value is an address-space artefact: the same
        # trial would put different bytes on the wire in different
        # processes, breaking byte-identical replay digests.
        token = f"{self.host.name}:{self.host.allocate_stream_token()}".encode()
        reply = yield from self._reliable_exchange(_segment(b"SYN", token),
                                                   expect=b"SYNACK",
                                                   timeout=timeout)
        if _split_segment(reply)[1] != token:
            raise SocketError("handshake token mismatch")
        self.connected = True
        return self

    def exchange(self, payload: bytes,
                 timeout: Optional[float] = None) -> Generator:
        """Process: send ``payload``, return the server's response bytes.

        ``timeout`` is an overall deadline in ms for the exchange; when it
        expires — a server that accepted the connection and then died
        mid-stream never answers — :class:`QueryTimeout` is raised instead
        of retransmitting forever.
        """
        if not self.connected:
            raise SocketError("exchange on an unconnected stream channel")
        reply = yield from self._reliable_exchange(_segment(b"REQ", payload),
                                                   expect=b"RSP",
                                                   timeout=timeout)
        return _split_segment(reply)[1]

    def close(self) -> None:
        """Release the underlying socket resources."""
        self.connected = False

    def _reliable_exchange(self, segment: bytes, expect: bytes,
                           timeout: Optional[float] = None) -> Generator:
        """Send with retransmission until a matching segment returns."""
        sim = self.network.sim
        deadline = None if timeout is None else sim.now + timeout
        last_error: Optional[Exception] = None
        for _ in range(_MAX_RETRANSMITS):
            attempt_timeout = _RETRANSMIT_TIMEOUT
            if deadline is not None:
                remaining = deadline - sim.now
                if remaining <= 0:
                    break
                attempt_timeout = min(attempt_timeout, remaining)
            sock = UdpSocket(self.host)
            try:
                reply = yield sock.request(segment, self.peer,
                                           attempt_timeout)
            except QueryTimeout as error:
                last_error = error
                continue
            finally:
                sock.close()
            self.round_trips += 1
            if _split_segment(reply.payload)[0] == expect:
                return reply.payload
            last_error = SocketError(
                f"unexpected segment {reply.payload[:12]!r}")
        if deadline is not None and sim.now >= deadline:
            raise QueryTimeout(
                f"stream exchange with {self.peer} exceeded {timeout}ms")
        raise last_error if last_error is not None else QueryTimeout(
            f"stream exchange with {self.peer} failed")


def open_channel(network: Network, host: Host, peer: Endpoint,
                 timeout: Optional[float] = None) -> Generator:
    """Process: connect a new channel to ``peer`` (handshake included)."""
    channel = StreamChannel(network, host, peer)
    yield from channel.connect(timeout=timeout)
    return channel


def _segment(kind: bytes, body: bytes) -> bytes:
    return kind + b"|" + body


def _split_segment(payload: bytes):
    kind, _, body = payload.partition(b"|")
    return kind, body
