"""Span-based latency attribution.

:func:`wireless_resolver_split` re-derives the paper's Figure 3
wireless-vs-resolver breakdown from per-hop transit spans instead of
the packet tap (``measure.runner._wireless_portion``).  Both methods
observe the same instants — a transit span arriving at the gateway ends
at exactly the simulated time the tap's "forward" record carries — so
the two derivations agree to the float, which is what the telemetry
test suite asserts.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

from repro.telemetry.trace import Span

#: Span name used by the network layer for one link traversal.
TRANSIT_SPAN = "transit"
#: Category carried by all network-layer spans.
NET_CATEGORY = "net"


class LatencySplit(NamedTuple):
    """One lookup's latency attributed to the two paper segments."""

    wireless_ms: float      # UE <-> gateway portion
    resolver_ms: float      # everything beyond the gateway
    crossings: int          # gateway arrivals observed inside the window


def gateway_crossings(spans: Iterable[Span], gateway_host: str,
                      started_ms: float, finished_ms: float,
                      trace_id: Optional[int] = None) -> List[float]:
    """Times at which packets of a lookup arrived at the gateway.

    A crossing is the end of a ``net/transit`` span whose destination
    hop is ``gateway_host``, landing inside ``[started_ms,
    finished_ms]`` — the span-world equivalent of the packet tap's
    "forward"/"deliver" records at the P-GW.
    """
    crossings: List[float] = []
    for span in spans:
        if span.name != TRANSIT_SPAN or span.category != NET_CATEGORY:
            continue
        if span.end_ms is None or span.attrs.get("to") != gateway_host:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        if started_ms <= span.end_ms <= finished_ms:
            crossings.append(span.end_ms)
    return crossings


def wireless_resolver_split(spans: Iterable[Span], gateway_host: str,
                            started_ms: float, finished_ms: float,
                            trace_id: Optional[int] = None) -> LatencySplit:
    """Split one lookup into wireless and resolver time from spans.

    Mirrors ``measure.runner._wireless_portion`` exactly: wireless time
    is (first gateway crossing − start) + (finish − last gateway
    crossing); with no crossings the whole round trip is attributed to
    the resolver side.
    """
    total = finished_ms - started_ms
    crossings = gateway_crossings(spans, gateway_host, started_ms,
                                  finished_ms, trace_id=trace_id)
    if not crossings:
        return LatencySplit(wireless_ms=0.0, resolver_ms=total, crossings=0)
    outbound = min(crossings) - started_ms
    inbound = finished_ms - max(crossings)
    wireless = max(outbound, 0.0) + max(inbound, 0.0)
    return LatencySplit(wireless_ms=wireless,
                        resolver_ms=max(total - wireless, 0.0),
                        crossings=len(crossings))


def trace_duration(spans: Iterable[Span], trace_id: int) -> float:
    """Wall span of one trace: earliest start to latest end."""
    starts: List[float] = []
    ends: List[float] = []
    for span in spans:
        if span.trace_id != trace_id or span.end_ms is None:
            continue
        starts.append(span.start_ms)
        ends.append(span.end_ms)
    if not starts:
        return 0.0
    return max(ends) - min(starts)
