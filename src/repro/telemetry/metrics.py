"""A small in-process metrics registry: counters, gauges, histograms.

Modeled on the Prometheus client-library data model — instruments are
registered once by name, carry a help string, and hold one sample per
label combination — but kept dependency-free and deterministic.  The
registry never reads a clock and never draws randomness, so recording a
metric cannot perturb the simulation.

Label values are stringified and samples are keyed by the sorted
``(key, value)`` tuple, so ``inc(host="a", link="b")`` and
``inc(link="b", host="a")`` hit the same sample.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: An OpenMetrics exemplar attached to one histogram bucket: the
#: sorted exemplar label pairs (typically ``trace_id``) plus the
#: observed value that landed it there.
ExemplarValue = Tuple[LabelKey, float]

#: Latency-oriented default buckets, in milliseconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, float("inf"))


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count, optionally partitioned by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._samples: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the sample selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        if len(labels) == 1:
            # Fast path for the overwhelmingly common one-label case:
            # sorting a single pair is the identity, so the key can be
            # built directly (same key bytes as ``_label_key``).
            (name, value), = labels.items()
            key: LabelKey = ((name, value if type(value) is str
                              else str(value)),)
        else:
            key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """The current count for one label combination (0.0 if unseen)."""
        return self._samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._samples.values())

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        """``(label_key, value)`` pairs in stable sorted order."""
        yield from sorted(self._samples.items())

    def merge_from(self, other: "Counter") -> None:
        """Add every sample of ``other`` into this counter."""
        for key, value in sorted(other._samples.items()):
            self._samples[key] = self._samples.get(key, 0.0) + value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.total():g})"


class Gauge:
    """A value that can go up and down (queue depth, pool size)."""

    kind = "gauge"

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._samples: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Replace the sample selected by ``labels`` with ``value``."""
        self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the selected sample."""
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Subtract ``amount`` from the selected sample."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """The current value for one label combination (0.0 if unseen)."""
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[LabelKey, float]]:
        """``(label_key, value)`` pairs in stable sorted order."""
        yield from sorted(self._samples.items())

    def merge_from(self, other: "Gauge") -> None:
        """Adopt every sample of ``other`` (last write wins)."""
        for key, value in sorted(other._samples.items()):
            self._samples[key] = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}, {len(self._samples)} series)"


class _HistogramSample:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is ≥ v when
    exported; internally each observation lands in exactly one bucket
    and cumulation happens at read time.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self._samples: Dict[LabelKey, _HistogramSample] = {}
        #: Last exemplar per (label set, bucket index) — OpenMetrics
        #: semantics: a bucket carries at most one, newest wins.
        self._exemplars: Dict[LabelKey, Dict[int, ExemplarValue]] = {}

    def observe(self, value: float,
                exemplar: Optional[Dict[str, str]] = None,
                **labels: object) -> None:
        """Record one observation into the selected sample.

        ``exemplar`` optionally attaches OpenMetrics exemplar labels
        (e.g. ``{"trace_id": "17"}``) to the bucket the value lands in;
        the bucket keeps the most recent one.
        """
        key = _label_key(labels)
        sample = self._samples.get(key)
        if sample is None:
            sample = self._samples[key] = _HistogramSample(len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                sample.bucket_counts[index] += 1
                if exemplar is not None:
                    self._exemplars.setdefault(key, {})[index] = (
                        _label_key(dict(exemplar)), value)
                break
        sample.total += value
        sample.count += 1

    def exemplars(self, **labels: object) -> Dict[int, ExemplarValue]:
        """Bucket-index -> exemplar for one label combination."""
        return dict(self._exemplars.get(_label_key(labels), {}))

    def count(self, **labels: object) -> int:
        """Observations recorded for one label combination."""
        sample = self._samples.get(_label_key(labels))
        return sample.count if sample is not None else 0

    def sum(self, **labels: object) -> float:
        """Sum of observed values for one label combination."""
        sample = self._samples.get(_label_key(labels))
        return sample.total if sample is not None else 0.0

    def cumulative_buckets(self, **labels: object) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for one sample."""
        sample = self._samples.get(_label_key(labels))
        if sample is None:
            return [(bound, 0) for bound in self.buckets]
        running = 0
        out: List[Tuple[float, int]] = []
        for bound, in_bucket in zip(self.buckets, sample.bucket_counts):
            running += in_bucket
            out.append((bound, running))
        return out

    def samples(self) -> Iterator[Tuple[LabelKey, _HistogramSample]]:
        """``(label_key, sample)`` pairs in stable sorted order."""
        yield from sorted(self._samples.items(), key=lambda item: item[0])

    def merge_from(self, other: "Histogram") -> None:
        """Add every sample of ``other``; bucket layouts must match."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name!r} bucket mismatch: "
                f"{self.buckets} vs {other.buckets}")
        for key, theirs in sorted(other._samples.items(),
                                  key=lambda item: item[0]):
            mine = self._samples.get(key)
            if mine is None:
                mine = self._samples[key] = _HistogramSample(
                    len(self.buckets))
            for index, count in enumerate(theirs.bucket_counts):
                mine.bucket_counts[index] += count
            mine.total += theirs.total
            mine.count += theirs.count
        # Incoming exemplars win: snapshots merge in spec order, so
        # "newest" is the later trial — same outcome on every backend.
        for key, per_bucket in sorted(other._exemplars.items()):
            self._exemplars.setdefault(key, {}).update(per_bucket)

    def __repr__(self) -> str:
        observed = sum(s.count for _, s in self.samples())
        return f"Histogram({self.name}, {observed} observations)"


class MetricsRegistry:
    """Get-or-create home for every instrument in a run.

    Layers call ``registry.counter("repro_stub_queries_total", ...)`` at
    the point of use; the first call registers the instrument and later
    calls return the same object, so instrumentation sites need no setup
    ordering.  Re-registering a name as a different kind is a bug and
    raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name``, creating it on first use."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name``, creating it on first use."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name``, creating it on first use.

        ``buckets`` only applies on creation; later callers share the
        instrument as registered.
        """
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, help, buckets)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def get(self, name: str) -> Optional[object]:
        """The registered instrument called ``name``, or ``None``."""
        return self._instruments.get(name)

    def instruments(self) -> List[object]:
        """Every registered instrument, sorted by name."""
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of ``other`` into this registry.

        Counters add, gauges adopt the incoming value, histograms add
        bucket-wise.  Instruments missing here are created with the
        incoming help text (and bucket layout); a name registered as a
        different kind in the two registries raises, same as
        re-registering locally would.
        """
        for name in sorted(other._instruments):
            theirs = other._instruments[name]
            if isinstance(theirs, Counter):
                self.counter(name, theirs.help).merge_from(theirs)
            elif isinstance(theirs, Gauge):
                self.gauge(name, theirs.help).merge_from(theirs)
            elif isinstance(theirs, Histogram):
                self.histogram(name, theirs.help,
                               theirs.buckets).merge_from(theirs)
            else:  # pragma: no cover - registry only stores these kinds
                raise TypeError(
                    f"metric {name!r} has unmergeable type "
                    f"{type(theirs).__name__}")

    def _get_or_create(self, cls: type, name: str, help: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
