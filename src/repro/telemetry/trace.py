"""Query-scoped spans on the simulated clock.

A **trace** is one logical operation end to end — a DNS resolution, a
content fetch — and a **span** is one timed step inside it: a stub
attempt, an L-DNS cache probe, an upstream exchange, a C-DNS routing
decision, a single link traversal.  Parentage is carried by a
:class:`TraceContext` threaded through the call paths (and, across the
simulated wire, attached out-of-band to in-flight datagrams), exactly
like a trace id propagated in a request header — except nothing here
ever touches the wire bytes, so tracing can never perturb the
simulation.

Identifiers are sequence numbers, not random: the tracer draws no
randomness and adds no simulated time, which is what lets the replay
digests stay byte-for-byte identical with tracing on or off.

At population scale retaining every trace is untenable, so the tracer
supports **deterministic head sampling** (``sample_rate < 1.0``): when
a root span opens, the new trace id is hashed (splitmix64 — no RNG) and
the whole trace is kept or discarded by that one decision.  Ids keep
incrementing identically whether a trace is sampled in or out, so a
sampled run interleaves byte-for-byte with a full run's id space and
the simulation stream is untouched either way.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, List, Optional, Set,
                    Tuple, Union)

from repro.telemetry.sampling import hash_unit_u64

#: Anything that can parent a new span.
ParentLike = Union["Span", "TraceContext", None]


class TraceContext:
    """An immutable (trace, span) reference used to parent child spans.

    This is the propagation token: pass it down a call path (or ride it
    on a datagram) and every span begun with it as ``parent`` joins the
    same trace.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"TraceContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed operation within a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "category",
                 "track", "start_ms", "end_ms", "attrs")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, category: str, track: str,
                 start_ms: float, end_ms: Optional[float],
                 attrs: Dict[str, Any]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        #: The lane the span renders on (a host name, a link name).
        self.track = track
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.attrs = attrs

    @property
    def context(self) -> TraceContext:
        """The context that parents children of this span."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration_ms(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def done(self) -> bool:
        return self.end_ms is not None

    def __repr__(self) -> str:
        when = (f"{self.start_ms:.3f}..{self.end_ms:.3f}"
                if self.end_ms is not None else f"{self.start_ms:.3f}..open")
        return (f"Span({self.category}/{self.name} trace={self.trace_id} "
                f"[{when}] on {self.track})")


class Tracer:
    """Creates, finishes, and stores spans.

    ``enabled=False`` turns every method into a cheap no-op returning
    ``None`` — the instrumented call sites all tolerate ``None`` spans
    and contexts, so a disabled tracer costs one attribute check per
    site and nothing else.
    """

    def __init__(self, enabled: bool = True,
                 max_spans: int = 1_000_000,
                 sample_rate: float = 1.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        self.enabled = enabled
        self.max_spans = max_spans
        #: Fraction of traces retained by deterministic head sampling.
        self.sample_rate = sample_rate
        self.finished: List[Span] = []
        self.dropped = 0
        #: Spans discarded because their trace was sampled out.
        self.sampled_out = 0
        #: Trace ids head-sampling decided to drop (only populated when
        #: ``sample_rate < 1.0``; bounded by the run's trace count).
        self._unsampled: Set[int] = set()
        self._clock: Callable[[], float] = lambda: 0.0
        #: When bound, the clock is read as ``_clock_source.now`` — a
        #: plain attribute load instead of a callable invocation.  The
        #: clock is read on every span begin/end/event, so the callable
        #: indirection was a measurable slice of instrumented runs.
        self._clock_source: Optional[Any] = None
        self._next_trace_id = 0
        self._next_span_id = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a simulator clock (``lambda: sim.now``)."""
        self._clock = clock
        self._clock_source = None

    def bind_clock_source(self, source: Any) -> None:
        """Read the clock from ``source.now`` (any object with a ``now``
        attribute, typically a :class:`~repro.netsim.Simulator`)."""
        self._clock_source = source

    def _now(self) -> float:
        source = self._clock_source
        return source.now if source is not None else self._clock()

    # -- span lifecycle ---------------------------------------------------------

    def begin(self, name: str, category: str, track: str,
              parent: ParentLike = None, **attrs: Any) -> Optional[Span]:
        """Open a span starting now; ``parent=None`` starts a new trace."""
        if not self.enabled:
            return None
        source = self._clock_source
        now = source.now if source is not None else self._clock()
        return self._make(name, category, track, parent,
                          start_ms=now, end_ms=None, attrs=attrs)

    def end(self, span: Optional[Span], **attrs: Any) -> None:
        """Close ``span`` at the current clock; no-op on ``None``."""
        if span is None or span.end_ms is not None:
            return
        source = self._clock_source
        span.end_ms = source.now if source is not None else self._clock()
        if attrs:
            span.attrs.update(attrs)
        self._store(span)

    def add(self, name: str, category: str, track: str,
            start_ms: float, end_ms: float,
            parent: ParentLike = None, **attrs: Any) -> Optional[Span]:
        """Record a fully-formed span with explicit times.

        Used where the caller already knows both endpoints — the network
        walk computes each hop's departure and arrival before the packet
        "moves", so hop spans are added in one shot.
        """
        if not self.enabled:
            return None
        span = self._make(name, category, track, parent,
                          start_ms=start_ms, end_ms=end_ms, attrs=attrs)
        self._store(span)
        return span

    def event(self, name: str, category: str, track: str,
              parent: ParentLike = None, **attrs: Any) -> Optional[Span]:
        """Record an instant (zero-duration) event at the current clock."""
        if not self.enabled:
            return None
        source = self._clock_source
        now = source.now if source is not None else self._clock()
        span = self._make(name, category, track, parent,
                          start_ms=now, end_ms=now, attrs=attrs)
        self._store(span)
        return span

    # -- reading back -----------------------------------------------------------

    def spans_for(self, trace_id: int) -> List[Span]:
        """Finished spans belonging to one trace, in finish order."""
        return [span for span in self.finished if span.trace_id == trace_id]

    def trace_ids(self) -> List[int]:
        """Distinct trace ids among finished spans, in first-seen order."""
        seen: Dict[int, None] = {}
        for span in self.finished:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        """Drop every stored span (ids keep incrementing)."""
        self.finished.clear()
        self.dropped = 0
        self.sampled_out = 0
        self._unsampled.clear()

    # -- merging ----------------------------------------------------------------

    def absorb(self, spans: Iterable[Span]) -> None:
        """Fold spans from another tracer in, remapping their ids.

        Every incoming trace/span id is shifted past this tracer's
        high-water mark, so parentage inside the absorbed batch is
        preserved and nothing collides with existing spans.  Absorbing
        per-trial batches in a fixed order therefore yields the same id
        assignment no matter which process produced each batch — the
        property the sharded executor relies on for byte-identical
        trace exports.
        """
        trace_offset = self._next_trace_id
        span_offset = self._next_span_id
        max_trace = 0
        max_span = 0
        for span in spans:
            max_trace = max(max_trace, span.trace_id)
            max_span = max(max_span, span.span_id)
            parent_id = (None if span.parent_id is None
                         else span.parent_id + span_offset)
            copy = Span(span.trace_id + trace_offset,
                        span.span_id + span_offset, parent_id,
                        span.name, span.category, span.track,
                        span.start_ms, span.end_ms, dict(span.attrs))
            self._record(copy)
        self._next_trace_id += max_trace
        self._next_span_id += max_span

    def id_offsets(self) -> Tuple[int, int]:
        """Current ``(trace, span)`` id high-water marks.

        A caller that wants :meth:`ingest`'s copy-free path builds its
        spans with ids ``offset + 1 .. offset + count`` directly.
        """
        return (self._next_trace_id, self._next_span_id)

    def ingest(self, spans: Iterable[Span], trace_count: int,
               span_count: int) -> None:
        """Adopt caller-built spans wholesale — no copy, no remap.

        The contract: the caller read :meth:`id_offsets` first and built
        ``spans`` with ids strictly inside ``(offset, offset + count]``.
        Head sampling does not apply (the caller already decided what to
        keep — the engine's per-session sampler, for instance).  This is
        :meth:`absorb` minus the per-span copy, for hot producers like
        the population engine's sampled session batches.
        """
        for span in spans:
            self._record(span)
        self._next_trace_id += trace_count
        self._next_span_id += span_count

    def __len__(self) -> int:
        return len(self.finished)

    # -- internals --------------------------------------------------------------

    def _make(self, name: str, category: str, track: str, parent: ParentLike,
              start_ms: float, end_ms: Optional[float],
              attrs: Dict[str, Any]) -> Span:
        if parent is None:
            self._next_trace_id += 1
            trace_id = self._next_trace_id
            parent_id: Optional[int] = None
            if (self.sample_rate < 1.0
                    and hash_unit_u64(trace_id) >= self.sample_rate):
                self._unsampled.add(trace_id)
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._next_span_id += 1
        return Span(trace_id, self._next_span_id, parent_id, name, category,
                    track, start_ms, end_ms, dict(attrs))

    def _store(self, span: Span) -> None:
        """Retain one locally-created span, honouring sampling + bounds."""
        if self._unsampled and span.trace_id in self._unsampled:
            self.sampled_out += 1
            return
        if len(self.finished) < self.max_spans:
            self.finished.append(span)
        else:
            self.dropped += 1

    def _record(self, span: Span) -> None:
        if len(self.finished) >= self.max_spans:
            self.dropped += 1
            return
        self.finished.append(span)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.finished)} spans)"


def spans_in_window(spans: Iterable[Span], start: float,
                    end: float) -> List[Span]:
    """Finished spans whose end time falls inside ``[start, end]``."""
    return [span for span in spans
            if span.end_ms is not None and start <= span.end_ms <= end]
