"""Deterministic trace sampling and tail-exemplar capture.

Population-scale runs (:mod:`repro.workload.engine`) stream 10^6+
queries; retaining a span tree per query is out of the question, and
drawing a random number per query to decide what to keep would change
the RNG stream — breaking the byte-identical replay contract.  Both
problems dissolve with the two primitives here:

* **hash sampling** — the keep/drop decision is a pure function of a
  stable key (a trace id, a session id): :func:`hash_unit` maps the key
  to ``[0, 1)`` through SHA-256 and :class:`HeadSampler` compares it to
  the configured rate.  No RNG draw, no wall clock, and the same key
  always makes the same decision on every backend and every shard.
* **tail exemplars** — a :class:`TailReservoir` keeps the top-K
  *slowest* queries as compact :class:`Exemplar` records (total plus a
  per-stage breakdown).  Top-K under a strict total order is
  merge-order independent, so per-shard reservoirs folded in spec order
  reproduce the serial reservoir byte for byte.  The stored exemplars
  are what ``repro tail`` prints and what :func:`exemplar_spans` turns
  back into openable span trees.

Keys must be unique within a run (the engine builds them from the
deployment/district/UE/session/query coordinates), which is what makes
``(-total_ms, key)`` a *strict* total order.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

_MASK64 = (1 << 64) - 1
_SCALE = float(1 << 64)


def hash_unit(key: str) -> float:
    """Map ``key`` to a deterministic float in ``[0, 1)`` via SHA-256."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / _SCALE


def hash_unit_u64(value: int) -> float:
    """Map an integer id to ``[0, 1)`` with a splitmix64 finalizer.

    An order of magnitude cheaper than :func:`hash_unit`; the engine
    uses it where the key is already a dense integer (per-session
    sampling at mesoscale).  Same guarantees: no RNG, no clock, stable
    across processes and platforms.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value / _SCALE


class HeadSampler:
    """Keep/drop decisions as a pure function of the trace key."""

    __slots__ = ("rate",)

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate

    def keep(self, key: str) -> bool:
        """Whether the trace keyed ``key`` is sampled in."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return hash_unit(key) < self.rate

    def keep_id(self, value: int) -> bool:
        """Integer-keyed variant of :meth:`keep` (splitmix64 hash)."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return hash_unit_u64(value) < self.rate

    def __repr__(self) -> str:
        return f"HeadSampler(rate={self.rate})"


class Exemplar(NamedTuple):
    """One retained query: total latency plus per-stage attribution."""

    #: Unique, deterministic identity (deployment/district/UE/... path).
    key: str
    total_ms: float
    #: Simulated start time of the query, ms.
    t_ms: float
    #: ``(stage name, milliseconds)`` in critical-path order.
    stages: Tuple[Tuple[str, float], ...]
    #: Flat string attributes (deployment, site, hit/miss, ...).
    attrs: Tuple[Tuple[str, str], ...] = ()

    def sort_key(self) -> Tuple[float, str]:
        """The reservoir's strict total order: slowest first."""
        return (-self.total_ms, self.key)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-artifact form of this exemplar."""
        return {"key": self.key, "total_ms": self.total_ms,
                "t_ms": self.t_ms,
                "stages": [[name, ms] for name, ms in self.stages],
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Exemplar":
        """Rebuild an exemplar from its :meth:`to_dict` form."""
        return cls(key=str(data["key"]),
                   total_ms=float(data["total_ms"]),
                   t_ms=float(data.get("t_ms", 0.0)),
                   stages=tuple((str(name), float(ms))
                                for name, ms in data.get("stages", [])),
                   attrs=tuple(sorted((str(k), str(v)) for k, v
                                      in data.get("attrs", {}).items())))


class TailReservoir:
    """Bounded top-K (slowest) exemplar store, merge-order independent.

    ``offer`` is O(1) amortised: candidates append to a buffer that is
    compacted (sort + truncate) whenever it doubles past capacity, and
    once the reservoir has seen ``capacity`` entries a threshold lets
    the hot path reject obviously-fast queries with one comparison
    (:attr:`threshold_ms`).  Because the final contents are "the K
    smallest under a strict total order", the result is identical no
    matter how offers are ordered or how per-shard reservoirs are
    merged — the property the sharded executor's spec-order merge
    turns into byte-identical artifacts.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._items: List[Exemplar] = []
        #: Totals strictly below this can never enter the reservoir.
        #: ``None`` until the reservoir has compacted at capacity at
        #: least once; afterwards it is the K-th slowest total as of the
        #: last compaction — a safe (conservative) rejection bound
        #: between compactions.  A plain attribute (not a property) so
        #: the engine's hot loop can guard its ``offer`` calls with one
        #: attribute load.
        self.threshold_ms: Optional[float] = None
        #: Total count ever offered (including rejected), for reporting.
        self.offered = 0

    def offer(self, exemplar: Exemplar) -> None:
        """Consider one exemplar for retention."""
        self.offered += 1
        if self.capacity == 0:
            return
        threshold = self.threshold_ms
        if threshold is not None and exemplar.total_ms < threshold:
            return
        self._items.append(exemplar)
        if len(self._items) >= 2 * self.capacity:
            self._compact()

    def items(self) -> List[Exemplar]:
        """The retained exemplars, slowest first (at most ``capacity``)."""
        self._compact()
        return list(self._items)

    def merge(self, other: "TailReservoir") -> None:
        """Fold another reservoir's retained exemplars into this one."""
        self._items.extend(other._items)
        self.offered += other.offered
        self._compact()

    def _compact(self) -> None:
        self._items.sort(key=Exemplar.sort_key)
        del self._items[self.capacity:]
        if len(self._items) >= self.capacity and self.capacity > 0:
            self.threshold_ms = self._items[-1].total_ms
        # Below capacity the threshold stays None: everything is kept.

    def __len__(self) -> int:
        self._compact()
        return len(self._items)

    def __repr__(self) -> str:
        return (f"TailReservoir({len(self)}/{self.capacity} kept, "
                f"{self.offered} offered)")


def exemplar_spans(exemplars: List[Exemplar], tracer: Any) -> None:
    """Synthesize a span tree per exemplar into ``tracer``.

    The root span covers the whole query at its simulated time; each
    stage becomes a child laid end to end, so the reconstructed trace
    opens in Perfetto with the same per-stage attribution ``repro
    tail`` prints and feeds the critical-path analyzer unchanged.
    """
    for exemplar in exemplars:
        attrs = dict(exemplar.attrs)
        track = attrs.get("deployment", "tail-exemplar")
        root = tracer.add(
            "query", "workload", track,
            exemplar.t_ms, exemplar.t_ms + exemplar.total_ms,
            key=exemplar.key, **attrs)
        at = exemplar.t_ms
        for name, ms in exemplar.stages:
            tracer.add(name, "workload.stage", track, at, at + ms,
                       parent=root)
            at += ms
