"""Serialize spans and metrics to interoperable formats.

Three exporters:

* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series) so a run's counters drop straight into promtool or
  a textfile collector.
* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON ("X" complete
  events, microsecond timestamps); load the file in ``about:tracing``
  or https://ui.perfetto.dev to see every query as a flame chart laid
  out per host.
* :func:`to_json_artifact` — a stable JSON document combining metric
  samples and span summaries, written next to experiment output so CI
  can upload it as a build artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.trace import Span

_US_PER_MS = 1000.0


# -- Prometheus text format --------------------------------------------------------


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(pairs: Iterable[tuple]) -> str:
    rendered = ",".join(f'{key}="{_escape_label(value)}"'
                        for key, value in pairs)
    return f"{{{rendered}}}" if rendered else ""


def _render_exemplar(pairs: Iterable[tuple], value: float) -> str:
    """An OpenMetrics exemplar suffix: `` # {labels} value``.

    Unlike :func:`_render_labels`, the braces are mandatory even with no
    labels — the ``#`` marker introduces a label set, not a comment.
    """
    rendered = ",".join(f'{key}="{_escape_label(label)}"'
                        for key, label in pairs)
    return f" # {{{rendered}}} {_format_value(value)}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format.

    Histogram buckets that captured an exemplar carry the OpenMetrics
    suffix (`` # {trace_id="17"} 12.4``), linking the bucket straight to
    a trace in the matching ``--trace-out`` file; plain Prometheus
    parsers that predate OpenMetrics treat the suffix as a comment.
    """
    lines: List[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for key, value in instrument.samples():
                lines.append(
                    f"{name}{_render_labels(key)} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for key, sample in instrument.samples():
                exemplars = instrument.exemplars(**dict(key))
                running = 0
                for index, (bound, in_bucket) in enumerate(
                        zip(instrument.buckets, sample.bucket_counts)):
                    running += in_bucket
                    bucket_pairs = list(key) + [("le", _format_value(bound))]
                    line = (f"{name}_bucket{_render_labels(bucket_pairs)}"
                            f" {running}")
                    exemplar = exemplars.get(index)
                    if exemplar is not None:
                        line += _render_exemplar(exemplar[0], exemplar[1])
                    lines.append(line)
                lines.append(f"{name}_sum{_render_labels(key)} "
                             f"{_format_value(sample.total)}")
                lines.append(f"{name}_count{_render_labels(key)} "
                             f"{sample.count}")
    return "\n".join(lines) + "\n" if lines else ""


# -- Chrome trace_event JSON -------------------------------------------------------


def to_chrome_trace(spans: Iterable[Span],
                    process_name: str = "repro-mec-cdn") -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from finished spans.

    Each distinct span track (host or link name) becomes one "thread" so
    the viewer lays traces out per simulated host; simulated
    milliseconds become trace microseconds.  Parent → child links that
    *cross tracks* (a stub attempt spawning a transit hop, a query
    landing on another host's server span) additionally emit flow
    events (``ph: "s"``/``"f"``), so Perfetto draws the causality
    arrows between hosts instead of leaving cross-track children
    orphaned.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    tids: Dict[str, int] = {}
    by_id: Dict[int, Span] = {}
    finished: List[Span] = []
    span_events: List[Dict[str, Any]] = []
    for span in spans:
        if span.end_ms is None:
            continue
        finished.append(span)
        by_id[span.span_id] = span
        tid = tids.get(span.track)
        if tid is None:
            tid = tids[span.track] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": span.track},
            })
        args: Dict[str, Any] = {"trace_id": span.trace_id,
                                "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        span_events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": span.start_ms * _US_PER_MS,
            "dur": (span.end_ms - span.start_ms) * _US_PER_MS,
            "args": args,
        })
    span_events.sort(key=lambda event: (event["ts"], event["tid"]))
    flow_events: List[Dict[str, Any]] = []
    for span in finished:
        parent = (by_id.get(span.parent_id)
                  if span.parent_id is not None else None)
        if parent is None or parent.track == span.track:
            continue
        # One flow per cross-track edge, id'd by the child span: an "s"
        # (start) on the parent's track, an "f" (finish, binding to the
        # enclosing slice) on the child's, both at the child's start.
        common = {"name": f"{parent.name} -> {span.name}", "cat": "flow",
                  "pid": 1, "ts": span.start_ms * _US_PER_MS,
                  "id": span.span_id}
        flow_events.append({**common, "ph": "s",
                            "tid": tids[parent.track]})
        flow_events.append({**common, "ph": "f", "bp": "e",
                            "tid": tids[span.track]})
    # "s" sorts before "f" at equal (ts, id), keeping each pair ordered.
    flow_events.sort(key=lambda event: (event["ts"], event["id"],
                                        0 if event["ph"] == "s" else 1))
    return {"traceEvents": events + span_events + flow_events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated", "time_unit_in": "ms"}}


def write_chrome_trace(spans: Iterable[Span], path: str,
                       process_name: str = "repro-mec-cdn") -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    document = to_chrome_trace(spans, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")


# -- JSON artifact -----------------------------------------------------------------


def _jsonable(value: float) -> Any:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return value


def to_json_artifact(registry: MetricsRegistry,
                     spans: Optional[Iterable[Span]] = None,
                     meta: Optional[Dict[str, Any]] = None,
                     timeseries: Optional[Any] = None,
                     tail: Optional[Any] = None) -> Dict[str, Any]:
    """A stable JSON document of metric samples plus span roll-ups.

    ``timeseries`` (a :class:`~repro.telemetry.timeseries.TimeSeries`)
    embeds its ``repro-timeseries-v1`` document under ``"timeseries"``;
    ``tail`` (a :class:`~repro.telemetry.sampling.TailReservoir`) lists
    its slowest-query exemplars under ``"exemplars"``, slowest first.
    Both sections are pure simulated-time data; anything wall-clock
    (executor chunk timings) belongs in ``meta``, which byte-equality
    checks strip before comparing.
    """
    metrics: List[Dict[str, Any]] = []
    for instrument in registry.instruments():
        entry: Dict[str, Any] = {"name": instrument.name,
                                 "kind": instrument.kind,
                                 "help": instrument.help}
        if isinstance(instrument, (Counter, Gauge)):
            entry["samples"] = [{"labels": dict(key), "value": value}
                                for key, value in instrument.samples()]
        elif isinstance(instrument, Histogram):
            entry["samples"] = [{
                "labels": dict(key),
                "count": sample.count,
                "sum": sample.total,
                "buckets": [{"le": _jsonable(bound), "count": cumulative}
                            for bound, cumulative
                            in _cumulate(instrument.buckets,
                                         sample.bucket_counts)],
            } for key, sample in instrument.samples()]
        metrics.append(entry)

    document: Dict[str, Any] = {"format": "repro-telemetry-v1",
                                "metrics": metrics}
    if meta:
        document["meta"] = dict(meta)
    if timeseries is not None and not timeseries.empty:
        document["timeseries"] = timeseries.to_dict()
    if tail is not None and len(tail):
        document["exemplars"] = [exemplar.to_dict()
                                 for exemplar in tail.items()]
    if spans is not None:
        by_name: Dict[tuple, Dict[str, Any]] = {}
        n_spans = 0
        trace_ids = set()
        for span in spans:
            if span.end_ms is None:
                continue
            n_spans += 1
            trace_ids.add(span.trace_id)
            key = (span.category, span.name)
            summary = by_name.get(key)
            if summary is None:
                summary = by_name[key] = {"category": span.category,
                                          "name": span.name, "count": 0,
                                          "total_ms": 0.0}
            summary["count"] += 1
            summary["total_ms"] += span.end_ms - span.start_ms
        document["spans"] = {
            "count": n_spans,
            "traces": len(trace_ids),
            "by_name": [by_name[key] for key in sorted(by_name)],
        }
    return document


def _cumulate(bounds, counts):
    running = 0
    for bound, in_bucket in zip(bounds, counts):
        running += in_bucket
        yield bound, running


def write_json_artifact(registry: MetricsRegistry, path: str,
                        spans: Optional[Iterable[Span]] = None,
                        meta: Optional[Dict[str, Any]] = None,
                        timeseries: Optional[Any] = None,
                        tail: Optional[Any] = None) -> None:
    """Serialize :func:`to_json_artifact` output to ``path``."""
    document = to_json_artifact(registry, spans=spans, meta=meta,
                                timeseries=timeseries, tail=tail)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_prometheus_text(registry: MetricsRegistry, path: str) -> None:
    """Serialize :func:`to_prometheus_text` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus_text(registry))
