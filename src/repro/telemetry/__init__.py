"""`repro.telemetry` — query-scoped tracing, metrics, and exporters.

The observability substrate for the whole stack: a :class:`Tracer`
producing spans on the simulated clock, a :class:`MetricsRegistry` of
counters/gauges/histograms, and exporters to Prometheus text, Chrome
``trace_event`` JSON, and a JSON experiment artifact.

Everything hangs off one :class:`Telemetry` facade::

    tel = Telemetry()
    tel.attach(testbed.network)          # binds the sim clock, too
    ... run the workload ...
    exporters.write_chrome_trace(tel.tracer.finished, "trace.json")
    print(exporters.to_prometheus_text(tel.metrics))

Instrumented call sites all guard on ``network.telemetry`` being
non-``None`` (and the sockets/servers thread a per-query context
object), so with no telemetry attached the simulation runs the exact
same instruction stream it always did: no RNG draws, no added delays,
byte-for-byte identical replay digests.

For runs driven through ``repro.cli`` there is an **ambient default**:
:func:`set_default` installs a facade that ``build_testbed`` (and the
public-internet scenario) attach to each network they create, which is
how ``--trace-out``/``--metrics-out`` instrument experiments without
threading a parameter through every builder.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry import exporters
from repro.telemetry.analysis import (LatencySplit, gateway_crossings,
                                      trace_duration,
                                      wireless_resolver_split)
from repro.telemetry.metrics import (DEFAULT_BUCKETS, Counter, Gauge,
                                     Histogram, MetricsRegistry)
from repro.telemetry.trace import Span, TraceContext, Tracer

__all__ = [
    "Telemetry", "Tracer", "Span", "TraceContext",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "LatencySplit", "wireless_resolver_split", "gateway_crossings",
    "trace_duration", "exporters",
    "set_default", "get_default", "clear_default",
]


class Telemetry:
    """One run's tracer plus metrics registry, attachable to networks."""

    def __init__(self, tracing: bool = True) -> None:
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()

    def attach(self, network) -> "Telemetry":
        """Make ``network`` (and everything riding it) report here.

        Binds the tracer's clock to the network's simulator and sets
        ``network.telemetry``, which every instrumentation site in the
        stack checks before doing any work.
        """
        network.telemetry = self
        self.tracer.bind_clock_source(network.sim)
        return self

    def detach(self, network) -> None:
        """Stop ``network`` reporting here."""
        if getattr(network, "telemetry", None) is self:
            network.telemetry = None

    def __repr__(self) -> str:
        return (f"Telemetry({len(self.tracer.finished)} spans, "
                f"{len(self.metrics)} instruments)")


_default: Optional[Telemetry] = None


def set_default(telemetry: Optional[Telemetry]) -> None:
    """Install the ambient telemetry picked up by testbed builders."""
    global _default
    # repro: allow[RACE001] deliberate per-trial facade swap; capture restores it before results merge
    _default = telemetry


def get_default() -> Optional[Telemetry]:
    """The ambient telemetry, or ``None`` when observation is off."""
    return _default


def clear_default() -> None:
    """Remove the ambient telemetry (equivalent to ``set_default(None)``)."""
    set_default(None)
