"""`repro.telemetry` — query-scoped tracing, metrics, and exporters.

The observability substrate for the whole stack: a :class:`Tracer`
producing spans on the simulated clock, a :class:`MetricsRegistry` of
counters/gauges/histograms, and exporters to Prometheus text, Chrome
``trace_event`` JSON, and a JSON experiment artifact.

Everything hangs off one :class:`Telemetry` facade::

    tel = Telemetry()
    tel.attach(testbed.network)          # binds the sim clock, too
    ... run the workload ...
    exporters.write_chrome_trace(tel.tracer.finished, "trace.json")
    print(exporters.to_prometheus_text(tel.metrics))

Instrumented call sites all guard on ``network.telemetry`` being
non-``None`` (and the sockets/servers thread a per-query context
object), so with no telemetry attached the simulation runs the exact
same instruction stream it always did: no RNG draws, no added delays,
byte-for-byte identical replay digests.

For runs driven through ``repro.cli`` there is an **ambient default**:
:func:`set_default` installs a facade that ``build_testbed`` (and the
public-internet scenario) attach to each network they create, which is
how ``--trace-out``/``--metrics-out`` instrument experiments without
threading a parameter through every builder.
"""

from __future__ import annotations

from typing import Any, List, NamedTuple, Optional, Tuple

from repro.telemetry import exporters
from repro.telemetry.analysis import (LatencySplit, gateway_crossings,
                                      trace_duration,
                                      wireless_resolver_split)
from repro.telemetry.metrics import (DEFAULT_BUCKETS, Counter, Gauge,
                                     Histogram, MetricsRegistry)
from repro.telemetry.sampling import (Exemplar, HeadSampler, TailReservoir,
                                      exemplar_spans, hash_unit,
                                      hash_unit_u64)
from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.trace import Span, TraceContext, Tracer

__all__ = [
    "Telemetry", "TelemetryConfig", "Tracer", "Span", "TraceContext",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "TimeSeries", "TailReservoir", "Exemplar", "HeadSampler",
    "hash_unit", "hash_unit_u64", "exemplar_spans",
    "LatencySplit", "wireless_resolver_split", "gateway_crossings",
    "trace_duration", "exporters",
    "set_default", "get_default", "clear_default",
]


class TelemetryConfig(NamedTuple):
    """The knobs a :class:`Telemetry` facade was built with.

    Per-trial facades must behave identically to the session facade
    (same sampling decisions, same window layout, same reservoir
    bounds), so the executor clones this config across the process
    boundary instead of the facade itself — the config is six plain
    values and pickles for free.
    """

    tracing: bool = True
    #: Deterministic head-sampling rate for traces (1.0 = keep all).
    trace_sample: float = 1.0
    #: Simulated-time window width for the streaming time-series.
    window_ms: float = 1000.0
    #: Slowest-query exemplars retained by the tail reservoir.
    tail_capacity: int = 32
    max_windows: int = 4096
    max_annotations: int = 512


class Telemetry:
    """One run's tracer, metrics, time-series, and tail reservoir."""

    def __init__(self, tracing: bool = True, trace_sample: float = 1.0,
                 window_ms: float = 1000.0, tail_capacity: int = 32,
                 max_windows: int = 4096,
                 max_annotations: int = 512) -> None:
        self.tracer = Tracer(enabled=tracing, sample_rate=trace_sample)
        self.metrics = MetricsRegistry()
        self.timeseries = TimeSeries(window_ms=window_ms,
                                     max_windows=max_windows,
                                     max_annotations=max_annotations)
        self.tail = TailReservoir(tail_capacity)
        #: Simulators this facade was attached to (via their networks).
        #: Held only for end-of-trial engine introspection — the facade
        #: never calls into them, it just reads their public counters.
        self._sims: List[Any] = []

    def config(self) -> TelemetryConfig:
        """The config that reproduces this facade's behaviour."""
        return TelemetryConfig(
            tracing=self.tracer.enabled,
            trace_sample=self.tracer.sample_rate,
            window_ms=self.timeseries.window_ms,
            tail_capacity=self.tail.capacity,
            max_windows=self.timeseries.max_windows,
            max_annotations=self.timeseries.max_annotations)

    @classmethod
    def from_config(cls, config: TelemetryConfig) -> "Telemetry":
        """A fresh facade behaving exactly like ``config`` describes."""
        return cls(tracing=config.tracing,
                   trace_sample=config.trace_sample,
                   window_ms=config.window_ms,
                   tail_capacity=config.tail_capacity,
                   max_windows=config.max_windows,
                   max_annotations=config.max_annotations)

    def attach(self, network) -> "Telemetry":
        """Make ``network`` (and everything riding it) report here.

        Binds the tracer's clock to the network's simulator and sets
        ``network.telemetry``, which every instrumentation site in the
        stack checks before doing any work.
        """
        network.telemetry = self
        self.tracer.bind_clock_source(network.sim)
        if network.sim not in self._sims:
            self._sims.append(network.sim)
        return self

    def engine_stats(self) -> Tuple[int, int, int]:
        """``(simulators, max queue high-water, events processed)``.

        Read duck-typed off the attached simulators' public counters —
        the facade layer never imports the engine.  Values are
        wall-clock-free engine facts and merge deterministically
        (max / sum), so they can ride the same snapshot path as spans.
        """
        depth = 0
        events = 0
        for sim in self._sims:
            sim_depth = getattr(sim, "max_queue_depth", 0)
            if sim_depth > depth:
                depth = sim_depth
            events += getattr(sim, "events_processed", 0)
        return (len(self._sims), depth, events)

    def detach(self, network) -> None:
        """Stop ``network`` reporting here."""
        if getattr(network, "telemetry", None) is self:
            network.telemetry = None

    def __repr__(self) -> str:
        return (f"Telemetry({len(self.tracer.finished)} spans, "
                f"{len(self.metrics)} instruments, "
                f"{len(self.tail)} tail exemplars)")


_default: Optional[Telemetry] = None


def set_default(telemetry: Optional[Telemetry]) -> None:
    """Install the ambient telemetry picked up by testbed builders."""
    global _default
    # repro: allow[RACE001] deliberate per-trial facade swap; capture restores it before results merge
    _default = telemetry


def get_default() -> Optional[Telemetry]:
    """The ambient telemetry, or ``None`` when observation is off."""
    return _default


def clear_default() -> None:
    """Remove the ambient telemetry (equivalent to ``set_default(None)``)."""
    set_default(None)
