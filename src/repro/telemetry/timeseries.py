"""Streaming time-series: windowed counters and latency aggregates.

The metrics registry answers "how much, in total"; this module answers
"when".  Values land in fixed *simulated-time* windows (``window_ms``
wide, indexed ``int(t_ms // window_ms)``), so a series is a sparse map
from window index to a small aggregate cell:

* **counter** series — one float per window (events in that window);
* **latency** series — count, sum, and fixed-bucket counts per window
  (the bucket layout is :data:`~repro.telemetry.metrics.DEFAULT_BUCKETS`),
  enough to estimate any per-window quantile and to count threshold
  exceedances for burn-rate rules without retaining samples.

Control-plane moments (zone updates, fault injections, handovers) are
**annotations** on the same timeline: ``(t_ms, name, detail, scope)``
tuples rendered alongside the series so a mislocalization burst lines
up with the churn event that caused it.

Memory is bounded: each series keeps at most ``max_windows`` windows
(oldest dropped first) and at most ``max_annotations`` annotations
survive (earliest kept, after sorting).  Both bounds are enforced
identically on every backend, and :meth:`TimeSeries.merge_from` adds
window-wise — so per-trial instances merged in spec order reproduce
the serial instance exactly, extending the byte-identical artifact
contract to the time dimension.  Nothing here reads a clock or draws
randomness; callers pass simulated timestamps in.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import DEFAULT_BUCKETS, LabelKey, _label_key

#: A latency window cell: ``[count, sum, bucket_counts]``.
LatencyCell = List[Any]

#: One annotation: ``(t_ms, name, detail, scope)``.
Annotation = Tuple[float, str, str, str]

_N_BUCKETS = len(DEFAULT_BUCKETS)


class TimeSeries:
    """Windowed counters + latency aggregates + timeline annotations."""

    def __init__(self, window_ms: float = 1000.0,
                 max_windows: int = 4096,
                 max_annotations: int = 512) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        self.window_ms = float(window_ms)
        self.max_windows = max_windows
        self.max_annotations = max_annotations
        self._counters: Dict[str, Dict[LabelKey, Dict[int, float]]] = {}
        self._latencies: Dict[str, Dict[LabelKey, Dict[int, LatencyCell]]] = {}
        self._annotations: List[Annotation] = []

    # -- recording ----------------------------------------------------------

    def window_index(self, t_ms: float) -> int:
        """The window holding simulated time ``t_ms``."""
        return int(t_ms // self.window_ms)

    def count(self, name: str, t_ms: float, amount: float = 1.0,
              **labels: object) -> None:
        """Add ``amount`` to the counter series window covering ``t_ms``."""
        series = self._counters.setdefault(name, {}).setdefault(
            _label_key(labels), {})
        index = int(t_ms // self.window_ms)
        series[index] = series.get(index, 0.0) + amount
        if len(series) > self.max_windows:
            self._prune_counter(series)

    def observe(self, name: str, t_ms: float, value: float,
                **labels: object) -> None:
        """Record one latency sample into the window covering ``t_ms``."""
        series = self._latencies.setdefault(name, {}).setdefault(
            _label_key(labels), {})
        index = int(t_ms // self.window_ms)
        cell = series.get(index)
        if cell is None:
            cell = series[index] = [0, 0.0, [0] * _N_BUCKETS]
        cell[0] += 1
        cell[1] += value
        cell[2][bisect_left(DEFAULT_BUCKETS, value)] += 1
        if len(series) > self.max_windows:
            self._prune_latency(series)

    def annotate(self, t_ms: float, name: str, detail: str = "",
                 scope: str = "") -> None:
        """Mark a control-plane moment on the timeline."""
        self._annotations.append((float(t_ms), name, detail, scope))

    # -- bulk ingestion (the engine's locally-aggregated windows) -----------

    def bulk_count(self, name: str, labels: Dict[str, object],
                   cells: Dict[int, float]) -> None:
        """Fold pre-aggregated counter windows in (window index -> value)."""
        series = self._counters.setdefault(name, {}).setdefault(
            _label_key(labels), {})
        for index, value in cells.items():
            series[index] = series.get(index, 0.0) + value
        if len(series) > self.max_windows:
            self._prune_counter(series)

    def bulk_observe(self, name: str, labels: Dict[str, object],
                     cells: Dict[int, LatencyCell]) -> None:
        """Fold pre-aggregated latency windows in.

        Each incoming cell is ``[count, sum, bucket_counts]`` with the
        module's bucket layout — exactly what the population engine
        accumulates inline, so a district flushes its whole run in one
        call instead of paying a method dispatch per query.
        """
        series = self._latencies.setdefault(name, {}).setdefault(
            _label_key(labels), {})
        for index, theirs in cells.items():
            cell = series.get(index)
            if cell is None:
                series[index] = [theirs[0], theirs[1], list(theirs[2])]
                continue
            cell[0] += theirs[0]
            cell[1] += theirs[1]
            mine = cell[2]
            for at, count in enumerate(theirs[2]):
                mine[at] += count
        if len(series) > self.max_windows:
            self._prune_latency(series)

    # -- merging ------------------------------------------------------------

    def merge_from(self, other: "TimeSeries") -> None:
        """Add another instance window-wise (layouts must match)."""
        if other.window_ms != self.window_ms:
            raise ValueError(
                f"window mismatch: {self.window_ms} vs {other.window_ms}")
        for name in sorted(other._counters):
            for key in sorted(other._counters[name]):
                series = self._counters.setdefault(name, {}).setdefault(
                    key, {})
                for index, value in other._counters[name][key].items():
                    series[index] = series.get(index, 0.0) + value
                if len(series) > self.max_windows:
                    self._prune_counter(series)
        for name in sorted(other._latencies):
            for key in sorted(other._latencies[name]):
                series = self._latencies.setdefault(name, {}).setdefault(
                    key, {})
                for index, theirs in other._latencies[name][key].items():
                    cell = series.get(index)
                    if cell is None:
                        series[index] = [theirs[0], theirs[1],
                                         list(theirs[2])]
                        continue
                    cell[0] += theirs[0]
                    cell[1] += theirs[1]
                    mine = cell[2]
                    for at, count in enumerate(theirs[2]):
                        mine[at] += count
                if len(series) > self.max_windows:
                    self._prune_latency(series)
        self._annotations.extend(other._annotations)
        self._cap_annotations()

    # -- reading back -------------------------------------------------------

    def counter_series(self, name: str) -> List[Tuple[LabelKey,
                                                      Dict[int, float]]]:
        """``(labels, windows)`` per label set, in stable sorted order."""
        by_label = self._counters.get(name, {})
        return [(key, dict(by_label[key])) for key in sorted(by_label)]

    def latency_series(self, name: str) -> List[Tuple[LabelKey,
                                                      Dict[int,
                                                           LatencyCell]]]:
        """``(labels, windows)`` per label set, in stable sorted order."""
        by_label = self._latencies.get(name, {})
        return [(key, {index: [cell[0], cell[1], list(cell[2])]
                       for index, cell in by_label[key].items()})
                for key in sorted(by_label)]

    def annotations(self) -> List[Annotation]:
        """Every annotation, sorted by (time, scope, name, detail)."""
        self._cap_annotations()
        return list(self._annotations)

    @property
    def empty(self) -> bool:
        """Whether nothing has been recorded at all."""
        return not (self._counters or self._latencies or self._annotations)

    def to_dict(self) -> Dict[str, Any]:
        """The stable ``repro-timeseries-v1`` document."""
        series: List[Dict[str, Any]] = []
        for name in sorted(self._counters):
            for key in sorted(self._counters[name]):
                windows = self._counters[name][key]
                series.append({
                    "name": name, "kind": "counter", "labels": dict(key),
                    "windows": [{"index": index,
                                 "start_ms": index * self.window_ms,
                                 "value": windows[index]}
                                for index in sorted(windows)]})
        for name in sorted(self._latencies):
            for key in sorted(self._latencies[name]):
                windows = self._latencies[name][key]
                series.append({
                    "name": name, "kind": "latency", "labels": dict(key),
                    "windows": [{
                        "index": index,
                        "start_ms": index * self.window_ms,
                        "count": windows[index][0],
                        "sum": windows[index][1],
                        "buckets": [
                            [("+Inf" if bound == float("inf") else bound),
                             count]
                            for bound, count in zip(DEFAULT_BUCKETS,
                                                    windows[index][2])
                            if count],
                    } for index in sorted(windows)]})
        return {"format": "repro-timeseries-v1",
                "window_ms": self.window_ms,
                "series": series,
                "annotations": [
                    {"t_ms": t_ms, "name": name, "detail": detail,
                     "scope": scope}
                    for t_ms, name, detail, scope in self.annotations()]}

    # -- internals ----------------------------------------------------------

    def _prune_counter(self, series: Dict[int, float]) -> None:
        for index in sorted(series)[:len(series) - self.max_windows]:
            del series[index]

    def _prune_latency(self, series: Dict[int, LatencyCell]) -> None:
        for index in sorted(series)[:len(series) - self.max_windows]:
            del series[index]

    def _cap_annotations(self) -> None:
        self._annotations.sort()
        del self._annotations[self.max_annotations:]

    def __repr__(self) -> str:
        n_series = (sum(len(v) for v in self._counters.values())
                    + sum(len(v) for v in self._latencies.values()))
        return (f"TimeSeries(window={self.window_ms:g}ms, "
                f"{n_series} series, "
                f"{len(self._annotations)} annotations)")
