"""Typed DNS record data.

Each record type the reproduction uses has a dataclass-like Rdata subclass
with wire and presentation codecs.  Unknown types round-trip through
:class:`GenericRdata` so a resolver can forward records it does not
understand, as real resolvers must.

IPv4/IPv6 addresses are carried as strings in canonical presentation form;
:mod:`ipaddress` does the validation.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, Dict, List, Tuple, Type

from repro.dnswire.name import Name
from repro.dnswire.types import RecordType
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError

_REGISTRY: Dict[int, Type["Rdata"]] = {}


def _register(rtype: RecordType) -> Callable[[Type["Rdata"]], Type["Rdata"]]:
    def decorator(cls: Type["Rdata"]) -> Type["Rdata"]:
        cls.rtype = rtype
        _REGISTRY[int(rtype)] = cls
        return cls
    return decorator


class Rdata:
    """Base class for record data.

    Subclasses define ``rtype`` and implement :meth:`to_wire`,
    :meth:`from_wire`, :meth:`to_text`, and :meth:`from_text`.
    Instances are immutable by convention and compare by value.
    """

    rtype: RecordType

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        raise NotImplementedError

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "Rdata":
        raise NotImplementedError

    # value semantics -------------------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"


def rdata_class_for(rtype: int) -> Type[Rdata]:
    """The Rdata subclass registered for ``rtype``, or GenericRdata."""
    return _REGISTRY.get(int(rtype), GenericRdata)


def parse_rdata(rtype: int, reader: WireReader, rdlength: int) -> Rdata:
    """Decode rdata of the given type from the wire."""
    end = reader.offset + rdlength
    rdata = rdata_class_for(rtype).from_wire(reader, rdlength)
    if reader.offset != end:
        raise WireFormatError(
            f"rdata for type {rtype} consumed {reader.offset - (end - rdlength)} "
            f"of {rdlength} octets"
        )
    if isinstance(rdata, GenericRdata):
        rdata.generic_rtype = int(rtype)
    return rdata


@_register(RecordType.A)
class A(Rdata):
    """IPv4 address record."""

    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        self.address = str(ipaddress.IPv4Address(address))

    def _key(self) -> tuple:
        return (self.address,)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_bytes(ipaddress.IPv4Address(self.address).packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "A":
        if rdlength != 4:
            raise WireFormatError(f"A rdata must be 4 octets, got {rdlength}")
        # Packed octets stringify to the canonical dotted quad already,
        # so the __init__ re-parse (octet splitting and validation all
        # over again) is skipped on the decode path.
        record = cls.__new__(cls)
        record.address = str(ipaddress.IPv4Address(reader.read_bytes(4)))
        return record

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return self.address

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "A":
        return cls(tokens[0])


@_register(RecordType.AAAA)
class AAAA(Rdata):
    """IPv6 address record."""

    __slots__ = ("address",)

    def __init__(self, address: str) -> None:
        self.address = str(ipaddress.IPv6Address(address))

    def _key(self) -> tuple:
        return (self.address,)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_bytes(ipaddress.IPv6Address(self.address).packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise WireFormatError(f"AAAA rdata must be 16 octets, got {rdlength}")
        # Same shortcut as A.from_wire: packed bytes already stringify
        # to the canonical (compressed) form.
        record = cls.__new__(cls)
        record.address = str(ipaddress.IPv6Address(reader.read_bytes(16)))
        return record

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return self.address

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "AAAA":
        return cls(tokens[0])


class _SingleName(Rdata):
    """Common shape for rdata that is exactly one domain name."""

    __slots__ = ("target",)

    def __init__(self, target: Name) -> None:
        self.target = target

    def _key(self) -> tuple:
        return (self.target,)

    def to_wire(self, writer: WireWriter) -> None:
        # Names inside rdata are written uncompressed: RFC 3597 forbids
        # compression for new types and modern servers avoid it generally,
        # because the rdlength would depend on message layout.
        writer.write_name(self.target, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "_SingleName":
        return cls(reader.read_name())

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "_SingleName":
        from repro.dnswire.name import derelativize
        return cls(derelativize(tokens[0], origin))


@_register(RecordType.CNAME)
class CNAME(_SingleName):
    """Canonical-name alias record — the CDN indirection workhorse."""


@_register(RecordType.NS)
class NS(_SingleName):
    """Delegation to an authoritative name server."""


@_register(RecordType.PTR)
class PTR(_SingleName):
    """Reverse-mapping pointer record."""


@_register(RecordType.MX)
class MX(Rdata):
    """Mail exchange record (carried for protocol completeness)."""

    __slots__ = ("preference", "exchange")

    def __init__(self, preference: int, exchange: Name) -> None:
        self.preference = preference
        self.exchange = exchange

    def _key(self) -> tuple:
        return (self.preference, self.exchange)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_u16(self.preference)
        writer.write_name(self.exchange, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "MX":
        return cls(reader.read_u16(), reader.read_name())

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "MX":
        from repro.dnswire.name import derelativize
        return cls(int(tokens[0]), derelativize(tokens[1], origin))


@_register(RecordType.TXT)
class TXT(Rdata):
    """Text record: one or more character strings of up to 255 octets."""

    __slots__ = ("strings",)

    def __init__(self, strings: Tuple[bytes, ...]) -> None:
        for chunk in strings:
            if len(chunk) > 255:
                raise WireFormatError("TXT character-string exceeds 255 octets")
        self.strings = tuple(strings)

    @classmethod
    def from_string(cls, text: str) -> "TXT":
        """Build from a single Python string, splitting at 255 octets."""
        raw = text.encode("utf-8")
        chunks = tuple(raw[i:i + 255] for i in range(0, len(raw), 255)) or (b"",)
        return cls(chunks)

    def _key(self) -> tuple:
        return (self.strings,)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        for chunk in self.strings:
            writer.write_u8(len(chunk))
            writer.write_bytes(chunk)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TXT":
        end = reader.offset + rdlength
        strings = []
        while reader.offset < end:
            length = reader.read_u8()
            strings.append(reader.read_bytes(length))
        return cls(tuple(strings))

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return " ".join(
            '"' + chunk.decode("utf-8", "backslashreplace") + '"'
            for chunk in self.strings
        )

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "TXT":
        return cls(tuple(token.strip('"').encode("utf-8") for token in tokens))


@_register(RecordType.SOA)
class SOA(Rdata):
    """Start-of-authority record."""

    __slots__ = ("mname", "rname", "serial", "refresh", "retry", "expire", "minimum")

    def __init__(self, mname: Name, rname: Name, serial: int, refresh: int,
                 retry: int, expire: int, minimum: int) -> None:
        self.mname = mname
        self.rname = rname
        self.serial = serial
        self.refresh = refresh
        self.retry = retry
        self.expire = expire
        self.minimum = minimum

    def _key(self) -> tuple:
        return (self.mname, self.rname, self.serial, self.refresh,
                self.retry, self.expire, self.minimum)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_name(self.mname, compress=False)
        writer.write_name(self.rname, compress=False)
        for field in (self.serial, self.refresh, self.retry, self.expire, self.minimum):
            writer.write_u32(field)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SOA":
        mname = reader.read_name()
        rname = reader.read_name()
        values = [reader.read_u32() for _ in range(5)]
        return cls(mname, rname, *values)

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return (f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
                f"{self.refresh} {self.retry} {self.expire} {self.minimum}")

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "SOA":
        from repro.dnswire.name import derelativize
        return cls(
            derelativize(tokens[0], origin),
            derelativize(tokens[1], origin),
            int(tokens[2]), int(tokens[3]), int(tokens[4]),
            int(tokens[5]), int(tokens[6]),
        )


@_register(RecordType.SRV)
class SRV(Rdata):
    """Service-location record (used by the Kubernetes DNS analog)."""

    __slots__ = ("priority", "weight", "port", "target")

    def __init__(self, priority: int, weight: int, port: int, target: Name) -> None:
        self.priority = priority
        self.weight = weight
        self.port = port
        self.target = target

    def _key(self) -> tuple:
        return (self.priority, self.weight, self.port, self.target)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_u16(self.priority)
        writer.write_u16(self.weight)
        writer.write_u16(self.port)
        writer.write_name(self.target, compress=False)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SRV":
        return cls(reader.read_u16(), reader.read_u16(), reader.read_u16(),
                   reader.read_name())

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "SRV":
        from repro.dnswire.name import derelativize
        return cls(int(tokens[0]), int(tokens[1]), int(tokens[2]),
                   derelativize(tokens[3], origin))


class GenericRdata(Rdata):
    """Opaque rdata for unknown types (RFC 3597 style)."""

    __slots__ = ("data", "generic_rtype")

    rtype = RecordType.ANY  # placeholder; the real type rides alongside

    def __init__(self, data: bytes, generic_rtype: int = 0) -> None:
        self.data = data
        self.generic_rtype = generic_rtype

    def _key(self) -> tuple:
        return (self.data, self.generic_rtype)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_bytes(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "GenericRdata":
        return cls(reader.read_bytes(rdlength))

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def from_text(cls, tokens: List[str], origin: Name) -> "GenericRdata":
        if len(tokens) >= 3 and tokens[0] == "\\#":
            return cls(bytes.fromhex("".join(tokens[2:])))
        raise WireFormatError(f"cannot parse generic rdata from {tokens!r}")
