"""DNS message codec: header, question, resource records, full messages.

Every message moving between simulated hosts is serialised by
:meth:`Message.to_wire` and re-parsed with :meth:`Message.from_wire`, so
compression, EDNS rendering, and section bookkeeping are exercised on every
query the experiments run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dnswire.edns import Edns, ExtendedDnsError
from repro.dnswire.name import Name
from repro.dnswire.rdata import Rdata, parse_rdata
from repro.dnswire.types import Opcode, Rcode, RecordClass, RecordType
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError


class Flags:
    """The header flag bits (QR, AA, TC, RD, RA, AD, CD)."""

    __slots__ = ("qr", "aa", "tc", "rd", "ra", "ad", "cd")

    def __init__(self, qr: bool = False, aa: bool = False, tc: bool = False,
                 rd: bool = True, ra: bool = False, ad: bool = False,
                 cd: bool = False) -> None:
        self.qr = qr
        self.aa = aa
        self.tc = tc
        self.rd = rd
        self.ra = ra
        self.ad = ad
        self.cd = cd

    def to_bits(self) -> int:
        """Pack the flag booleans into their header bit positions."""
        bits = 0
        if self.qr:
            bits |= 0x8000
        if self.aa:
            bits |= 0x0400
        if self.tc:
            bits |= 0x0200
        if self.rd:
            bits |= 0x0100
        if self.ra:
            bits |= 0x0080
        if self.ad:
            bits |= 0x0020
        if self.cd:
            bits |= 0x0010
        return bits

    @classmethod
    def from_bits(cls, bits: int) -> "Flags":
        return cls(
            qr=bool(bits & 0x8000),
            aa=bool(bits & 0x0400),
            tc=bool(bits & 0x0200),
            rd=bool(bits & 0x0100),
            ra=bool(bits & 0x0080),
            ad=bool(bits & 0x0020),
            cd=bool(bits & 0x0010),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flags):
            return NotImplemented
        return self.to_bits() == other.to_bits()

    def __repr__(self) -> str:
        names = [flag for flag in ("qr", "aa", "tc", "rd", "ra", "ad", "cd")
                 if getattr(self, flag)]
        return f"Flags({' '.join(names) or 'none'})"


class Question:
    """A question section entry: name, type, class."""

    __slots__ = ("name", "rtype", "rclass")

    def __init__(self, name: Name, rtype: RecordType,
                 rclass: RecordClass = RecordClass.IN) -> None:
        self.name = name
        self.rtype = RecordType(rtype)
        self.rclass = RecordClass(rclass)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_name(self.name)
        writer.write_u16(int(self.rtype))
        writer.write_u16(int(self.rclass))

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        name = reader.read_name()
        rtype = reader.read_u16()
        rclass = reader.read_u16()
        return cls(name, RecordType(rtype), RecordClass(rclass))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Question):
            return NotImplemented
        return (self.name, self.rtype, self.rclass) == \
               (other.name, other.rtype, other.rclass)

    def __hash__(self) -> int:
        return hash((self.name, self.rtype, self.rclass))

    def __repr__(self) -> str:
        return f"Question({self.name} {self.rclass.name} {self.rtype.name})"


class ResourceRecord:
    """A single resource record with typed rdata."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "rdata")

    def __init__(self, name: Name, rtype: RecordType, ttl: int, rdata: Rdata,
                 rclass: RecordClass = RecordClass.IN) -> None:
        self.name = name
        self.rtype = RecordType(rtype)
        self.rclass = RecordClass(rclass)
        self.ttl = ttl
        self.rdata = rdata

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy with a different TTL (used when serving from cache)."""
        return ResourceRecord(self.name, self.rtype, ttl, self.rdata, self.rclass)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_name(self.name)
        writer.write_u16(int(self.rtype))
        writer.write_u16(int(self.rclass))
        writer.write_u32(self.ttl)
        length_at = writer.reserve_u16()
        start = len(writer)
        self.rdata.to_wire(writer)
        writer.patch_u16(length_at, len(writer) - start)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        rtype = reader.read_u16()
        rclass = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = parse_rdata(rtype, reader, rdlength)
        try:
            rtype_enum = RecordType(rtype)
        except ValueError:
            rtype_enum = RecordType.ANY  # generic passthrough keeps true type in rdata
        return cls(name, rtype_enum, ttl, rdata, RecordClass(rclass))

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return (f"{self.name.to_text()} {self.ttl} {self.rclass.name} "
                f"{self.rtype.name} {self.rdata.to_text()}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceRecord):
            return NotImplemented
        return (self.name, self.rtype, self.rclass, self.ttl, self.rdata) == \
               (other.name, other.rtype, other.rclass, other.ttl, other.rdata)

    def __hash__(self) -> int:
        return hash((self.name, self.rtype, self.rclass, self.ttl, self.rdata))

    def __repr__(self) -> str:
        return f"RR({self.to_text()})"


class Message:
    """A complete DNS message with four sections and optional EDNS."""

    def __init__(self, msg_id: int = 0, flags: Optional[Flags] = None,
                 opcode: Opcode = Opcode.QUERY, rcode: Rcode = Rcode.NOERROR) -> None:
        self.msg_id = msg_id
        self.flags = flags if flags is not None else Flags()
        self.opcode = opcode
        self.rcode = rcode
        self.questions: List[Question] = []
        self.answers: List[ResourceRecord] = []
        self.authorities: List[ResourceRecord] = []
        self.additionals: List[ResourceRecord] = []
        self.edns: Optional[Edns] = None

    # -- convenience ------------------------------------------------------------

    @property
    def question(self) -> Question:
        """The sole question; raises if the message has none."""
        if not self.questions:
            raise WireFormatError("message has no question section entry")
        return self.questions[0]

    def answer_addresses(self) -> List[str]:
        """All A/AAAA addresses in the answer section, in order."""
        addresses = []
        for record in self.answers:
            if record.rtype in (RecordType.A, RecordType.AAAA):
                addresses.append(record.rdata.address)  # type: ignore[attr-defined]
        return addresses

    def answer_rrs(self, rtype: RecordType) -> List[ResourceRecord]:
        """Answer-section records of the given type, in order."""
        return [record for record in self.answers if record.rtype == rtype]

    # -- codec --------------------------------------------------------------------

    def to_wire(self) -> bytes:
        """Serialise the full message (with name compression and OPT)."""
        writer = WireWriter()
        writer.write_u16(self.msg_id)
        bits = self.flags.to_bits()
        bits |= (int(self.opcode) & 0xF) << 11
        bits |= int(self.rcode) & 0xF
        writer.write_u16(bits)
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authorities))
        additional_count = len(self.additionals) + (1 if self.edns else 0)
        writer.write_u16(additional_count)
        for question in self.questions:
            question.to_wire(writer)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                record.to_wire(writer)
        if self.edns:
            self._write_opt(writer)
        return writer.getvalue()

    def _write_opt(self, writer: WireWriter) -> None:
        assert self.edns is not None
        writer.write_u8(0)  # root owner name
        writer.write_u16(int(RecordType.OPT))
        writer.write_u16(self.edns.udp_payload)  # CLASS carries payload size
        extended_rcode = (int(self.rcode) >> 4) & 0xFF
        ttl = (extended_rcode << 24) | (self.edns.version << 16)
        if self.edns.dnssec_ok:
            ttl |= 0x8000
        writer.write_u32(ttl)
        options = self.edns.options_to_wire()
        writer.write_u16(len(options))
        writer.write_bytes(options)

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        """Parse a complete message; raises WireFormatError on any defect.

        Field values outside the known registries (opcode, class, ...)
        are protocol-level garbage for this implementation and surface as
        WireFormatError, so servers answer FORMERR instead of crashing.
        """
        try:
            return cls._from_wire(data)
        except ValueError as error:
            raise WireFormatError(f"unsupported field value: {error}") \
                from error

    @classmethod
    def _from_wire(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        msg = cls()
        msg.msg_id = reader.read_u16()
        bits = reader.read_u16()
        msg.flags = Flags.from_bits(bits)
        msg.opcode = Opcode((bits >> 11) & 0xF)
        rcode_low = bits & 0xF
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        for _ in range(qdcount):
            msg.questions.append(Question.from_wire(reader))
        for _ in range(ancount):
            msg.answers.append(ResourceRecord.from_wire(reader))
        for _ in range(nscount):
            msg.authorities.append(ResourceRecord.from_wire(reader))
        rcode_high = 0
        for _ in range(arcount):
            mark = reader.offset
            name = reader.read_name()
            rtype = reader.read_u16()
            if rtype == int(RecordType.OPT):
                if not name.is_root:
                    raise WireFormatError("OPT owner name must be root")
                payload = reader.read_u16()
                ttl = reader.read_u32()
                rdlength = reader.read_u16()
                options = Edns.options_from_wire(reader.read_bytes(rdlength))
                msg.edns = Edns(
                    udp_payload=payload,
                    version=(ttl >> 16) & 0xFF,
                    dnssec_ok=bool(ttl & 0x8000),
                    options=options,
                )
                rcode_high = (ttl >> 24) & 0xFF
            else:
                reader.seek(mark)
                msg.additionals.append(ResourceRecord.from_wire(reader))
        msg.rcode = Rcode((rcode_high << 4) | rcode_low)
        return msg

    def __repr__(self) -> str:
        return (f"Message(id={self.msg_id}, {self.opcode.name}, "
                f"{self.rcode.name}, {self.flags!r}, "
                f"q={len(self.questions)} an={len(self.answers)} "
                f"ns={len(self.authorities)} ar={len(self.additionals)})")

    def to_text(self) -> str:
        """dig-style presentation of the whole message."""
        flag_names = [name for name in ("qr", "aa", "tc", "rd", "ra",
                                        "ad", "cd")
                      if getattr(self.flags, name)]
        lines = [
            f";; ->>HEADER<<- opcode: {self.opcode.name}, "
            f"status: {self.rcode.name}, id: {self.msg_id}",
            f";; flags: {' '.join(flag_names)}; "
            f"QUERY: {len(self.questions)}, ANSWER: {len(self.answers)}, "
            f"AUTHORITY: {len(self.authorities)}, "
            f"ADDITIONAL: {len(self.additionals) + (1 if self.edns else 0)}",
        ]
        if self.edns is not None:
            lines.append(";; OPT PSEUDOSECTION:")
            lines.append(f"; EDNS: version: {self.edns.version}, "
                         f"udp: {self.edns.udp_payload}"
                         + (", flags: do" if self.edns.dnssec_ok else ""))
            ecs = self.edns.client_subnet
            if ecs is not None:
                lines.append(f"; CLIENT-SUBNET: {ecs.address}/"
                             f"{ecs.source_prefix}/{ecs.scope_prefix}")
        if self.questions:
            lines.append(";; QUESTION SECTION:")
            lines.extend(f";{question.name.to_text()}\t\t"
                         f"{question.rclass.name}\t{question.rtype.name}"
                         for question in self.questions)
        for title, section in (("ANSWER", self.answers),
                               ("AUTHORITY", self.authorities),
                               ("ADDITIONAL", self.additionals)):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)


def make_query(name: Name, rtype: RecordType = RecordType.A, msg_id: int = 0,
               recursion_desired: bool = True,
               edns: Optional[Edns] = None) -> Message:
    """Build a standard query message for ``name``/``rtype``."""
    msg = Message(msg_id=msg_id, flags=Flags(rd=recursion_desired))
    msg.questions.append(Question(name, rtype))
    msg.edns = edns
    return msg


def make_response(query: Message, rcode: Rcode = Rcode.NOERROR,
                  authoritative: bool = False,
                  recursion_available: bool = False,
                  answers: Sequence[ResourceRecord] = (),
                  authorities: Sequence[ResourceRecord] = (),
                  additionals: Sequence[ResourceRecord] = ()) -> Message:
    """Build a response echoing ``query``'s id and question."""
    msg = Message(msg_id=query.msg_id, rcode=rcode)
    msg.flags = Flags(qr=True, aa=authoritative, rd=query.flags.rd,
                      ra=recursion_available)
    msg.opcode = query.opcode
    msg.questions = list(query.questions)
    msg.answers = list(answers)
    msg.authorities = list(authorities)
    msg.additionals = list(additionals)
    if query.edns is not None:
        # Mirror the client's EDNS; servers adjust options (e.g. ECS scope).
        msg.edns = Edns(options=list(query.edns.options))
    return msg


def mark_stale(response: Message, extra_text: str = "") -> Message:
    """Stamp ``response`` as a stale answer (RFC 8767 via RFC 8914).

    Adds EDNS state when the response has none, then appends the
    "Stale Answer" extended-error option so clients can tell an
    expired-TTL answer from a fresh one on the wire.
    """
    if response.edns is None:
        response.edns = Edns()
    if response.edns.extended_error is None:
        response.edns.options.append(ExtendedDnsError.stale_answer(extra_text))
    return response
