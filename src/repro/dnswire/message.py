"""DNS message codec: header, question, resource records, full messages.

Every message moving between simulated hosts is serialised by
:meth:`Message.to_wire` and re-parsed with :meth:`Message.from_wire`, so
compression, EDNS rendering, and section bookkeeping are exercised on every
query the experiments run.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnswire.edns import Edns, ExtendedDnsError
from repro.dnswire.name import Name
from repro.dnswire.rdata import Rdata, parse_rdata
from repro.dnswire.types import Opcode, Rcode, RecordClass, RecordType
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError

#: Value→member maps for the registries decoded on every message parse.
#: ``Enum.__call__`` is two Python calls per coercion; a dict hit is
#: none.  Unknown values fall back to the enum call so the ValueError
#: (→ WireFormatError) behaviour is unchanged.
_RECORD_TYPES: Dict[int, RecordType] = {int(m): m for m in RecordType}
_RECORD_CLASSES: Dict[int, RecordClass] = {int(m): m for m in RecordClass}
_OPCODES: Dict[int, Opcode] = {int(m): m for m in Opcode}
_RCODES: Dict[int, Rcode] = {int(m): m for m in Rcode}


class Flags:
    """The header flag bits (QR, AA, TC, RD, RA, AD, CD)."""

    __slots__ = ("qr", "aa", "tc", "rd", "ra", "ad", "cd")

    def __init__(self, qr: bool = False, aa: bool = False, tc: bool = False,
                 rd: bool = True, ra: bool = False, ad: bool = False,
                 cd: bool = False) -> None:
        self.qr = qr
        self.aa = aa
        self.tc = tc
        self.rd = rd
        self.ra = ra
        self.ad = ad
        self.cd = cd

    def to_bits(self) -> int:
        """Pack the flag booleans into their header bit positions."""
        bits = 0
        if self.qr:
            bits |= 0x8000
        if self.aa:
            bits |= 0x0400
        if self.tc:
            bits |= 0x0200
        if self.rd:
            bits |= 0x0100
        if self.ra:
            bits |= 0x0080
        if self.ad:
            bits |= 0x0020
        if self.cd:
            bits |= 0x0010
        return bits

    @classmethod
    def from_bits(cls, bits: int) -> "Flags":
        return cls(
            qr=bool(bits & 0x8000),
            aa=bool(bits & 0x0400),
            tc=bool(bits & 0x0200),
            rd=bool(bits & 0x0100),
            ra=bool(bits & 0x0080),
            ad=bool(bits & 0x0020),
            cd=bool(bits & 0x0010),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flags):
            return NotImplemented
        return self.to_bits() == other.to_bits()

    def __repr__(self) -> str:
        names = [flag for flag in ("qr", "aa", "tc", "rd", "ra", "ad", "cd")
                 if getattr(self, flag)]
        return f"Flags({' '.join(names) or 'none'})"


class Question:
    """A question section entry: name, type, class."""

    __slots__ = ("name", "rtype", "rclass")

    def __init__(self, name: Name, rtype: RecordType,
                 rclass: RecordClass = RecordClass.IN) -> None:
        self.name = name
        self.rtype = rtype if type(rtype) is RecordType else RecordType(rtype)
        self.rclass = (rclass if type(rclass) is RecordClass
                       else RecordClass(rclass))

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_name(self.name)
        writer.write_u16(int(self.rtype))
        writer.write_u16(int(self.rclass))

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        name = reader.read_name()
        rtype = reader.read_u16()
        rclass = reader.read_u16()
        rtype_enum = _RECORD_TYPES.get(rtype)
        if rtype_enum is None:
            rtype_enum = RecordType(rtype)
        rclass_enum = _RECORD_CLASSES.get(rclass)
        if rclass_enum is None:
            rclass_enum = RecordClass(rclass)
        question = cls.__new__(cls)
        question.name = name
        question.rtype = rtype_enum
        question.rclass = rclass_enum
        return question

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Question):
            return NotImplemented
        return (self.name, self.rtype, self.rclass) == \
               (other.name, other.rtype, other.rclass)

    def __hash__(self) -> int:
        return hash((self.name, self.rtype, self.rclass))

    def __repr__(self) -> str:
        return f"Question({self.name} {self.rclass.name} {self.rtype.name})"


class ResourceRecord:
    """A single resource record with typed rdata."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "rdata")

    def __init__(self, name: Name, rtype: RecordType, ttl: int, rdata: Rdata,
                 rclass: RecordClass = RecordClass.IN) -> None:
        self.name = name
        self.rtype = rtype if type(rtype) is RecordType else RecordType(rtype)
        self.rclass = (rclass if type(rclass) is RecordClass
                       else RecordClass(rclass))
        self.ttl = ttl
        self.rdata = rdata

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy with a different TTL (used when serving from cache)."""
        return ResourceRecord(self.name, self.rtype, ttl, self.rdata, self.rclass)

    def to_wire(self, writer: WireWriter) -> None:
        """Serialise to wire format."""
        writer.write_name(self.name)
        writer.write_u16(int(self.rtype))
        writer.write_u16(int(self.rclass))
        writer.write_u32(self.ttl)
        length_at = writer.reserve_u16()
        start = len(writer)
        self.rdata.to_wire(writer)
        writer.patch_u16(length_at, len(writer) - start)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        rtype = reader.read_u16()
        rclass = reader.read_u16()
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = parse_rdata(rtype, reader, rdlength)
        rtype_enum = _RECORD_TYPES.get(rtype)
        if rtype_enum is None:
            rtype_enum = RecordType.ANY  # generic passthrough keeps true type in rdata
        rclass_enum = _RECORD_CLASSES.get(rclass)
        if rclass_enum is None:
            rclass_enum = RecordClass(rclass)
        record = cls.__new__(cls)
        record.name = name
        record.rtype = rtype_enum
        record.rclass = rclass_enum
        record.ttl = ttl
        record.rdata = rdata
        return record

    def to_text(self) -> str:
        """Render in presentation (zone-file) format."""
        return (f"{self.name.to_text()} {self.ttl} {self.rclass.name} "
                f"{self.rtype.name} {self.rdata.to_text()}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceRecord):
            return NotImplemented
        return (self.name, self.rtype, self.rclass, self.ttl, self.rdata) == \
               (other.name, other.rtype, other.rclass, other.ttl, other.rdata)

    def __hash__(self) -> int:
        return hash((self.name, self.rtype, self.rclass, self.ttl, self.rdata))

    def __repr__(self) -> str:
        return f"RR({self.to_text()})"


class Message:
    """A complete DNS message with four sections and optional EDNS."""

    def __init__(self, msg_id: int = 0, flags: Optional[Flags] = None,
                 opcode: Opcode = Opcode.QUERY, rcode: Rcode = Rcode.NOERROR) -> None:
        self.msg_id = msg_id
        self.flags = flags if flags is not None else Flags()
        self.opcode = opcode
        self.rcode = rcode
        self.questions: List[Question] = []
        self.answers: List[ResourceRecord] = []
        self.authorities: List[ResourceRecord] = []
        self.additionals: List[ResourceRecord] = []
        self.edns: Optional[Edns] = None

    # -- convenience ------------------------------------------------------------

    @property
    def question(self) -> Question:
        """The sole question; raises if the message has none."""
        if not self.questions:
            raise WireFormatError("message has no question section entry")
        return self.questions[0]

    def answer_addresses(self) -> List[str]:
        """All A/AAAA addresses in the answer section, in order."""
        addresses = []
        for record in self.answers:
            if record.rtype in (RecordType.A, RecordType.AAAA):
                addresses.append(record.rdata.address)  # type: ignore[attr-defined]
        return addresses

    def answer_rrs(self, rtype: RecordType) -> List[ResourceRecord]:
        """Answer-section records of the given type, in order."""
        return [record for record in self.answers if record.rtype == rtype]

    # -- codec --------------------------------------------------------------------

    def to_wire(self) -> bytes:
        """Serialise the full message (with name compression and OPT)."""
        writer = WireWriter()
        writer.write_u16(self.msg_id)
        bits = self.flags.to_bits()
        bits |= (int(self.opcode) & 0xF) << 11
        bits |= int(self.rcode) & 0xF
        writer.write_u16(bits)
        writer.write_u16(len(self.questions))
        writer.write_u16(len(self.answers))
        writer.write_u16(len(self.authorities))
        additional_count = len(self.additionals) + (1 if self.edns else 0)
        writer.write_u16(additional_count)
        for question in self.questions:
            question.to_wire(writer)
        for section in (self.answers, self.authorities, self.additionals):
            for record in section:
                record.to_wire(writer)
        if self.edns:
            self._write_opt(writer)
        return writer.getvalue()

    def _write_opt(self, writer: WireWriter) -> None:
        assert self.edns is not None
        writer.write_u8(0)  # root owner name
        writer.write_u16(int(RecordType.OPT))
        writer.write_u16(self.edns.udp_payload)  # CLASS carries payload size
        extended_rcode = (int(self.rcode) >> 4) & 0xFF
        ttl = (extended_rcode << 24) | (self.edns.version << 16)
        if self.edns.dnssec_ok:
            ttl |= 0x8000
        writer.write_u32(ttl)
        options = self.edns.options_to_wire()
        writer.write_u16(len(options))
        writer.write_bytes(options)

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        """Parse a complete message; raises WireFormatError on any defect.

        Field values outside the known registries (opcode, class, ...)
        are protocol-level garbage for this implementation and surface as
        WireFormatError, so servers answer FORMERR instead of crashing.

        The returned object is a :class:`LazyMessage` view: header,
        question, and EDNS state are decoded here (along with a
        structural validation walk of every record, so malformed wire
        still fails *now*, not on first section access), while the
        answer/authority/additional record objects materialise on first
        access.
        """
        try:
            if cls is Message:
                return LazyMessage(data)
            return cls._from_wire(data)
        except ValueError as error:
            raise WireFormatError(f"unsupported field value: {error}") \
                from error

    @classmethod
    def _from_wire(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        msg = cls()
        msg.msg_id = reader.read_u16()
        bits = reader.read_u16()
        msg.flags = Flags.from_bits(bits)
        msg.opcode = Opcode((bits >> 11) & 0xF)
        rcode_low = bits & 0xF
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        for _ in range(qdcount):
            msg.questions.append(Question.from_wire(reader))
        for _ in range(ancount):
            msg.answers.append(ResourceRecord.from_wire(reader))
        for _ in range(nscount):
            msg.authorities.append(ResourceRecord.from_wire(reader))
        rcode_high = 0
        for _ in range(arcount):
            mark = reader.offset
            name = reader.read_name()
            rtype = reader.read_u16()
            if rtype == int(RecordType.OPT):
                if not name.is_root:
                    raise WireFormatError("OPT owner name must be root")
                payload = reader.read_u16()
                ttl = reader.read_u32()
                rdlength = reader.read_u16()
                options = Edns.options_from_wire(reader.read_bytes(rdlength))
                msg.edns = Edns(
                    udp_payload=payload,
                    version=(ttl >> 16) & 0xFF,
                    dnssec_ok=bool(ttl & 0x8000),
                    options=options,
                )
                rcode_high = (ttl >> 24) & 0xFF
            else:
                reader.seek(mark)
                msg.additionals.append(ResourceRecord.from_wire(reader))
        msg.rcode = Rcode((rcode_high << 4) | rcode_low)
        return msg

    def __repr__(self) -> str:
        return (f"Message(id={self.msg_id}, {self.opcode.name}, "
                f"{self.rcode.name}, {self.flags!r}, "
                f"q={len(self.questions)} an={len(self.answers)} "
                f"ns={len(self.authorities)} ar={len(self.additionals)})")

    def to_text(self) -> str:
        """dig-style presentation of the whole message."""
        flag_names = [name for name in ("qr", "aa", "tc", "rd", "ra",
                                        "ad", "cd")
                      if getattr(self.flags, name)]
        lines = [
            f";; ->>HEADER<<- opcode: {self.opcode.name}, "
            f"status: {self.rcode.name}, id: {self.msg_id}",
            f";; flags: {' '.join(flag_names)}; "
            f"QUERY: {len(self.questions)}, ANSWER: {len(self.answers)}, "
            f"AUTHORITY: {len(self.authorities)}, "
            f"ADDITIONAL: {len(self.additionals) + (1 if self.edns else 0)}",
        ]
        if self.edns is not None:
            lines.append(";; OPT PSEUDOSECTION:")
            lines.append(f"; EDNS: version: {self.edns.version}, "
                         f"udp: {self.edns.udp_payload}"
                         + (", flags: do" if self.edns.dnssec_ok else ""))
            ecs = self.edns.client_subnet
            if ecs is not None:
                lines.append(f"; CLIENT-SUBNET: {ecs.address}/"
                             f"{ecs.source_prefix}/{ecs.scope_prefix}")
        if self.questions:
            lines.append(";; QUESTION SECTION:")
            lines.extend(f";{question.name.to_text()}\t\t"
                         f"{question.rclass.name}\t{question.rtype.name}"
                         for question in self.questions)
        for title, section in (("ANSWER", self.answers),
                               ("AUTHORITY", self.authorities),
                               ("ADDITIONAL", self.additionals)):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)


def _scan_rr_sections(reader: WireReader, ancount: int, nscount: int,
                      arcount: int) -> Tuple[Optional[Edns], int]:
    """Structurally walk the RR sections without building record objects.

    Validates what the eager parser validated — truncation, label types,
    rdlength bounds, the root-owner rule for OPT — and fully decodes any
    OPT pseudo-record (EDNS state is header-adjacent: the extended rcode
    lives in its TTL field, so a lazy view still needs it eagerly).
    Returns ``(edns, rcode_high)``; later OPTs win, like the eager loop.

    Deliberately deferred to first section access: compression-pointer
    targets and rdata *content* (those need real decoding).  All wire in
    the simulation comes from our own writer, so deferral only moves
    where an error would surface for hand-corrupted test input.
    """
    edns: Optional[Edns] = None
    rcode_high = 0
    opt_type = int(RecordType.OPT)
    for count, in_additional in ((ancount, False), (nscount, False),
                                 (arcount, True)):
        for _ in range(count):
            owner_is_root = reader.skip_name()
            rtype = reader.read_u16()
            if in_additional and rtype == opt_type:
                if not owner_is_root:
                    raise WireFormatError("OPT owner name must be root")
                payload = reader.read_u16()
                ttl = reader.read_u32()
                rdlength = reader.read_u16()
                options = Edns.options_from_wire(reader.read_bytes(rdlength))
                edns = Edns(
                    udp_payload=payload,
                    version=(ttl >> 16) & 0xFF,
                    dnssec_ok=bool(ttl & 0x8000),
                    options=options,
                )
                rcode_high = (ttl >> 24) & 0xFF
            else:
                reader.read_bytes(6)  # class + ttl
                rdlength = reader.read_u16()
                reader.read_bytes(rdlength)
    return edns, rcode_high


class LazyMessage(Message):
    """A parse-on-demand :class:`Message` view over retained wire bytes.

    ``Message.from_wire`` returns these.  The header, question section,
    and EDNS state are decoded eagerly (plus a structural validation walk
    over every record — see :func:`_scan_rr_sections` — so defective wire
    is still rejected at parse time); the three RR sections materialise
    on first access.  A server that only looks at the question never pays
    for record or rdata construction.

    While the view is *pristine* — no mutable field has been touched —
    :meth:`to_wire` returns the original bytes without re-encoding.
    Reads count as touches for every mutable field (``flags`` is a
    mutable object, section lists can be appended to), so the fast path
    can never serve stale bytes; ``msg_id``/``opcode``/``rcode`` hold
    immutable values and only their *assignment* invalidates.
    """

    def __init__(self, data: bytes) -> None:
        # Message.__init__ is deliberately not called: every attribute it
        # would set is shadowed by the properties below.
        reader = WireReader(data)
        self._wire = data
        self._pristine = True
        self._msg_id = reader.read_u16()
        bits = reader.read_u16()
        self._flags = Flags.from_bits(bits)
        opcode = _OPCODES.get((bits >> 11) & 0xF)
        self._opcode = (opcode if opcode is not None
                        else Opcode((bits >> 11) & 0xF))
        qdcount = reader.read_u16()
        self._ancount = reader.read_u16()
        self._nscount = reader.read_u16()
        self._arcount = reader.read_u16()
        self._questions = [Question.from_wire(reader)
                           for _ in range(qdcount)]
        self._sections_at = reader.offset
        edns, rcode_high = _scan_rr_sections(
            reader, self._ancount, self._nscount, self._arcount)
        self._edns = edns
        rcode_value = (rcode_high << 4) | (bits & 0xF)
        rcode = _RCODES.get(rcode_value)
        self._rcode = rcode if rcode is not None else Rcode(rcode_value)
        self._answers: Optional[List[ResourceRecord]] = None
        self._authorities: Optional[List[ResourceRecord]] = None
        self._additionals: Optional[List[ResourceRecord]] = None

    def _explode(self) -> None:
        """Materialise the three RR sections from the retained wire."""
        if self._answers is not None:
            return
        reader = WireReader(self._wire, self._sections_at)
        try:
            answers = [ResourceRecord.from_wire(reader)
                       for _ in range(self._ancount)]
            authorities = [ResourceRecord.from_wire(reader)
                           for _ in range(self._nscount)]
            additionals: List[ResourceRecord] = []
            opt_type = int(RecordType.OPT)
            for _ in range(self._arcount):
                mark = reader.offset
                reader.skip_name()
                if reader.read_u16() == opt_type:
                    # Already decoded into self._edns by the eager scan.
                    reader.read_bytes(6)
                    reader.read_bytes(reader.read_u16())
                else:
                    reader.seek(mark)
                    additionals.append(ResourceRecord.from_wire(reader))
        except ValueError as error:
            raise WireFormatError(f"unsupported field value: {error}") \
                from error
        self._answers = answers
        self._authorities = authorities
        self._additionals = additionals

    def to_wire(self) -> bytes:
        """The retained wire while pristine; re-encode after any touch."""
        if self._pristine:
            return self._wire
        return super().to_wire()

    # -- field properties (shadow Message's plain attributes) -------------------

    @property
    def msg_id(self) -> int:
        return self._msg_id

    @msg_id.setter
    def msg_id(self, value: int) -> None:
        self._pristine = False
        self._msg_id = value

    @property
    def opcode(self) -> Opcode:
        return self._opcode

    @opcode.setter
    def opcode(self, value: Opcode) -> None:
        self._pristine = False
        self._opcode = value

    @property
    def rcode(self) -> Rcode:
        return self._rcode

    @rcode.setter
    def rcode(self, value: Rcode) -> None:
        self._pristine = False
        self._rcode = value

    @property
    def flags(self) -> Flags:
        self._pristine = False  # Flags is mutable; a read may precede a write
        return self._flags

    @flags.setter
    def flags(self, value: Flags) -> None:
        self._pristine = False
        self._flags = value

    @property
    def edns(self) -> Optional[Edns]:
        self._pristine = False
        return self._edns

    @edns.setter
    def edns(self, value: Optional[Edns]) -> None:
        self._pristine = False
        self._edns = value

    @property
    def questions(self) -> List[Question]:
        self._pristine = False
        return self._questions

    @questions.setter
    def questions(self, value: List[Question]) -> None:
        self._pristine = False
        self._questions = value

    @property
    def answers(self) -> List[ResourceRecord]:
        self._explode()
        self._pristine = False
        assert self._answers is not None
        return self._answers

    @answers.setter
    def answers(self, value: List[ResourceRecord]) -> None:
        self._explode()
        self._pristine = False
        self._answers = value

    @property
    def authorities(self) -> List[ResourceRecord]:
        self._explode()
        self._pristine = False
        assert self._authorities is not None
        return self._authorities

    @authorities.setter
    def authorities(self, value: List[ResourceRecord]) -> None:
        self._explode()
        self._pristine = False
        self._authorities = value

    @property
    def additionals(self) -> List[ResourceRecord]:
        self._explode()
        self._pristine = False
        assert self._additionals is not None
        return self._additionals

    @additionals.setter
    def additionals(self, value: List[ResourceRecord]) -> None:
        self._explode()
        self._pristine = False
        self._additionals = value


#: Content-keyed memo behind :func:`cached_wire`.  Values are the encoded
#: message *minus its first two octets* (the id), so repeated queries that
#: differ only by id share one entry.  Bounded; cleared wholesale when
#: full — the memo is pure, so its contents never affect output bytes.
_WIRE_MEMO: Dict[Tuple[object, ...], bytes] = {}
_WIRE_MEMO_MAX = 4096


def clear_wire_memo() -> None:
    """Drop every memoised encode (for tests and benchmarks)."""
    _WIRE_MEMO.clear()


def cached_wire(msg: Message) -> bytes:
    """Encode ``msg`` through the shared memo; byte-identical to ``to_wire``.

    The key covers every field the encoder reads — flag bits, opcode,
    rcode (both the header nibble and the OPT extended bits), all four
    sections, and the EDNS snapshot — *except* the message id, which is
    spliced onto the cached tail (the id occupies exactly octets 0-1 and
    never participates in compression offsets).  Hot senders re-encoding
    the same question with fresh ids — stub retries, forwarder cache
    hits — hit one entry.

    Names, records, and options hash on value, so equal content shares
    an entry regardless of object identity; anything unhashable (a
    foreign rdata type) falls back to a direct encode.  Callers must
    treat records as immutable once sent — the dnswire API only mutates
    via copies (``with_ttl``/``with_scope``), and
    ``docs/PERFORMANCE.md`` records the invariant.
    """
    if isinstance(msg, LazyMessage) and msg._pristine:
        return msg._wire  # parsed and untouched: the original bytes stand
    edns = msg.edns
    key: Tuple[object, ...] = (
        msg.flags.to_bits(), int(msg.opcode), int(msg.rcode),
        tuple(msg.questions), tuple(msg.answers), tuple(msg.authorities),
        tuple(msg.additionals),
        edns.cache_key() if edns is not None else None,
    )
    try:
        tail = _WIRE_MEMO.get(key)
    except TypeError:  # unhashable content — just encode
        return msg.to_wire()
    if tail is None:
        tail = msg.to_wire()[2:]
        if len(_WIRE_MEMO) >= _WIRE_MEMO_MAX:
            # repro: allow[RACE001] pure content-keyed memo: a key fully determines its bytes, so hit/miss/eviction never changes any output
            _WIRE_MEMO.clear()
        # repro: allow[RACE001] same memo — insertion is value-deterministic and per-process (workers fork with their own copy)
        _WIRE_MEMO[key] = tail
    return struct.pack("!H", msg.msg_id) + tail


def make_query(name: Name, rtype: RecordType = RecordType.A, msg_id: int = 0,
               recursion_desired: bool = True,
               edns: Optional[Edns] = None) -> Message:
    """Build a standard query message for ``name``/``rtype``."""
    msg = Message(msg_id=msg_id, flags=Flags(rd=recursion_desired))
    msg.questions.append(Question(name, rtype))
    msg.edns = edns
    return msg


def make_response(query: Message, rcode: Rcode = Rcode.NOERROR,
                  authoritative: bool = False,
                  recursion_available: bool = False,
                  answers: Sequence[ResourceRecord] = (),
                  authorities: Sequence[ResourceRecord] = (),
                  additionals: Sequence[ResourceRecord] = ()) -> Message:
    """Build a response echoing ``query``'s id and question."""
    msg = Message(msg_id=query.msg_id, rcode=rcode)
    msg.flags = Flags(qr=True, aa=authoritative, rd=query.flags.rd,
                      ra=recursion_available)
    msg.opcode = query.opcode
    msg.questions = list(query.questions)
    msg.answers = list(answers)
    msg.authorities = list(authorities)
    msg.additionals = list(additionals)
    if query.edns is not None:
        # Mirror the client's EDNS; servers adjust options (e.g. ECS scope).
        msg.edns = Edns(options=list(query.edns.options))
    return msg


def mark_stale(response: Message, extra_text: str = "") -> Message:
    """Stamp ``response`` as a stale answer (RFC 8767 via RFC 8914).

    Adds EDNS state when the response has none, then appends the
    "Stale Answer" extended-error option so clients can tell an
    expired-TTL answer from a fresh one on the wire.
    """
    if response.edns is None:
        response.edns = Edns()
    if response.edns.extended_error is None:
        response.edns.options.append(ExtendedDnsError.stale_answer(extra_text))
    return response
