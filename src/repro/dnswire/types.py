"""Registries of DNS record types, classes, opcodes, and response codes.

Only the values exercised by the reproduction are enumerated; unknown values
survive round-trips through the codec as plain integers (see
:class:`repro.dnswire.rdata.GenericRdata`).
"""

from __future__ import annotations

import enum


class RecordType(enum.IntEnum):
    """DNS RR TYPE values (RFC 1035 §3.2.2 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    IXFR = 251
    AXFR = 252
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RecordType":
        """Parse a mnemonic like ``"A"`` or a ``TYPE123`` generic form."""
        token = text.strip().upper()
        if token.startswith("TYPE") and token[4:].isdigit():
            return cls(int(token[4:]))
        try:
            return cls[token]
        except KeyError:
            raise ValueError(f"unknown record type {text!r}") from None


class RecordClass(enum.IntEnum):
    """DNS CLASS values (RFC 1035 §3.2.4)."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RecordClass":
        token = text.strip().upper()
        try:
            return cls[token]
        except KeyError:
            raise ValueError(f"unknown record class {text!r}") from None


class Opcode(enum.IntEnum):
    """DNS OPCODE values."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """DNS RCODE values (RFC 1035 §4.1.1, RFC 2136, RFC 6891)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10
    BADVERS = 16


#: Conventional maximum payload for plain (non-EDNS) UDP DNS.
CLASSIC_UDP_PAYLOAD = 512

#: Default advertised EDNS0 UDP payload size used by this library.
DEFAULT_EDNS_PAYLOAD = 1232
