"""Zone data with authoritative lookup semantics and a master-file parser.

A :class:`Zone` holds the records of one authoritative zone and implements
the lookup algorithm an authoritative server needs: exact match, CNAME
interposition, wildcard synthesis (RFC 1034 §4.3.2), delegation detection,
and the NXDOMAIN / NODATA distinction.

The master-file parser covers the subset of RFC 1035 §5 the reproduction
uses: ``$ORIGIN``, ``$TTL``, relative and absolute names, ``@``, repeated
owner names, parenthesised record data (for SOA), and ``;`` comments.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dnswire.name import Name, derelativize
from repro.dnswire.message import ResourceRecord
from repro.dnswire.rdata import CNAME, rdata_class_for
from repro.dnswire.types import RecordClass, RecordType
from repro.errors import ZoneError

DEFAULT_TTL = 300

#: Key for the per-node RRset map.
_RRsetKey = RecordType


class LookupStatus(enum.Enum):
    """Outcome categories of an authoritative lookup."""

    SUCCESS = "success"          # answer records present
    CNAME = "cname"              # alias found; chase the target
    DELEGATION = "delegation"    # name is below a zone cut; referral
    NXDOMAIN = "nxdomain"        # name does not exist in the zone
    NODATA = "nodata"            # name exists; no records of this type


class LookupResult:
    """The outcome of :meth:`Zone.lookup`."""

    __slots__ = ("status", "records", "authority", "additional", "cname_target")

    def __init__(self, status: LookupStatus,
                 records: Optional[List[ResourceRecord]] = None,
                 authority: Optional[List[ResourceRecord]] = None,
                 additional: Optional[List[ResourceRecord]] = None,
                 cname_target: Optional[Name] = None) -> None:
        self.status = status
        self.records = records or []
        self.authority = authority or []
        self.additional = additional or []
        self.cname_target = cname_target

    def __repr__(self) -> str:
        return (f"LookupResult({self.status.value}, "
                f"{len(self.records)} answers, {len(self.authority)} authority)")


class Zone:
    """One authoritative zone: an origin plus a node/RRset store."""

    def __init__(self, origin: Name) -> None:
        self.origin = origin
        # name -> rtype -> list of records
        self._nodes: Dict[Name, Dict[RecordType, List[ResourceRecord]]] = {}

    # -- building ------------------------------------------------------------

    def add(self, record: ResourceRecord) -> None:
        """Add one record, enforcing in-zone ownership and CNAME exclusivity."""
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{record.name} is out of zone {self.origin}")
        node = self._nodes.setdefault(record.name, {})
        if record.rtype == RecordType.CNAME and any(
                rtype != RecordType.CNAME for rtype in node):
            raise ZoneError(f"CNAME at {record.name} conflicts with other data")
        if record.rtype != RecordType.CNAME and RecordType.CNAME in node:
            raise ZoneError(f"{record.name} already holds a CNAME")
        node.setdefault(record.rtype, []).append(record)

    def add_simple(self, owner: str, rtype: RecordType, rdata, ttl: int = DEFAULT_TTL) -> None:
        """Convenience: add from a textual owner relative to the origin."""
        name = derelativize(owner, self.origin)
        self.add(ResourceRecord(name, rtype, ttl, rdata))

    def remove(self, record: ResourceRecord) -> bool:
        """Remove one record (matched by owner/type/ttl/rdata).

        Returns True if a record was removed.  Empty nodes are pruned so
        NXDOMAIN semantics stay correct after deletions.
        """
        node = self._nodes.get(record.name)
        if node is None:
            return False
        rrset = node.get(record.rtype)
        if not rrset:
            return False
        for index, existing in enumerate(rrset):
            if existing == record:
                del rrset[index]
                if not rrset:
                    del node[record.rtype]
                if not node:
                    del self._nodes[record.name]
                return True
        return False

    def records(self) -> Iterable[ResourceRecord]:
        """All records in the zone, in arbitrary order."""
        for node in self._nodes.values():
            for rrset in node.values():
                yield from rrset

    def names(self) -> Iterable[Name]:
        """All owner names with data in this zone."""
        return self._nodes.keys()

    @property
    def soa(self) -> Optional[ResourceRecord]:
        node = self._nodes.get(self.origin, {})
        rrset = node.get(RecordType.SOA, [])
        return rrset[0] if rrset else None

    # -- lookup -----------------------------------------------------------------

    def lookup(self, name: Name, rtype: RecordType) -> LookupResult:
        """Authoritative lookup of ``name``/``rtype`` within this zone."""
        if not name.is_subdomain_of(self.origin):
            return LookupResult(LookupStatus.NXDOMAIN, authority=self._soa_authority())

        delegation = self._find_delegation(name)
        if delegation is not None:
            return LookupResult(LookupStatus.DELEGATION, authority=delegation,
                                additional=self._glue_for(delegation))

        node = self._nodes.get(name)
        if node is None:
            wildcard = self._find_wildcard(name)
            if wildcard is None:
                if self._has_descendants(name):
                    # Empty non-terminal: the name "exists" per RFC 4592.
                    return LookupResult(LookupStatus.NODATA,
                                        authority=self._soa_authority())
                return LookupResult(LookupStatus.NXDOMAIN,
                                    authority=self._soa_authority())
            node = wildcard
            return self._answer_from_node(node, name, rtype, synthesize_owner=name)
        return self._answer_from_node(node, name, rtype)

    def _answer_from_node(self, node: Dict[RecordType, List[ResourceRecord]],
                          name: Name, rtype: RecordType,
                          synthesize_owner: Optional[Name] = None) -> LookupResult:
        def materialise(records: List[ResourceRecord]) -> List[ResourceRecord]:
            if synthesize_owner is None:
                return list(records)
            return [ResourceRecord(synthesize_owner, record.rtype, record.ttl,
                                   record.rdata, record.rclass)
                    for record in records]

        if RecordType.CNAME in node and rtype not in (RecordType.CNAME, RecordType.ANY):
            records = materialise(node[RecordType.CNAME])
            target = records[0].rdata.target  # type: ignore[attr-defined]
            return LookupResult(LookupStatus.CNAME, records=records,
                                cname_target=target)
        if rtype == RecordType.ANY:
            records = [record for rrset in node.values() for record in materialise(rrset)]
            if records:
                return LookupResult(LookupStatus.SUCCESS, records=records)
        elif rtype in node:
            return LookupResult(LookupStatus.SUCCESS, records=materialise(node[rtype]))
        return LookupResult(LookupStatus.NODATA, authority=self._soa_authority())

    def _find_delegation(self, name: Name) -> Optional[List[ResourceRecord]]:
        """NS records at a zone cut strictly between origin and ``name``."""
        # Walk ancestors from just below the origin down to the parent of name.
        relative = name.relativize(self.origin)
        for depth in range(len(relative) - 1, 0, -1):
            _, ancestor = name.split_prefix(len(relative) - depth)
            node = self._nodes.get(ancestor)
            if node and RecordType.NS in node and ancestor != self.origin:
                return list(node[RecordType.NS])
        # The name itself may be a delegated child (query at the cut point).
        node = self._nodes.get(name)
        if (node and RecordType.NS in node and name != self.origin
                and RecordType.SOA not in node):
            return list(node[RecordType.NS])
        return None

    def _glue_for(self, ns_records: List[ResourceRecord]) -> List[ResourceRecord]:
        """Address records this zone holds for the delegation's NS targets."""
        glue: List[ResourceRecord] = []
        for ns in ns_records:
            target = ns.rdata.target  # type: ignore[attr-defined]
            node = self._nodes.get(target)
            if node is None:
                continue
            for rtype in (RecordType.A, RecordType.AAAA):
                glue.extend(node.get(rtype, []))
        return glue

    def _find_wildcard(self, name: Name) -> Optional[Dict[RecordType, List[ResourceRecord]]]:
        """The closest-enclosing ``*`` node covering ``name``, if any."""
        current = name
        while current != self.origin and not current.is_root:
            candidate = current.parent().prepend("*")
            node = self._nodes.get(candidate)
            if node is not None:
                return node
            current = current.parent()
        return None

    def _has_descendants(self, name: Name) -> bool:
        return any(existing != name and existing.is_subdomain_of(name)
                   for existing in self._nodes)

    def _soa_authority(self) -> List[ResourceRecord]:
        soa = self.soa
        return [soa] if soa else []

    def __repr__(self) -> str:
        count = sum(len(rrset) for node in self._nodes.values()
                    for rrset in node.values())
        return f"Zone({self.origin}, {count} records)"


# ---------------------------------------------------------------------------
# Master file parsing
# ---------------------------------------------------------------------------

def _tokenise(text: str) -> List[List[str]]:
    """Split master-file text into logical lines of tokens.

    Handles ``;`` comments, quoted strings, and ``( ... )`` continuation
    across physical lines.
    """
    logical_lines: List[List[str]] = []
    current: List[str] = []
    depth = 0
    starts_with_space = False
    for raw_line in text.splitlines():
        tokens, line_depth = _tokenise_line(raw_line)
        if depth == 0:
            if not tokens:
                continue
            starts_with_space = raw_line[:1] in (" ", "\t")
            current = tokens
        else:
            current.extend(tokens)
        depth += line_depth
        if depth < 0:
            raise ZoneError("unbalanced ')' in master file")
        if depth == 0:
            if starts_with_space:
                current.insert(0, "")  # marker: inherit previous owner
            logical_lines.append(current)
            current = []
    if depth != 0:
        raise ZoneError("unbalanced '(' in master file")
    return logical_lines


def _tokenise_line(line: str) -> Tuple[List[str], int]:
    tokens: List[str] = []
    depth_delta = 0
    index = 0
    length = len(line)
    while index < length:
        char = line[index]
        if char == ";":
            break
        if char in " \t":
            index += 1
            continue
        if char == "(":
            depth_delta += 1
            index += 1
            continue
        if char == ")":
            depth_delta -= 1
            index += 1
            continue
        if char == '"':
            end = line.find('"', index + 1)
            if end == -1:
                raise ZoneError(f"unterminated quote in line: {line!r}")
            tokens.append(line[index:end + 1])
            index = end + 1
            continue
        end = index
        while end < length and line[end] not in ' \t;()"':
            end += 1
        tokens.append(line[index:end])
        index = end
    return tokens, depth_delta


def parse_master_file(text: str, origin: Optional[Name] = None) -> Zone:
    """Parse master-file text into a :class:`Zone`.

    ``origin`` seeds ``$ORIGIN``; the file may override it.  The zone's
    origin is the first origin in effect when a record is added.
    """
    current_origin = origin
    default_ttl = DEFAULT_TTL
    zone: Optional[Zone] = None
    previous_owner: Optional[Name] = None

    for tokens in _tokenise(text):
        if tokens and tokens[0] == "$ORIGIN":
            current_origin = Name(tokens[1])
            continue
        if tokens and tokens[0] == "$TTL":
            default_ttl = _parse_ttl(tokens[1])
            continue
        if current_origin is None:
            raise ZoneError("record before any $ORIGIN and no default origin")
        if zone is None:
            zone = Zone(current_origin)

        if tokens[0] == "":
            if previous_owner is None:
                raise ZoneError("continuation line before any owner name")
            owner = previous_owner
            rest = tokens[1:]
        else:
            owner = derelativize(tokens[0], current_origin)
            rest = tokens[1:]
        previous_owner = owner

        ttl = default_ttl
        rclass = RecordClass.IN
        index = 0
        while index < len(rest):
            token = rest[index]
            if token.upper() in ("IN", "CH", "HS"):
                rclass = RecordClass.from_text(token)
                index += 1
            elif token and (token.isdigit() or _looks_like_ttl(token)):
                ttl = _parse_ttl(token)
                index += 1
            else:
                break
        if index >= len(rest):
            raise ZoneError(f"record for {owner} has no type")
        rtype = RecordType.from_text(rest[index])
        rdata_tokens = rest[index + 1:]
        rdata_cls = rdata_class_for(rtype)
        rdata = rdata_cls.from_text(rdata_tokens, current_origin)
        zone.add(ResourceRecord(owner, rtype, ttl, rdata, rclass))

    if zone is None:
        raise ZoneError("master file contained no records")
    return zone


_TTL_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}


def _looks_like_ttl(token: str) -> bool:
    return token[:-1].isdigit() and token[-1].lower() in _TTL_UNITS


def _parse_ttl(token: str) -> int:
    if token.isdigit():
        return int(token)
    if _looks_like_ttl(token):
        return int(token[:-1]) * _TTL_UNITS[token[-1].lower()]
    raise ZoneError(f"bad TTL {token!r}")


def zone_to_master_text(zone: Zone) -> str:
    """Render a zone in master-file format (parseable back).

    The SOA leads (as convention requires), owners are written relative
    to the origin (``@`` for the apex), and rdata uses each type's
    presentation form.
    """
    lines = [f"$ORIGIN {zone.origin.to_text()}"]

    def owner_text(name: Name) -> str:
        if name == zone.origin:
            return "@"
        labels = name.relativize(zone.origin)
        return ".".join(label.decode("ascii") for label in labels)

    def render(record: ResourceRecord) -> str:
        return (f"{owner_text(record.name)} {record.ttl} "
                f"{record.rclass.name} {record.rtype.name} "
                f"{record.rdata.to_text()}")

    soa = zone.soa
    if soa is not None:
        lines.append(render(soa))
    body = sorted((record for record in zone.records()
                   if record.rtype != RecordType.SOA),
                  key=lambda record: (record.name, int(record.rtype),
                                      record.rdata.to_text()))
    lines.extend(render(record) for record in body)
    return "\n".join(lines) + "\n"


def zone_from_records(origin: str, records: Iterable[ResourceRecord]) -> Zone:
    """Build a zone directly from record objects (test/fixture helper)."""
    zone = Zone(Name(origin))
    for record in records:
        zone.add(record)
    return zone
