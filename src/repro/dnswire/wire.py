"""Wire-format buffers with RFC 1035 §4.1.4 name compression.

:class:`WireWriter` appends big-endian integers, raw bytes, and domain
names, compressing repeated name suffixes with 2-octet pointers.
:class:`WireReader` is the mirror image, following compression pointers with
loop protection.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.dnswire.name import MAX_NAME_LENGTH, Name
from repro.errors import CompressionLoopError, TruncatedMessageError, WireFormatError

#: A compression pointer is two octets with the top two bits set, leaving 14
#: bits of offset, so only offsets below this bound are compressible.
_MAX_POINTER_TARGET = 0x3FFF


class WireWriter:
    """Serialises DNS data, compressing names against earlier output."""

    def __init__(self, enable_compression: bool = True) -> None:
        self._parts = bytearray()
        self._offsets: Dict[Tuple[bytes, ...], int] = {}
        self._enable_compression = enable_compression

    def __len__(self) -> int:
        return len(self._parts)

    def getvalue(self) -> bytes:
        """The octets written so far."""
        return bytes(self._parts)

    # -- primitive writers ----------------------------------------------------

    def write_u8(self, value: int) -> None:
        """Append one unsigned octet."""
        self._parts += struct.pack("!B", value)

    def write_u16(self, value: int) -> None:
        """Append a big-endian 16-bit integer."""
        self._parts += struct.pack("!H", value)

    def write_u32(self, value: int) -> None:
        """Append a big-endian 32-bit integer."""
        self._parts += struct.pack("!I", value)

    def write_bytes(self, data: bytes) -> None:
        """Append raw octets."""
        self._parts += data

    # -- names -----------------------------------------------------------------

    def write_name(self, name: Name, compress: bool = True) -> None:
        """Write ``name``, emitting a pointer for any known suffix.

        Compression keys are case-folded label tuples, so ``WWW.Example.com``
        compresses against ``www.example.com`` (RFC 4343 allows this because
        the protocol is case-insensitive; we keep the folded spelling).
        """
        labels = name.labels
        index = 0
        while index < len(labels):
            suffix = tuple(label.lower() for label in labels[index:])
            known = self._offsets.get(suffix) if (compress and self._enable_compression) else None
            if known is not None:
                self.write_u16(0xC000 | known)
                return
            if len(self._parts) <= _MAX_POINTER_TARGET:
                self._offsets[suffix] = len(self._parts)
            label = labels[index]
            self.write_u8(len(label))
            self.write_bytes(label)
            index += 1
        self.write_u8(0)  # root label

    # -- length-prefixed sections ----------------------------------------------

    def reserve_u16(self) -> int:
        """Write a 16-bit placeholder; return its offset for :meth:`patch_u16`."""
        offset = len(self._parts)
        self.write_u16(0)
        return offset

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a reserved 16-bit slot (see ``reserve_u16``)."""
        struct.pack_into("!H", self._parts, offset, value)


class WireReader:
    """Deserialises DNS data, following compression pointers."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def seek(self, offset: int) -> None:
        """Move the read cursor to ``offset``."""
        if not 0 <= offset <= len(self._data):
            raise WireFormatError(f"seek out of range: {offset}")
        self._offset = offset

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise TruncatedMessageError(
                f"need {count} octets at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    # -- primitive readers -------------------------------------------------------

    def read_u8(self) -> int:
        """Read one unsigned octet."""
        return self._take(1)[0]

    def read_u16(self) -> int:
        """Read a big-endian 16-bit integer."""
        return struct.unpack("!H", self._take(2))[0]

    def read_u32(self) -> int:
        """Read a big-endian 32-bit integer."""
        return struct.unpack("!I", self._take(4))[0]

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw octets."""
        return self._take(count)

    # -- names ---------------------------------------------------------------------

    def skip_name(self) -> bool:
        """Advance past one (possibly compressed) name without decoding it.

        Returns ``True`` when the name is the literal root label (a single
        zero octet) — the structural scan in :mod:`repro.dnswire.message`
        needs exactly that bit to validate OPT owners.  A compression
        pointer terminates the walk without being followed; its target is
        validated when the name is actually decoded with
        :meth:`read_name`.  (Our writer never compresses the root name,
        so "starts with a pointer" can never mean "is root" for wire this
        library produced.)
        """
        at_start = True
        while True:
            octet = self.read_u8()
            if octet & 0xC0 == 0xC0:
                self.read_u8()  # low pointer octet
                return False
            if octet & 0xC0:
                raise WireFormatError(f"unsupported label type 0x{octet:02x}")
            if octet == 0:
                return at_start
            self.read_bytes(octet)
            at_start = False

    def read_name(self) -> Name:
        """Read a possibly-compressed name starting at the current offset."""
        labels = []
        total_length = 1
        return_to = None
        # Every jump target must be strictly below all previously visited
        # positions; a strictly decreasing sequence of offsets cannot loop.
        lowest_seen = self._offset
        while True:
            lowest_seen = min(lowest_seen, self._offset)
            octet = self.read_u8()
            if octet & 0xC0 == 0xC0:
                pointer = ((octet & 0x3F) << 8) | self.read_u8()
                if return_to is None:
                    return_to = self._offset
                if pointer >= lowest_seen:
                    raise CompressionLoopError(
                        f"compression pointer to {pointer} does not move "
                        f"strictly backwards (lowest visited {lowest_seen})"
                    )
                self.seek(pointer)
            elif octet & 0xC0:
                raise WireFormatError(f"unsupported label type 0x{octet:02x}")
            elif octet == 0:
                break
            else:
                label = self.read_bytes(octet)
                total_length += octet + 1
                if total_length > MAX_NAME_LENGTH:
                    raise WireFormatError("decoded name exceeds 255 octets")
                labels.append(label)
        if return_to is not None:
            self.seek(return_to)
        return Name.from_labels(labels)
