"""Domain names with RFC 1035 label rules.

A :class:`Name` is an immutable sequence of labels.  Absolute names end with
the empty root label; the module-level constant :data:`ROOT` is the root
name itself.  Comparisons, hashing, and subdomain checks are
case-insensitive, as required by RFC 4343, while the original spelling is
preserved for display.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


def _validate_label(label: bytes) -> None:
    if len(label) == 0:
        raise NameError_("empty label (root label is only allowed last)")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} octets: {label!r}")


class Name:
    """An immutable DNS domain name.

    Construct from labels with :meth:`from_labels` or from presentation
    format with :meth:`from_text` (also available as ``Name("example.com.")``).
    """

    __slots__ = ("_labels", "_folded", "_text")

    def __init__(self, text: str = "") -> None:
        labels = _text_to_labels(text)
        self._init_from(labels)

    # -- constructors -------------------------------------------------------

    def _init_from(self, labels: Tuple[bytes, ...]) -> None:
        total = sum(len(label) + 1 for label in labels) + 1
        if total > MAX_NAME_LENGTH:
            raise NameError_(f"name exceeds {MAX_NAME_LENGTH} octets")
        for label in labels:
            _validate_label(label)
        self._labels = labels
        self._folded = tuple(label.lower() for label in labels)
        #: Presentation form, rendered lazily on first :meth:`to_text`
        #: — names are immutable, and the hot paths (span attributes,
        #: allocation hashing, zone lookups) stringify the same name
        #: object repeatedly.
        self._text: Optional[str] = None

    @classmethod
    def from_labels(cls, labels: Iterable[bytes]) -> "Name":
        """Build a name from an iterable of label byte strings (no root label)."""
        name = cls.__new__(cls)
        name._init_from(tuple(labels))
        return name

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format, e.g. ``"www.example.com."``."""
        return cls(text)

    # -- accessors -----------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        """The labels, most-specific first, excluding the root label."""
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def to_text(self) -> str:
        """Render in absolute presentation format (trailing dot)."""
        text = self._text
        if text is None:
            if not self._labels:
                text = "."
            else:
                text = ".".join(
                    label.decode("ascii") for label in self._labels) + "."
            self._text = text
        return text

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __len__(self) -> int:
        return len(self._labels)

    # -- comparisons (case-insensitive) --------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._folded == other._folded

    def __hash__(self) -> int:
        return hash(self._folded)

    def __lt__(self, other: "Name") -> bool:
        # Canonical DNS ordering compares label sequences from the root down.
        return tuple(reversed(self._folded)) < tuple(reversed(other._folded))

    # -- structure ------------------------------------------------------------

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        Raises :class:`repro.errors.NameError_` for the root name.
        """
        if self.is_root:
            raise NameError_("the root name has no parent")
        return Name.from_labels(self._labels[1:])

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if ``self`` equals ``other`` or sits below it."""
        if len(other._folded) > len(self._folded):
            return False
        if not other._folded:
            return True
        return self._folded[-len(other._folded):] == other._folded

    def relativize(self, origin: "Name") -> Tuple[bytes, ...]:
        """Labels of ``self`` relative to ``origin``.

        Raises :class:`repro.errors.NameError_` if ``self`` is not under
        ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not a subdomain of {origin}")
        if origin.is_root:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    def concatenate(self, suffix: "Name") -> "Name":
        """``self`` + ``suffix`` (e.g. relative name + origin)."""
        return Name.from_labels(self._labels + suffix._labels)

    def prepend(self, label: str) -> "Name":
        """A new name with ``label`` added on the left."""
        return Name.from_labels((label.encode("ascii"),) + self._labels)

    def split_prefix(self, depth: int) -> Tuple[Tuple[bytes, ...], "Name"]:
        """Split into (leftmost ``depth`` labels, remaining name)."""
        if depth > len(self._labels):
            raise NameError_(f"cannot split {depth} labels off {self}")
        return self._labels[:depth], Name.from_labels(self._labels[depth:])

    def wire_length(self) -> int:
        """Octets needed to encode this name without compression."""
        return sum(len(label) + 1 for label in self._labels) + 1


def _text_to_labels(text: str) -> Tuple[bytes, ...]:
    stripped = text.strip()
    if stripped in ("", "."):
        return ()
    if stripped.endswith("."):
        stripped = stripped[:-1]
    labels = []
    for part in stripped.split("."):
        try:
            labels.append(part.encode("ascii"))
        except UnicodeEncodeError:
            raise NameError_(f"non-ASCII label in {text!r}") from None
    return tuple(labels)


def derelativize(text: str, origin: Optional[Name] = None) -> Name:
    """Parse ``text``; append ``origin`` unless the text is absolute.

    ``"@"`` denotes the origin itself, following master-file convention.
    """
    token = text.strip()
    if token == "@":
        if origin is None:
            raise NameError_("'@' used without an origin")
        return origin
    if token.endswith(".") or origin is None:
        return Name(token)
    return Name(token).concatenate(origin)


def reverse_pointer(ip: str) -> Name:
    """The ``in-addr.arpa`` name for an IPv4 address.

    Reverse zones let operators PTR-map their cache and router addresses,
    and diagnostics resolve addresses back to names.
    """
    import ipaddress
    return Name(ipaddress.IPv4Address(ip).reverse_pointer)


#: The root domain name.
ROOT = Name(".")
