"""DNS wire protocol implementation (RFC 1035 subset + EDNS0/ECS).

This package implements the parts of the DNS protocol that the MEC-CDN
reproduction exercises end to end:

* :mod:`repro.dnswire.name` — domain names with the RFC 1035 label rules.
* :mod:`repro.dnswire.types` — record type / class / opcode / rcode registries.
* :mod:`repro.dnswire.wire` — wire buffers with name compression.
* :mod:`repro.dnswire.rdata` — typed record data (A, AAAA, CNAME, NS, SOA,
  PTR, MX, TXT, SRV, and a generic fallback).
* :mod:`repro.dnswire.edns` — EDNS0 OPT pseudo-records and the Client Subnet
  option (RFC 7871), which the paper evaluates in §4.
* :mod:`repro.dnswire.message` — full query/response message codec.
* :mod:`repro.dnswire.zone` — zone data with lookup semantics and a
  master-file parser.

Messages produced by the simulated servers are always round-tripped through
the wire codec, so the protocol layer is exercised on every simulated query.
"""

from repro.dnswire.name import Name, ROOT
from repro.dnswire.types import RecordType, RecordClass, Opcode, Rcode
from repro.dnswire.message import (
    Flags,
    Question,
    ResourceRecord,
    Message,
    LazyMessage,
    cached_wire,
    clear_wire_memo,
    make_query,
    make_response,
    mark_stale,
)
from repro.dnswire.rdata import (
    Rdata,
    A,
    AAAA,
    CNAME,
    NS,
    PTR,
    MX,
    TXT,
    SOA,
    SRV,
    GenericRdata,
)
from repro.dnswire.edns import (ClientSubnet, EdnsOptionCode, Edns,
                                ExtendedDnsError)
from repro.dnswire.zone import Zone, LookupResult, LookupStatus, parse_master_file

__all__ = [
    "Name",
    "ROOT",
    "RecordType",
    "RecordClass",
    "Opcode",
    "Rcode",
    "Flags",
    "Question",
    "ResourceRecord",
    "Message",
    "LazyMessage",
    "cached_wire",
    "clear_wire_memo",
    "make_query",
    "make_response",
    "mark_stale",
    "Rdata",
    "A",
    "AAAA",
    "CNAME",
    "NS",
    "PTR",
    "MX",
    "TXT",
    "SOA",
    "SRV",
    "GenericRdata",
    "ClientSubnet",
    "EdnsOptionCode",
    "Edns",
    "ExtendedDnsError",
    "Zone",
    "LookupResult",
    "LookupStatus",
    "parse_master_file",
]
