"""EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871).

The paper evaluates ECS in §4 ("ECS changed the measurements by 1.01x,
1.08x and 0.95x"), so the option is implemented in full: family, source
prefix length, scope prefix length, and the truncated-address encoding
with the trailing-zero-bits requirement.

EDNS state travels on a message as an :class:`Edns` value; the message
codec (see :mod:`repro.dnswire.message`) renders it to/from the OPT
pseudo-record in the additional section.
"""

from __future__ import annotations

import enum
import ipaddress
import math
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.dnswire.types import DEFAULT_EDNS_PAYLOAD
from repro.dnswire.wire import WireReader, WireWriter
from repro.errors import WireFormatError


class EdnsOptionCode(enum.IntEnum):
    """EDNS option codes used by this library."""

    ECS = 8  # RFC 7871 Client Subnet
    COOKIE = 10  # RFC 7873 (opaque passthrough only)
    EDE = 15  # RFC 8914 Extended DNS Errors


class AddressFamily(enum.IntEnum):
    """ECS address family numbers (from the IANA address-family registry)."""

    IPV4 = 1
    IPV6 = 2


class EdnsOption:
    """Base class for EDNS options; unknown options stay opaque."""

    code: int

    def to_wire(self) -> bytes:
        """Serialise to wire format."""
        raise NotImplementedError

    @classmethod
    def from_wire(cls, data: bytes) -> "EdnsOption":
        raise NotImplementedError


class OpaqueOption(EdnsOption):
    """An EDNS option this library does not interpret."""

    def __init__(self, code: int, data: bytes) -> None:
        self.code = code
        self.data = data

    def to_wire(self) -> bytes:
        """Serialise to wire format."""
        return self.data

    @classmethod
    def from_wire(cls, data: bytes) -> "OpaqueOption":  # pragma: no cover - not used
        raise NotImplementedError("OpaqueOption needs a code; built inline")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, OpaqueOption)
                and (self.code, self.data) == (other.code, other.data))

    def __hash__(self) -> int:
        return hash((self.code, self.data))


class ClientSubnet(EdnsOption):
    """RFC 7871 EDNS Client Subnet option.

    ``address`` is the full client address; only ``source_prefix`` bits are
    put on the wire and the remainder must be zero, which :meth:`to_wire`
    enforces by masking.
    """

    code = int(EdnsOptionCode.ECS)

    def __init__(self, address: str, source_prefix: int,
                 scope_prefix: int = 0) -> None:
        parsed = ipaddress.ip_address(address)
        self.family = AddressFamily.IPV4 if parsed.version == 4 else AddressFamily.IPV6
        max_bits = 32 if parsed.version == 4 else 128
        if not 0 <= source_prefix <= max_bits:
            raise WireFormatError(
                f"ECS source prefix {source_prefix} out of range for {address}")
        if not 0 <= scope_prefix <= max_bits:
            raise WireFormatError(
                f"ECS scope prefix {scope_prefix} out of range for {address}")
        # Mask host bits directly on the integer form.  This equals
        # ``ip_network(f"{address}/{source_prefix}",
        # strict=False).network_address`` without parsing the address a
        # second time (ECS options are built per query on the hot path).
        host_bits = max_bits - source_prefix
        masked = (int(parsed) >> host_bits) << host_bits
        self.address = str(type(parsed)(masked))
        self.source_prefix = source_prefix
        self.scope_prefix = scope_prefix

    def network(self) -> Union[ipaddress.IPv4Network, ipaddress.IPv6Network]:
        """The client subnet as an ipaddress network object."""
        return ipaddress.ip_network(f"{self.address}/{self.source_prefix}")

    def with_scope(self, scope_prefix: int) -> "ClientSubnet":
        """A copy with the server-assigned scope prefix (for responses)."""
        return ClientSubnet(self.address, self.source_prefix, scope_prefix)

    def to_wire(self) -> bytes:
        """Serialise to wire format."""
        packed = ipaddress.ip_address(self.address).packed
        prefix_octets = math.ceil(self.source_prefix / 8)
        writer = WireWriter()
        writer.write_u16(int(self.family))
        writer.write_u8(self.source_prefix)
        writer.write_u8(self.scope_prefix)
        writer.write_bytes(packed[:prefix_octets])
        return writer.getvalue()

    @classmethod
    def from_wire(cls, data: bytes) -> "ClientSubnet":
        reader = WireReader(data)
        family = reader.read_u16()
        source_prefix = reader.read_u8()
        scope_prefix = reader.read_u8()
        prefix_octets = math.ceil(source_prefix / 8)
        truncated = reader.read_bytes(prefix_octets)
        if family == AddressFamily.IPV4:
            padded = truncated + b"\x00" * (4 - len(truncated))
            address = str(ipaddress.IPv4Address(padded))
        elif family == AddressFamily.IPV6:
            padded = truncated + b"\x00" * (16 - len(truncated))
            address = str(ipaddress.IPv6Address(padded))
        else:
            raise WireFormatError(f"unknown ECS address family {family}")
        return cls(address, source_prefix, scope_prefix)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ClientSubnet)
                and (self.address, self.source_prefix, self.scope_prefix)
                == (other.address, other.source_prefix, other.scope_prefix))

    def __hash__(self) -> int:
        return hash((self.address, self.source_prefix, self.scope_prefix))

    def __repr__(self) -> str:
        return (f"ClientSubnet({self.address}/{self.source_prefix}, "
                f"scope={self.scope_prefix})")


class ExtendedDnsError(EdnsOption):
    """RFC 8914 Extended DNS Error option.

    Carries a 16-bit info-code plus optional UTF-8 extra text.  The
    resolver uses info-code 3 ("Stale Answer") to mark serve-stale
    responses (RFC 8767 §4 recommends exactly this), so clients and
    measurements can tell a fresh answer from one served past its TTL
    without any out-of-band signalling.
    """

    code = int(EdnsOptionCode.EDE)

    #: RFC 8914 §4.4: the answer was served from cache past its TTL.
    INFO_CODE_STALE_ANSWER = 3
    #: RFC 8914 §4.23: no reachable authority (the upstream was down).
    INFO_CODE_NETWORK_ERROR = 23

    def __init__(self, info_code: int, extra_text: str = "") -> None:
        if not 0 <= info_code <= 0xFFFF:
            raise WireFormatError(f"EDE info-code {info_code} out of range")
        self.info_code = info_code
        self.extra_text = extra_text

    @classmethod
    def stale_answer(cls, extra_text: str = "") -> "ExtendedDnsError":
        """The marker a serve-stale response carries."""
        return cls(cls.INFO_CODE_STALE_ANSWER, extra_text)

    @property
    def is_stale_answer(self) -> bool:
        return self.info_code == self.INFO_CODE_STALE_ANSWER

    def to_wire(self) -> bytes:
        """Serialise to wire format."""
        writer = WireWriter()
        writer.write_u16(self.info_code)
        writer.write_bytes(self.extra_text.encode("utf-8"))
        return writer.getvalue()

    @classmethod
    def from_wire(cls, data: bytes) -> "ExtendedDnsError":
        reader = WireReader(data)
        info_code = reader.read_u16()
        extra = reader.read_bytes(reader.remaining)
        try:
            text = extra.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(f"EDE extra text is not UTF-8: {error}")
        return cls(info_code, text)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ExtendedDnsError)
                and (self.info_code, self.extra_text)
                == (other.info_code, other.extra_text))

    def __hash__(self) -> int:
        return hash((self.code, self.info_code, self.extra_text))

    def __repr__(self) -> str:
        text = f", {self.extra_text!r}" if self.extra_text else ""
        return f"ExtendedDnsError({self.info_code}{text})"


_OPTION_CLASSES: Dict[int, Type[EdnsOption]] = {
    int(EdnsOptionCode.ECS): ClientSubnet,
    int(EdnsOptionCode.EDE): ExtendedDnsError,
}


class Edns:
    """EDNS state for a message: payload size, extended rcode, options."""

    def __init__(self, udp_payload: int = DEFAULT_EDNS_PAYLOAD, version: int = 0,
                 dnssec_ok: bool = False,
                 options: Optional[List[EdnsOption]] = None) -> None:
        self.udp_payload = udp_payload
        self.version = version
        self.dnssec_ok = dnssec_ok
        self.options: List[EdnsOption] = list(options or [])

    def option(self, code: int) -> Optional[EdnsOption]:
        """The first option with the given code, or None."""
        for opt in self.options:
            if opt.code == code:
                return opt
        return None

    @property
    def client_subnet(self) -> Optional[ClientSubnet]:
        opt = self.option(int(EdnsOptionCode.ECS))
        return opt if isinstance(opt, ClientSubnet) else None

    @property
    def extended_error(self) -> Optional[ExtendedDnsError]:
        opt = self.option(int(EdnsOptionCode.EDE))
        return opt if isinstance(opt, ExtendedDnsError) else None

    def cache_key(self) -> "Tuple[object, ...]":
        """A hashable snapshot of everything the OPT record encodes.

        The message-level wire memo (:func:`repro.dnswire.message.cached_wire`)
        keys on this; it covers the fixed OPT fields plus the option list,
        so two Edns values with equal keys render identical OPT bytes.
        Options are value-hashable (ClientSubnet, ExtendedDnsError,
        OpaqueOption all hash on content); a foreign option type without
        ``__hash__`` makes the key unhashable, which the memo treats as
        "encode directly".
        """
        return (self.udp_payload, self.version, self.dnssec_ok,
                tuple(self.options))

    def options_to_wire(self) -> bytes:
        """Encode the option list as OPT rdata octets."""
        writer = WireWriter()
        for opt in self.options:
            data = opt.to_wire()
            writer.write_u16(opt.code)
            writer.write_u16(len(data))
            writer.write_bytes(data)
        return writer.getvalue()

    @classmethod
    def options_from_wire(cls, data: bytes) -> List[EdnsOption]:
        reader = WireReader(data)
        options: List[EdnsOption] = []
        while reader.remaining:
            code = reader.read_u16()
            length = reader.read_u16()
            payload = reader.read_bytes(length)
            option_cls = _OPTION_CLASSES.get(code)
            if option_cls is None:
                options.append(OpaqueOption(code, payload))
            else:
                options.append(option_cls.from_wire(payload))
        return options

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Edns)
                and (self.udp_payload, self.version, self.dnssec_ok, self.options)
                == (other.udp_payload, other.version, other.dnssec_ok, other.options))

    def __repr__(self) -> str:
        return (f"Edns(payload={self.udp_payload}, version={self.version}, "
                f"do={self.dnssec_ok}, options={self.options!r})")
