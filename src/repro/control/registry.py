"""The versioned zone registry: cluster state as authoritative DNS data.

In the paper's design the orchestrator knows every endpoint and the CDN
publishes that knowledge as DNS.  :class:`ZoneRegistry` is the seam
between the two: it owns the canonical version of the delivery zone,
rewrites the endpoint RRset on every cluster change, bumps the SOA
serial (RFC 1982 monotonic), journals the diff for incremental transfer
(RFC 1995, bounded history), and tells its subscribers — the propagation
coordinator, the staleness monitor — that a new version exists.

The registry never touches the network itself; propagation is the
coordinator's job.  Keeping the source of truth synchronous and pure is
what makes the staleness accounting exact: an update's timestamp is the
instant the *cluster* changed, not the instant DNS caught up.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, NamedTuple, Tuple

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import A, SOA
from repro.dnswire.types import RecordType
from repro.dnswire.zone import Zone
from repro.netsim.network import Network
from repro.resolver.xfr import DEFAULT_JOURNAL_DEPTH, ZoneJournal

#: Owner label under the origin where the endpoint RRset lives.
ENDPOINT_LABEL = "caches"

#: TTL stamped on registry-generated records; short, as CDN routing
#: answers are, so secondaries and caches re-check quickly.
REGISTRY_TTL = 30

#: SOA timers (seconds): refresh drives the secondary's recovery poll
#: cadence when NOTIFY is lost; the rest are conventional.
SOA_REFRESH = 30
SOA_RETRY = 10
SOA_EXPIRE = 3600
SOA_MINIMUM = 30


class ZoneUpdate(NamedTuple):
    """One registry update: what changed, and exactly when."""

    time: float
    serial: int
    addresses: Tuple[str, ...]   # the full live endpoint set, sorted
    added: Tuple[str, ...]
    removed: Tuple[str, ...]

    def describe(self) -> str:
        """One deterministic update line (digest material)."""
        return (f"t={self.time:.1f} serial={self.serial} "
                f"+[{','.join(self.added)}] -[{','.join(self.removed)}] "
                f"live=[{','.join(self.addresses)}]")


class ZoneRegistry:
    """Versioned store of the delivery zone's endpoint set."""

    def __init__(self, network: Network, origin: Name,
                 addresses: Iterable[str],
                 journal_depth: int = DEFAULT_JOURNAL_DEPTH) -> None:
        self.network = network
        self.origin = origin
        self.owner = origin.prepend(ENDPOINT_LABEL)
        self.serial = 1
        self.addresses: Tuple[str, ...] = tuple(sorted(set(addresses)))
        self.journal = ZoneJournal(depth=journal_depth)
        self.zone: Zone = self._build_zone(self.serial, self.addresses)
        #: Every applied update, oldest first (the initial version is
        #: not an update: nothing changed).
        self.updates: List[ZoneUpdate] = []
        self._subscribers: List[Callable[[ZoneUpdate, Zone], None]] = []

    # -- zone synthesis -----------------------------------------------------

    def _build_zone(self, serial: int,
                    addresses: Tuple[str, ...]) -> Zone:
        zone = Zone(self.origin)
        zone.add(ResourceRecord(
            self.origin, RecordType.SOA, REGISTRY_TTL,
            SOA(mname=self.origin.prepend("ns1"),
                rname=self.origin.prepend("hostmaster"),
                serial=serial, refresh=SOA_REFRESH, retry=SOA_RETRY,
                expire=SOA_EXPIRE, minimum=SOA_MINIMUM)))
        for address in addresses:
            zone.add(ResourceRecord(self.owner, RecordType.A,
                                    REGISTRY_TTL, A(address)))
        return zone

    @staticmethod
    def addresses_in(zone: Zone, owner: Name) -> Tuple[str, ...]:
        """The endpoint set a (possibly propagated) zone version carries."""
        addresses: List[str] = []
        for record in zone.records():
            if record.name == owner and record.rtype == RecordType.A:
                addresses.append(record.rdata.address)  # type: ignore[attr-defined]
        return tuple(sorted(addresses))

    # -- updates ------------------------------------------------------------

    def subscribe(self,
                  callback: Callable[[ZoneUpdate, Zone], None]) -> None:
        """Register a callback fired synchronously on every update."""
        self._subscribers.append(callback)

    def update(self, addresses: Iterable[str]) -> "ZoneUpdate | None":
        """Install a new endpoint set; returns None if nothing changed."""
        new_addresses = tuple(sorted(set(addresses)))
        if new_addresses == self.addresses:
            return None
        old_set, new_set = set(self.addresses), set(new_addresses)
        self.serial += 1
        new_zone = self._build_zone(self.serial, new_addresses)
        self.journal.record(self.origin, self.zone, new_zone)
        update = ZoneUpdate(
            time=self.network.sim.now, serial=self.serial,
            addresses=new_addresses,
            added=tuple(sorted(new_set - old_set)),
            removed=tuple(sorted(old_set - new_set)))
        self.zone = new_zone
        self.addresses = new_addresses
        self.updates.append(update)
        tel = self.network.telemetry
        if tel is not None:
            tel.tracer.event(
                "control.zone_update", "control", "zone-registry",
                serial=update.serial, added=len(update.added),
                removed=len(update.removed))
            tel.metrics.counter(
                "repro_control_zone_updates_total",
                "registry zone versions published").inc(
                    origin=str(self.origin))
            tel.timeseries.annotate(
                update.time, "zone_update",
                detail=(f"serial={update.serial} "
                        f"+{len(update.added)} -{len(update.removed)}"),
                scope=str(self.origin))
        for callback in self._subscribers:
            callback(update, new_zone)
        return update

    def __repr__(self) -> str:
        return (f"ZoneRegistry({self.origin}, serial={self.serial}, "
                f"{len(self.addresses)} endpoints)")
