"""NOTIFY/IXFR propagation between the authoritative tiers.

The registry's new versions have to reach the MEC before they matter:
the coordinator installs each version into the CDN's **primary**
authoritative server (journalled, so secondaries can pull diffs), then
drives the MEC-local **secondary** with the RFC 1996 fast path — a
NOTIFY a short control-plane delay after the update — and retries the
transfer on a fixed cadence when faults eat it.  The secondary's own
periodic SOA refresh remains the recovery path of last resort.

When an installed version lands at the secondary, the coordinator fires
``on_applied`` so the assembly (:mod:`repro.control.plane`) can rebuild
the traffic router's view from the *propagated* zone content.  Between
an update and its apply, :meth:`PropagationCoordinator.in_flight` is
True — that interval is the propagation window every staleness metric
is measured against, and it is what the CoreDNS cache plugin's
``churn_window`` hook is wired to.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.dnswire.zone import Zone
from repro.netsim.network import Network
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.xfr import SecondaryZone

from repro.control.registry import ZoneRegistry, ZoneUpdate

#: Control-plane delay between a registry update and the NOTIFY going
#: out (config push, reconciliation loop tick).
DEFAULT_NOTIFY_DELAY_MS = 40.0

#: Cadence of transfer retries while a version is still in flight.
DEFAULT_RETRY_DELAY_MS = 700.0

#: Retries before the coordinator leaves recovery to the refresh loop.
DEFAULT_MAX_RETRIES = 8


class PropagationRecord:
    """Lifecycle of one zone version on its way to the MEC."""

    __slots__ = ("serial", "update_time", "notified_at", "installed_at",
                 "applied_at", "attempts")

    def __init__(self, serial: int, update_time: float) -> None:
        self.serial = serial
        self.update_time = update_time
        self.notified_at: Optional[float] = None
        self.installed_at: Optional[float] = None
        self.applied_at: Optional[float] = None
        self.attempts = 0

    @property
    def delay_ms(self) -> Optional[float]:
        """Update-to-applied propagation delay, if it completed."""
        if self.applied_at is None:
            return None
        return self.applied_at - self.update_time

    def describe(self) -> str:
        """One deterministic lifecycle line (digest material)."""
        def stamp(value: Optional[float]) -> str:
            return f"{value:.1f}" if value is not None else "never"
        return (f"serial={self.serial} updated={self.update_time:.1f} "
                f"notified={stamp(self.notified_at)} "
                f"installed={stamp(self.installed_at)} "
                f"applied={stamp(self.applied_at)} "
                f"attempts={self.attempts}")


class PropagationCoordinator:
    """Pushes registry versions to the primary and on to the secondary."""

    def __init__(self, network: Network, registry: ZoneRegistry,
                 primary: AuthoritativeServer, secondary: SecondaryZone,
                 notify_delay_ms: float = DEFAULT_NOTIFY_DELAY_MS,
                 retry_delay_ms: float = DEFAULT_RETRY_DELAY_MS,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 on_applied: Optional[
                     Callable[[Zone, PropagationRecord], None]] = None,
                 ) -> None:
        self.network = network
        self.registry = registry
        self.primary = primary
        self.secondary = secondary
        self.notify_delay_ms = notify_delay_ms
        self.retry_delay_ms = retry_delay_ms
        self.max_retries = max_retries
        self.on_applied = on_applied
        #: serial -> lifecycle record, in update order.
        self.records: Dict[int, PropagationRecord] = {}
        self.gave_up = 0
        self._target_serial = registry.serial
        self._loop_running = False
        registry.subscribe(self._on_update)
        secondary.on_install = self._on_install

    # -- the update side ----------------------------------------------------

    def _on_update(self, update: ZoneUpdate, zone: Zone) -> None:
        """Registry published a version: install at primary, plan NOTIFY."""
        self.primary.add_zone(zone)
        self.records[update.serial] = PropagationRecord(
            update.serial, update.time)
        self._target_serial = update.serial
        sim = self.network.sim
        sim.call_at(sim.now + self.notify_delay_ms, self._start_notify_loop)

    def _start_notify_loop(self) -> None:
        if self._loop_running:
            return
        self._loop_running = True
        self.network.sim.spawn(self._notify_loop())

    def _notify_loop(self) -> Generator:
        """NOTIFY, then retry the transfer until current or out of tries."""
        attempts = 0
        try:
            while self._behind() and attempts < self.max_retries:
                attempts += 1
                now = self.network.sim.now
                for record in self.records.values():
                    if record.notified_at is None:
                        record.notified_at = now
                    if record.applied_at is None:
                        record.attempts += 1
                yield from self.secondary.notify()
                if not self._behind():
                    return
                yield self.retry_delay_ms
            if self._behind():
                # The periodic SOA refresh loop is now the recovery path.
                self.gave_up += 1
        finally:
            self._loop_running = False
            # Updates that raced in while we were giving up get a fresh
            # loop at their own NOTIFY time (already scheduled).

    def _behind(self) -> bool:
        serial = self.secondary.serial
        return serial is None or serial < self._target_serial

    # -- the install side ---------------------------------------------------

    def _on_install(self, time: float, serial: int) -> None:
        """The secondary installed ``serial``: close records, apply."""
        record: Optional[PropagationRecord] = None
        for pending in self.records.values():
            if pending.serial <= serial and pending.installed_at is None:
                pending.installed_at = time
                record = pending
        if record is None:
            return  # a re-install of an already-applied version
        zone = self.secondary.server.zones.get(self.registry.origin)
        if zone is None:
            return
        for pending in self.records.values():
            if pending.serial <= serial and pending.applied_at is None:
                pending.applied_at = time
        if self.on_applied is not None:
            self.on_applied(zone, record)
        tel = self.network.telemetry
        if tel is not None:
            delay = record.delay_ms
            tel.tracer.event(
                "control.zone_applied", "control", "propagation",
                serial=serial, delay_ms=delay if delay is not None else -1.0)
            tel.metrics.counter(
                "repro_control_zone_applied_total",
                "zone versions applied to the MEC routing view").inc(
                    origin=str(self.registry.origin))
            tel.timeseries.annotate(
                time, "zone_applied",
                detail=(f"serial={serial} delay_ms="
                        f"{delay:.1f}" if delay is not None
                        else f"serial={serial}"),
                scope=str(self.registry.origin))

    # -- observability ------------------------------------------------------

    def in_flight(self) -> bool:
        """Whether any published version has not reached the router yet."""
        return any(record.applied_at is None
                   for record in self.records.values())

    def log(self) -> List[str]:
        """One line per version, in update order (digest material)."""
        return [self.records[serial].describe()
                for serial in sorted(self.records)]

    def __repr__(self) -> str:
        pending = sum(1 for r in self.records.values()
                      if r.applied_at is None)
        return (f"PropagationCoordinator(target={self._target_serial}, "
                f"{pending} in flight)")
