"""The dynamic control plane: live cluster and zone state (extension).

Figure 5 measures a frozen system — the cache fleet, the zone data, and
the UE's cell never change mid-run.  Real MEC-CDNs churn constantly:
pods scale and roll, the delivery zone is re-provisioned, and UEs hand
over between cells.  This package makes that state *live* and measures
how the resolution chain degrades (or doesn't) while it moves:

* :mod:`repro.control.registry` — :class:`ZoneRegistry`, the versioned
  source of truth for the delivery zone.  Every endpoint-set update
  bumps the SOA serial and journals the diff (bounded, RFC 1995 style);
* :mod:`repro.control.propagation` — :class:`PropagationCoordinator`,
  which pushes each version into the primary authoritative server,
  NOTIFYs (RFC 1996) the MEC-local secondary, retries the transfer
  under faults, and applies each installed version to the C-DNS's
  routing view at simulated time;
* :mod:`repro.control.churn` — :class:`ChurnDriver`, scheduled
  orchestrator events (scale up/down, rolling restarts) that feed the
  registry exactly as a cloud controller would;
* :mod:`repro.control.monitor` — :class:`StalenessMonitor`, which turns
  updates and answers into the experiment's three quantities: staleness
  windows, mislocalization-during-churn, and the serve-stale overlap;
* :mod:`repro.control.plane` — :class:`ControlPlane`, the assembly over
  a built :class:`~repro.core.deployments.Testbed`.

The load-bearing design rule: the traffic router's view updates **only
when zone propagation completes**, never by peeking at orchestrator
ground truth — otherwise the very staleness this package exists to
measure would be invisible.
"""

from repro.control.churn import ChurnDriver, ChurnEvent, default_schedule
from repro.control.monitor import StalenessMonitor
from repro.control.plane import ControlPlane
from repro.control.propagation import (PropagationCoordinator,
                                       PropagationRecord)
from repro.control.registry import ZoneRegistry, ZoneUpdate

__all__ = [
    "ChurnDriver",
    "ChurnEvent",
    "ControlPlane",
    "PropagationCoordinator",
    "PropagationRecord",
    "StalenessMonitor",
    "ZoneRegistry",
    "ZoneUpdate",
    "default_schedule",
]
