"""ControlPlane: the dynamic control plane assembled over a testbed.

The assembly adds two hosts to a built Figure 5 testbed and wires the
whole provisioning chain through them:

* ``cdn-origin`` — the CDN's primary authoritative server at WAN
  distance (where a real CDN's provisioning API lives).  The registry's
  versions are installed here first and served to secondaries via
  IXFR/AXFR out of a **bounded** journal;
* ``<site>-zonesync`` — the MEC-local secondary on the cluster LAN.
  It is pre-seeded with version 1 (provisioned at deploy time), woken
  by NOTIFY for the fast path, and keeps a periodic SOA refresh as the
  recovery path.

When a version lands at the secondary, it is applied to the site's
traffic router with :meth:`~repro.cdn.router.TrafficRouter.set_zone_caches`
— the router routes on the **propagated** view, never on orchestrator
ground truth, so the window between "cluster changed" and "DNS caught
up" is real and measurable.  The CoreDNS cache plugin's
``churn_window`` hook is pointed at that same window so RFC 8767 stale
answers served during it are counted separately.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cdn.cache_server import CacheServer
from repro.core.deployments import Testbed
from repro.dnswire.zone import Zone
from repro.core.meccdn import MecCdnSite
from repro.netsim.latency import Constant
from repro.netsim.packet import Endpoint
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.xfr import DEFAULT_JOURNAL_DEPTH, SecondaryZone

from repro.control.churn import ChurnDriver, ChurnEvent
from repro.control.monitor import StalenessMonitor
from repro.control.propagation import (DEFAULT_NOTIFY_DELAY_MS,
                                       DEFAULT_RETRY_DELAY_MS,
                                       DEFAULT_MAX_RETRIES,
                                       PropagationCoordinator,
                                       PropagationRecord)
from repro.control.registry import ZoneRegistry

#: Where the primary lives and how far away it is (one-way ms, WAN).
PRIMARY_IP = "203.0.113.80"
PRIMARY_HOST = "cdn-origin"
DEFAULT_WAN_ONE_WAY_MS = 23.0

#: The MEC-local secondary host (cluster LAN, next to the k8s nodes).
SECONDARY_IP = "10.40.2.40"
SECONDARY_LAN_ONE_WAY_MS = 0.25

#: The secondary's periodic SOA refresh (recovery path) and its
#: per-query patience.  Short enough that a run-length fault window is
#: survivable inside one experiment cell.
DEFAULT_REFRESH_MS = 5000.0
DEFAULT_SYNC_TIMEOUT_MS = 600.0


class ControlPlane:
    """Registry + propagation + monitoring over one built testbed."""

    def __init__(self, testbed: Testbed,
                 journal_depth: int = DEFAULT_JOURNAL_DEPTH,
                 notify_delay_ms: float = DEFAULT_NOTIFY_DELAY_MS,
                 retry_delay_ms: float = DEFAULT_RETRY_DELAY_MS,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 refresh_ms: float = DEFAULT_REFRESH_MS,
                 sync_timeout_ms: float = DEFAULT_SYNC_TIMEOUT_MS,
                 wan_one_way_ms: float = DEFAULT_WAN_ONE_WAY_MS) -> None:
        site = testbed.mec_site
        if site is None:
            raise ValueError(
                "the control plane needs a testbed with a MEC site")
        self.testbed = testbed
        self.site: MecCdnSite = site
        network = testbed.network
        self.network = network

        initial = tuple(sorted(cache.endpoint.ip for cache in site.caches))
        self.registry = ZoneRegistry(network, site.cdn_domain, initial,
                                     journal_depth=journal_depth)

        # -- primary at WAN distance ----------------------------------------
        primary_host = network.add_host(PRIMARY_HOST, PRIMARY_IP)
        network.add_link(PRIMARY_HOST, testbed.epc.pgw.name,
                         Constant(wan_one_way_ms),
                         name=f"link-{PRIMARY_HOST}")
        self.primary = AuthoritativeServer(
            network, primary_host, [self.registry.zone],
            journal_depth=journal_depth)

        # -- MEC-local secondary, pre-seeded with version 1 -----------------
        secondary_name = f"{site.name}-zonesync"
        secondary_host = network.add_host(secondary_name, SECONDARY_IP)
        network.add_link(secondary_name, testbed.epc.pgw.name,
                         Constant(SECONDARY_LAN_ONE_WAY_MS),
                         name=f"link-{secondary_name}")
        self.secondary_server = AuthoritativeServer(
            network, secondary_host, [self.registry.zone],
            journal_depth=journal_depth)
        self.secondary = SecondaryZone(
            network, self.secondary_server, self.registry.origin,
            Endpoint(PRIMARY_IP, 53), refresh_ms=refresh_ms)
        self.secondary._stub.timeout = sync_timeout_ms
        self.secondary.start()

        # -- propagation + monitoring ---------------------------------------
        self.coordinator = PropagationCoordinator(
            network, self.registry, self.primary, self.secondary,
            notify_delay_ms=notify_delay_ms,
            retry_delay_ms=retry_delay_ms, max_retries=max_retries,
            on_applied=self._apply_to_router)
        self.driver: Optional[ChurnDriver] = None
        self.monitor = StalenessMonitor(
            network, live=self._live_addresses,
            in_window=self.coordinator.in_flight,
            scope=testbed.key)
        self.registry.subscribe(
            lambda update, zone: self.monitor.note_update(update))
        if site.ldns.cache_plugin is not None:
            site.ldns.cache_plugin.churn_window = self.coordinator.in_flight
        self.router_applies = 0

    # -- churn ---------------------------------------------------------------

    def add_churn(self, schedule: Sequence[ChurnEvent]) -> ChurnDriver:
        """Schedule churn events against the site's cache fleet."""
        if self.driver is not None:
            raise ValueError("churn schedule already installed")
        self.driver = ChurnDriver(self.network, self.site, self.registry,
                                  schedule)
        return self.driver

    def _live_addresses(self) -> Sequence[str]:
        if self.driver is not None:
            return self.driver.live
        return self.registry.addresses

    # -- the apply step -------------------------------------------------------

    def _apply_to_router(self, zone: Zone,
                         record: PropagationRecord) -> None:
        """Rebuild the router's edge zone from the propagated content."""
        addresses = ZoneRegistry.addresses_in(zone, self.registry.owner)
        caches: List[CacheServer] = []
        for address in addresses:
            for cache in self.site.caches:
                if cache.endpoint.ip == address:
                    caches.append(cache)
                    break
        self.site.cdns.set_zone_caches(f"{self.site.name}-edge", caches)
        self.router_applies += 1

    # -- observability -------------------------------------------------------

    @property
    def secondary_host_name(self) -> str:
        """For fault plans that cut the MEC off (partition scenarios)."""
        return self.secondary.server.host.name

    def log(self) -> List[str]:
        """Propagation lifecycle lines plus churn timeline (digest food)."""
        lines = list(self.coordinator.log())
        if self.driver is not None:
            lines.extend(self.driver.timeline)
        return lines

    def __repr__(self) -> str:
        return (f"ControlPlane({self.registry!r}, "
                f"applies={self.router_applies})")
