"""Scheduled orchestrator churn feeding the zone registry.

A cloud controller changes the cache fleet for mundane reasons: load
swings (scale up/down) and deployments (rolling restarts that replace
every pod).  :class:`ChurnDriver` replays a declarative schedule of
those events against the MEC site's orchestrator at simulated time and
publishes the resulting endpoint set to the :class:`ZoneRegistry` — the
exact seam a KubernetesPlugin-style integration would use.

Deliberately, the driver does **not** crash the pods it deregisters:
a rolled pod keeps answering during its termination grace, so the only
thing that can tell clients to stop using it is the DNS control plane.
That is the failure mode this package measures — if the driver also
killed the host, timeouts would mask the mislocalization.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from repro.cdn.cache_server import CacheServer
from repro.core.meccdn import MecCdnSite
from repro.netsim.network import Network

from repro.control.registry import ZoneRegistry

#: Event kinds: ``scale`` adjusts the replica count; ``rollout``
#: replaces every ready pod (a rolling restart, new endpoints for old).
SCALE = "scale"
ROLLOUT = "rollout"


class ChurnEvent(NamedTuple):
    """One scheduled orchestrator action."""

    at_ms: float
    kind: str              # SCALE or ROLLOUT
    replicas: int = 0      # target count; ignored for ROLLOUT


def default_schedule() -> Tuple[ChurnEvent, ...]:
    """The canonical churn timeline used by the churn experiment.

    Scale-up early, a full rolling restart mid-run (every original
    endpoint goes away), and a scale-down late — one of each move a
    real fleet makes, spread across a ~8 s measurement run.
    """
    return (ChurnEvent(1500.0, SCALE, 3),
            ChurnEvent(2600.0, ROLLOUT),
            ChurnEvent(6200.0, SCALE, 2))


class ChurnDriver:
    """Applies a churn schedule to a MEC site and the registry."""

    def __init__(self, network: Network, site: MecCdnSite,
                 registry: ZoneRegistry,
                 schedule: Sequence[ChurnEvent]) -> None:
        self.network = network
        self.site = site
        self.registry = registry
        self.schedule = tuple(sorted(schedule, key=lambda e: e.at_ms))
        #: Ground-truth live endpoint IPs, updated synchronously at each
        #: event (what the registry publishes; what answers are judged
        #: against).
        self.live: Tuple[str, ...] = self._live_ips()
        self.timeline: List[str] = []
        self.events_applied = 0
        for event in self.schedule:
            self.network.sim.call_at(event.at_ms,
                                     self._runner_for(event))

    def _runner_for(self, event: ChurnEvent) -> Callable[[], None]:
        def run() -> None:
            self.apply(event)
        return run

    # -- event application --------------------------------------------------

    def apply(self, event: ChurnEvent) -> None:
        """Execute one event now and publish the new endpoint set."""
        orchestrator = self.site.orchestrator
        service = self.site.cache_service
        if event.kind == SCALE:
            orchestrator.scale(service, event.replicas,
                               starter=self.site._start_cache)
        elif event.kind == ROLLOUT:
            ready = service.ready_pods()
            for pod in ready:
                orchestrator.kill_pod(pod)
            for _ in ready:
                orchestrator.deploy_pod(service,
                                        starter=self.site._start_cache)
        else:
            raise ValueError(f"unknown churn event kind {event.kind!r}")
        self.live = self._live_ips()
        self.events_applied += 1
        now = self.network.sim.now
        self.timeline.append(
            f"t={now:.1f} {event.kind}"
            f"{event.replicas if event.kind == SCALE else ''}"
            f" live=[{','.join(self.live)}]")
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter(
                "repro_control_churn_events_total",
                "orchestrator churn events applied").inc(kind=event.kind)
            tel.timeseries.annotate(
                now, "churn",
                detail=(f"{event.kind}"
                        f"{event.replicas if event.kind == SCALE else ''}"
                        f" live={len(self.live)}"),
                scope=self.site.name)
        self.registry.update(self.live)

    def _live_ips(self) -> Tuple[str, ...]:
        return tuple(sorted(
            pod.app.endpoint.ip
            for pod in self.site.cache_service.ready_pods()
            if isinstance(pod.app, CacheServer)))

    # -- lookups against the fleet ------------------------------------------

    def cache_for_ip(self, address: str) -> Optional[CacheServer]:
        """The cache server (live or rolled) owning ``address``."""
        for cache in self.site.caches:
            if cache.endpoint.ip == address:
                return cache
        return None

    def caches_for(self,
                   addresses: Sequence[str]) -> List[CacheServer]:
        """Cache objects for an address set (propagated zone content)."""
        caches: List[CacheServer] = []
        for address in addresses:
            cache = self.cache_for_ip(address)
            if cache is not None:
                caches.append(cache)
        return caches

    def __repr__(self) -> str:
        return (f"ChurnDriver({len(self.schedule)} events, "
                f"{self.events_applied} applied, "
                f"live=[{','.join(self.live)}])")
