"""Staleness accounting: updates on one side, answers on the other.

The monitor is pure bookkeeping — it observes registry updates and
measured answers and derives the churn experiment's three quantities:

* **staleness window** per update: from the update's timestamp to the
  *last* answer that still carried an address the update removed (and
  which never came back).  Zero when no stale answer was ever served;
* **mislocalization during churn**: of the answers served while a zone
  version was still in flight, how many pointed somewhere not live;
* the **serve-stale overlap** is counted at the CoreDNS cache plugin
  (``stale_served_during_churn``); the monitor only defines the window
  via the callable handed to it.

"Live" is the churn driver's ground truth at answer time, so an
address that is removed and later re-added stops extending windows the
moment it is back.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.netsim.network import Network

from repro.control.registry import ZoneUpdate


class _UpdateState:
    """Window bookkeeping for one registry update."""

    __slots__ = ("update", "last_stale_answer")

    def __init__(self, update: ZoneUpdate) -> None:
        self.update = update
        self.last_stale_answer: Optional[float] = None

    @property
    def window_ms(self) -> float:
        if self.last_stale_answer is None:
            return 0.0
        return self.last_stale_answer - self.update.time


class StalenessMonitor:
    """Derives staleness windows and mislocalization from observations."""

    def __init__(self, network: Network,
                 live: Callable[[], Sequence[str]],
                 in_window: Callable[[], bool],
                 scope: str = "") -> None:
        self.network = network
        self._live = live
        self._in_window = in_window
        #: Deployment label stamped on the monitor's time-series (the
        #: control plane passes its testbed key); empty means unscoped.
        self.scope = scope
        self._updates: Dict[int, _UpdateState] = {}
        self.lookups = 0
        self.answered = 0
        self.mislocalized = 0
        self.lookups_in_window = 0
        self.mislocalized_in_window = 0

    # -- observation inputs -------------------------------------------------

    def note_update(self, update: ZoneUpdate) -> None:
        """Record a registry update (subscribe this to the registry)."""
        self._updates[update.serial] = _UpdateState(update)

    def note_answer(self, time: float, addresses: Sequence[str],
                    stale: bool = False) -> bool:
        """Record one measured answer; returns whether it mislocalized.

        An answer mislocalizes when any address it carries is not in
        the live endpoint set at answer time.  Empty answers (timeouts,
        SERVFAIL) are lookups but never mislocalizations — pointing
        nowhere is a different failure than pointing somewhere wrong.
        """
        live = set(self._live())
        in_window = self._in_window()
        mislocalized = bool(addresses) and any(address not in live
                                               for address in addresses)
        self.lookups += 1
        if addresses:
            self.answered += 1
        if mislocalized:
            self.mislocalized += 1
        if in_window:
            self.lookups_in_window += 1
            if mislocalized:
                self.mislocalized_in_window += 1
        for state in self._updates.values():
            if time >= state.update.time and any(
                    address in state.update.removed and address not in live
                    for address in addresses):
                state.last_stale_answer = time
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter(
                "repro_control_answers_observed_total",
                "answers judged by the staleness monitor").inc(
                    mislocalized=str(mislocalized), stale=str(stale),
                    in_window=str(in_window))
            # Windowed counts are what the SLO burn-rate rules consume:
            # a mislocalization burst shows up as a spike in the
            # mislocalized series against the answers series.
            tel.timeseries.count("repro_control_answers", time,
                                 deployment=self.scope)
            if mislocalized:
                tel.timeseries.count("repro_control_mislocalized", time,
                                     deployment=self.scope)
        return mislocalized

    # -- derived quantities -------------------------------------------------

    def windows_ms(self) -> List[Tuple[int, float]]:
        """(serial, staleness window ms) per update, in update order."""
        return [(serial, self._updates[serial].window_ms)
                for serial in sorted(self._updates)]

    @property
    def max_staleness_ms(self) -> float:
        windows = [window for _, window in self.windows_ms()]
        return max(windows) if windows else 0.0

    @property
    def mean_staleness_ms(self) -> float:
        windows = [window for _, window in self.windows_ms()]
        return sum(windows) / len(windows) if windows else 0.0

    @property
    def mislocalization_rate(self) -> float:
        """Mislocalized fraction of all answered lookups."""
        return self.mislocalized / self.answered if self.answered else 0.0

    @property
    def window_mislocalization_rate(self) -> float:
        """Mislocalized fraction of lookups inside propagation windows."""
        if not self.lookups_in_window:
            return 0.0
        return self.mislocalized_in_window / self.lookups_in_window

    def __repr__(self) -> str:
        return (f"StalenessMonitor({self.lookups} lookups, "
                f"{self.mislocalized} mislocalized, "
                f"max window {self.max_staleness_ms:.1f} ms)")
