"""Ingress monitoring and overload fallback.

The paper's §3: "The MEC orchestrator, which has access to monitoring
statistics of the ingress network load to the MEC DNS, can simply switch
(or only unicast) to the provider's L-DNS during high ingress (above a
threshold), or deploy other more sophisticated mitigation policies."

:class:`IngressMonitor` keeps a sliding-window query rate;
:class:`DosMitigation` watches it and re-targets UEs to the provider's
L-DNS while the MEC DNS is overloaded, restoring them when load subsides.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.mobile.ue import UserEquipment
from repro.netsim.packet import Endpoint


class IngressMonitor:
    """Sliding-window query-per-second estimate."""

    def __init__(self, window_ms: float = 1000.0,
                 threshold_qps: float = 1000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window must be positive")
        self.window_ms = window_ms
        self.threshold_qps = threshold_qps
        self._events: Deque[float] = deque()
        self.total_recorded = 0

    def record(self, now: float) -> None:
        """Note one inbound query at simulated time ``now`` (ms)."""
        self._events.append(now)
        self.total_recorded += 1
        self._expire(now)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_ms
        while self._events and self._events[0] <= cutoff:
            self._events.popleft()

    def rate_qps(self, now: float) -> float:
        """The query rate over the sliding window, in queries/second."""
        self._expire(now)
        return len(self._events) * 1000.0 / self.window_ms

    def overloaded(self, now: float) -> bool:
        """Whether the current rate exceeds the configured threshold."""
        return self.rate_qps(now) > self.threshold_qps


class DosMitigation:
    """Switches UEs between the MEC DNS and the provider L-DNS by load."""

    def __init__(self, monitor: IngressMonitor, mec_dns: Endpoint,
                 provider_ldns: Endpoint) -> None:
        self.monitor = monitor
        self.mec_dns = mec_dns
        self.provider_ldns = provider_ldns
        self.managed: List[UserEquipment] = []
        self.mitigating = False
        self.activations = 0

    def manage(self, ue: UserEquipment) -> None:
        """Put a UE under this policy's control."""
        self.managed.append(ue)

    def evaluate(self, now: float) -> bool:
        """Apply the policy for the current load; returns mitigation state."""
        overloaded = self.monitor.overloaded(now)
        if overloaded and not self.mitigating:
            self.mitigating = True
            self.activations += 1
            for ue in self.managed:
                ue.switch_dns(self.provider_ldns)
        elif not overloaded and self.mitigating:
            self.mitigating = False
            for ue in self.managed:
                ue.switch_dns(self.mec_dns)
        return self.mitigating
