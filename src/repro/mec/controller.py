"""ReplicaController: keep a service at its desired pod count.

Kubernetes' ReplicaSet behaviour, reduced to what the MEC-CDN needs: a
reconciliation loop that watches a service's ready pods and deploys
replacements when pods die, so the fixed cluster IP always has a live
backend (the availability property §4 leans on).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.errors import CapacityError
from repro.mec.cluster import Orchestrator, Pod, Service


class ReplicaController:
    """Reconciles one service toward ``replicas`` ready pods."""

    def __init__(self, orchestrator: Orchestrator, service: Service,
                 starter: Callable[[Pod], object], replicas: int,
                 check_interval_ms: float = 1000.0) -> None:
        if replicas < 1:
            raise ValueError("desired replica count must be >= 1")
        self.orchestrator = orchestrator
        self.service = service
        self.starter = starter
        self.replicas = replicas
        self.check_interval_ms = check_interval_ms
        self.restarts = 0
        self.reconciliations = 0
        self.placement_failures = 0
        self._running = False

    def reconcile_once(self) -> int:
        """Deploy pods until the service is at its desired count.

        Returns how many pods were started.  Placement failures (no node
        capacity) are counted and retried on the next cycle rather than
        raised — the controller must keep running.
        """
        self.reconciliations += 1
        started = 0
        while len(self.service.ready_pods()) < self.replicas:
            try:
                self.orchestrator.deploy_pod(self.service, self.starter)
            except CapacityError:
                self.placement_failures += 1
                break
            started += 1
            self.restarts += 1
        return started

    def scale_to(self, replicas: int) -> None:
        """Change the desired count; the next cycle converges to it."""
        if replicas < 1:
            raise ValueError("desired replica count must be >= 1")
        self.replicas = replicas
        for pod in self.service.ready_pods()[replicas:]:
            self.orchestrator.kill_pod(pod)

    def start(self) -> None:
        """Start the background control loop (a simulator process)."""
        if self._running:
            return
        self._running = True
        network = self.orchestrator.network

        def loop() -> Generator:
            while self._running:
                self.reconcile_once()
                yield self.check_interval_ms

        network.sim.spawn(loop())

    def stop(self) -> None:
        """Stop the background control loop after its current cycle."""
        self._running = False

    def __repr__(self) -> str:
        return (f"ReplicaController({self.service.fqdn} x{self.replicas}, "
                f"restarts={self.restarts})")
