"""A Kubernetes-style orchestrator: nodes, pods, services, cluster IPs.

Only the mechanisms the paper's design depends on are modelled:

* **pods** are simulated hosts created on cluster nodes, joined to their
  node by a fast virtual link;
* **services** own a stable *cluster IP* allocated from the service CIDR.
  The cluster IP is bound to the node of a ready backing pod and is
  *re-bound transparently when that pod dies* — the property §4 uses:
  "we first assign C-DNS a fixed cluster IP using k8s Service.  This
  ensures the C-DNS availability regardless of any scaling event";
* the orchestrator knows every service's name and address, which is what
  makes re-purposing its internal DNS for MEC-CDN possible at all.
"""

from __future__ import annotations

import ipaddress
from typing import Callable, Dict, List, Optional

from repro.errors import CapacityError, MecError, ServiceNotFound
from repro.netsim.latency import Constant, LatencyModel
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint


class Node:
    """One cluster machine with a pod capacity."""

    def __init__(self, host: Host, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("node capacity must be positive")
        self.host = host
        self.capacity = capacity
        self.pods: List["Pod"] = []

    @property
    def free_slots(self) -> int:
        return self.capacity - len([pod for pod in self.pods if pod.running])

    def __repr__(self) -> str:
        return f"Node({self.host.name}, {len(self.pods)}/{self.capacity} pods)"


class Pod:
    """One workload instance, with its own host on the cluster fabric."""

    def __init__(self, name: str, host: Host, node: Node,
                 service: "Service") -> None:
        self.name = name
        self.host = host
        self.node = node
        self.service = service
        self.running = True
        #: The application object started in this pod (a DNS server, a
        #: cache server, ...); set by the deployer callback.
        self.app = None

    @property
    def ip(self) -> str:
        return self.host.address

    def __repr__(self) -> str:
        state = "running" if self.running else "terminated"
        return f"Pod({self.name}, {self.ip}, {state})"


class Service:
    """A named service with a stable cluster IP."""

    def __init__(self, name: str, namespace: str, cluster_ip: str,
                 port: int) -> None:
        self.name = name
        self.namespace = namespace
        self.cluster_ip = cluster_ip
        self.port = port
        self.pods: List[Pod] = []
        #: The pod currently bound to the cluster IP.
        self.active_pod: Optional[Pod] = None

    @property
    def fqdn(self) -> str:
        return f"{self.name}.{self.namespace}.svc.cluster.local."

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.cluster_ip, self.port)

    def ready_pods(self) -> List[Pod]:
        """The running pods backing this service."""
        return [pod for pod in self.pods if pod.running]

    def __repr__(self) -> str:
        return (f"Service({self.fqdn} -> {self.cluster_ip}:{self.port}, "
                f"{len(self.ready_pods())} ready)")


class Orchestrator:
    """The MEC orchestrator (Kubernetes analog)."""

    def __init__(self, network: Network, name: str = "mec",
                 service_cidr: str = "10.96.0.0/16",
                 pod_cidr: str = "10.233.64.0/18",
                 fabric_latency: Optional[LatencyModel] = None) -> None:
        self.network = network
        self.name = name
        self.fabric_latency = fabric_latency or Constant(0.05)
        self._service_addresses = ipaddress.IPv4Network(service_cidr).hosts()
        self._pod_addresses = ipaddress.IPv4Network(pod_cidr).hosts()
        self.nodes: List[Node] = []
        self.services: Dict[str, Service] = {}  # keyed by fqdn
        self._pod_counter = 0

    # -- nodes -----------------------------------------------------------------

    def register_node(self, host: Host, capacity: int = 16) -> Node:
        """Add a machine to the cluster with a pod capacity."""
        node = Node(host, capacity)
        self.nodes.append(node)
        return node

    def _place(self) -> Node:
        for node in self.nodes:
            if node.free_slots > 0:
                return node
        raise CapacityError(f"cluster {self.name} has no free pod slots")

    # -- services ----------------------------------------------------------------

    def create_service(self, name: str, namespace: str = "default",
                       port: int = 53) -> Service:
        """Create a named service with a fresh cluster IP."""
        service = Service(name, namespace,
                          cluster_ip=str(next(self._service_addresses)),
                          port=port)
        if service.fqdn in self.services:
            raise MecError(f"service {service.fqdn} already exists")
        self.services[service.fqdn] = service
        return service

    def service(self, name: str, namespace: str = "default") -> Service:
        """Look up a service by name/namespace; raises ServiceNotFound."""
        fqdn = f"{name}.{namespace}.svc.cluster.local."
        try:
            return self.services[fqdn]
        except KeyError:
            raise ServiceNotFound(fqdn) from None

    def resolve_service_name(self, fqdn: str) -> Optional[Service]:
        """Service for an FQDN like ``dns.kube-system.svc.cluster.local.``"""
        return self.services.get(fqdn if fqdn.endswith(".") else fqdn + ".")

    # -- pods -----------------------------------------------------------------------

    def deploy_pod(self, service: Service,
                   starter: Optional[Callable[[Pod], object]] = None) -> Pod:
        """Place a pod for ``service`` and run its application.

        ``starter`` receives the Pod (whose host is on the network) and
        returns the application object (stored as ``pod.app``).  The first
        ready pod of a service gets the service's cluster IP bound to its
        host.
        """
        node = self._place()
        self._pod_counter += 1
        pod_name = f"{service.name}-{self._pod_counter}"
        pod_host = self.network.add_host(
            f"{self.name}:{pod_name}", str(next(self._pod_addresses)))
        self.network.add_link(pod_host.name, node.host.name,
                              self.fabric_latency,
                              name=f"veth:{pod_name}")
        pod = Pod(pod_name, pod_host, node, service)
        node.pods.append(pod)
        service.pods.append(pod)
        if service.active_pod is None:
            self._bind_cluster_ip(service, pod)
        if starter is not None:
            pod.app = starter(pod)
        return pod

    def kill_pod(self, pod: Pod) -> None:
        """Terminate a pod; re-bind the cluster IP to a surviving pod."""
        if not pod.running:
            return
        pod.running = False
        service = pod.service
        if service.active_pod is pod:
            self.network.release_address(pod.host, service.cluster_ip)
            service.active_pod = None
            survivors = service.ready_pods()
            if survivors:
                self._bind_cluster_ip(service, survivors[0])

    def _bind_cluster_ip(self, service: Service, pod: Pod) -> None:
        self.network.assign_address(pod.host, service.cluster_ip)
        service.active_pod = pod

    def scale(self, service: Service, replicas: int,
              starter: Optional[Callable[[Pod], object]] = None) -> None:
        """Adjust the number of running pods for ``service``."""
        if replicas < 0:
            raise ValueError("replica count cannot be negative")
        ready = service.ready_pods()
        for _ in range(replicas - len(ready)):
            self.deploy_pod(service, starter)
        for pod in ready[replicas:]:
            self.kill_pod(pod)

    def __repr__(self) -> str:
        return (f"Orchestrator({self.name}, {len(self.nodes)} nodes, "
                f"{len(self.services)} services)")
