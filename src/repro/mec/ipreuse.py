"""Public-IP accounting for the spatial-reuse argument.

The paper's §3 (P2) and §5: exposing every MEC application (each CDN
customer's domains, the L-DNS, the C-DNS, the caches) with a dedicated
public IP would need "huge" address space at every edge site; the proposed
design lets mobile clients interact with all of it through the cluster IP
bound to the MEC L-DNS, reusing the same public addresses at every site
("spatial reuse of IP addresses available at MEC akin to spatial reuse of
spectrum in 5G").

:class:`PublicIpPlan` computes both plans for a deployment inventory, so
the ablation benchmark can report the savings.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple


class SiteInventory(NamedTuple):
    """What one MEC site hosts."""

    site: str
    cdn_domains: int        # delivery domains of all CDN customers
    cache_servers: int
    routers: int            # C-DNS instances
    ldns_instances: int


class IpPlanResult(NamedTuple):
    """Public IPs needed under each addressing plan."""

    dedicated_per_site: Dict[str, int]
    dedicated_total: int
    shared_per_site: Dict[str, int]
    shared_total: int

    @property
    def savings_factor(self) -> float:
        if self.shared_total == 0:
            return float("inf")
        return self.dedicated_total / self.shared_total


class PublicIpPlan:
    """Compares dedicated-IP and shared-cluster-IP addressing."""

    #: Public IPs per site under the shared design: just the MEC L-DNS
    #: cluster IP that clients talk to.
    SHARED_IPS_PER_SITE = 1

    def __init__(self, sites: List[SiteInventory]) -> None:
        self.sites = list(sites)

    @staticmethod
    def dedicated_ips(site: SiteInventory) -> int:
        """One public IP per exposed component, today's practice."""
        return (site.cdn_domains + site.cache_servers
                + site.routers + site.ldns_instances)

    def evaluate(self) -> IpPlanResult:
        """Compute both addressing plans for the site inventory."""
        dedicated = {site.site: self.dedicated_ips(site)
                     for site in self.sites}
        shared = {site.site: self.SHARED_IPS_PER_SITE for site in self.sites}
        return IpPlanResult(
            dedicated_per_site=dedicated,
            dedicated_total=sum(dedicated.values()),
            shared_per_site=shared,
            shared_total=sum(shared.values()),
        )
