"""Split public/internal DNS namespaces.

The paper's §3: "exposing an internal DNS publicly to clients increases
the attack surface for the vRAN itself by exposing the vRAN IP namespace.
To avoid that, we first run a split-namespace DNS ... one namespace
instance dedicated for internal VNFs, and another namespace instance for
publicly visible IPs, i.e., for MEC-CDN.  The publicly visible namespace
is populated when a MEC-CDN instance is deployed."

:class:`SplitNamespacePlugin` sits first in the CoreDNS chain.  Internal
clients (the VNF subnets) see everything.  Public clients (UEs) may only
resolve names registered in the public namespace; anything else is either
refused or silently ignored — the latter matching the paper's
"MEC DNS ignore queries not related to MEC-CDN ... forwarded to L-DNS on
timeout from MEC DNS" workaround.
"""

from __future__ import annotations

import enum
import ipaddress
from typing import Generator, List, Set

from repro.dnswire.message import make_response
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode
from repro.resolver.chain import Plugin, QueryContext


class NamespacePolicy(enum.Enum):
    """What a public client gets for a non-public name."""

    REFUSE = "refuse"    # answer REFUSED immediately
    IGNORE = "ignore"    # stay silent; the client times out and falls back


class SplitNamespacePlugin(Plugin):
    """Front-of-chain policy separating internal and public views."""

    name = "split-namespace"

    def __init__(self, internal_networks: List[str],
                 policy: NamespacePolicy = NamespacePolicy.REFUSE) -> None:
        self.internal_networks = [ipaddress.IPv4Network(cidr)
                                  for cidr in internal_networks]
        self.policy = policy
        self._public_suffixes: Set[Name] = set()
        self.refused = 0
        self.ignored = 0

    # -- namespace management ------------------------------------------------

    def register_public(self, suffix: Name) -> None:
        """Publish ``suffix`` (called when a MEC-CDN instance deploys)."""
        self._public_suffixes.add(suffix)

    def unregister_public(self, suffix: Name) -> None:
        """Withdraw a suffix from the public namespace."""
        self._public_suffixes.discard(suffix)

    def is_public(self, qname: Name) -> bool:
        """Whether ``qname`` falls under any published public suffix."""
        return any(qname.is_subdomain_of(suffix)
                   for suffix in self._public_suffixes)

    def is_internal_client(self, ip: str) -> bool:
        """Whether ``ip`` belongs to the internal VNF networks."""
        address = ipaddress.IPv4Address(ip)
        return any(address in network for network in self.internal_networks)

    @property
    def public_suffixes(self) -> List[Name]:
        return sorted(self._public_suffixes)

    # -- chain hook -----------------------------------------------------------

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        """Chain hook: answer, annotate, or delegate to ``next_plugin``."""
        if self.is_internal_client(ctx.client.ip):
            ctx.metadata["namespace"] = "internal"
            response = yield from next_plugin(ctx)
            return response
        if self.is_public(ctx.qname):
            ctx.metadata["namespace"] = "public"
            response = yield from next_plugin(ctx)
            return response
        ctx.metadata["namespace"] = "blocked"
        if self.policy is NamespacePolicy.IGNORE:
            self.ignored += 1
            return None  # no response at all; client falls back on timeout
        self.refused += 1
        return make_response(ctx.query, rcode=Rcode.REFUSED)
