"""MEC platform: a Kubernetes-style orchestrator and its DNS.

The paper's §3-4 design re-purposes the MEC orchestrator's internal DNS
(CoreDNS in a Kubernetes-managed vRAN) as the public-facing edge L-DNS,
with a split namespace so internal VNF names never leak.  This package
models that platform:

* :mod:`repro.mec.cluster` — nodes, pods, services, cluster IPs
  (including the fixed-cluster-IP-across-scaling behaviour §4 relies on).
* :mod:`repro.mec.coredns` — the CoreDNS analog assembled from chain
  plugins: cache, kubernetes service discovery, stub-domain forwarding,
  default forward.
* :mod:`repro.mec.namespaces` — the split public/internal namespace
  plugin, with refuse and ignore policies.
* :mod:`repro.mec.ingress` — ingress-rate monitoring and the
  switch-to-provider-L-DNS overload mitigation.
* :mod:`repro.mec.ipreuse` — public-IP accounting for the spatial-reuse
  argument.
"""

from repro.mec.cluster import Orchestrator, Node, Pod, Service
from repro.mec.controller import ReplicaController
from repro.mec.coredns import (
    CoreDnsServer,
    CachePlugin,
    KubernetesPlugin,
    StubDomainPlugin,
    ForwardPlugin,
)
from repro.mec.namespaces import SplitNamespacePlugin, NamespacePolicy
from repro.mec.plugins_extra import RewritePlugin, LoadBalancePlugin
from repro.mec.ingress import IngressMonitor, DosMitigation
from repro.mec.ipreuse import PublicIpPlan

__all__ = [
    "Orchestrator",
    "Node",
    "Pod",
    "Service",
    "ReplicaController",
    "CoreDnsServer",
    "CachePlugin",
    "KubernetesPlugin",
    "StubDomainPlugin",
    "ForwardPlugin",
    "SplitNamespacePlugin",
    "NamespacePolicy",
    "RewritePlugin",
    "LoadBalancePlugin",
    "IngressMonitor",
    "DosMitigation",
    "PublicIpPlan",
]
